//! End-to-end SQL tests: DDL/DML, verified scans behind every plan shape,
//! joins under every algorithm, aggregation, and the authenticated
//! portal/client protocol.

use std::sync::Arc;
use veridb_common::{Error, Row, Value, VeriDbConfig};
use veridb_enclave::Enclave;
use veridb_query::{Client, PlanOptions, PreferredJoin, QueryEngine, QueryPortal};
use veridb_storage::Catalog;
use veridb_wrcm::VerifiedMemory;

fn setup() -> (Arc<VerifiedMemory>, Arc<QueryEngine>) {
    let enclave = Enclave::create("sql-test", 1 << 24, [9u8; 32]);
    let mut cfg = VeriDbConfig::default();
    cfg.verify_every_ops = None;
    let mem = VerifiedMemory::from_config(enclave, &cfg);
    let catalog = Arc::new(Catalog::new(Arc::clone(&mem)));
    (mem, Arc::new(QueryEngine::new(catalog)))
}

fn ints(rows: &[Row], col: usize) -> Vec<i64> {
    rows.iter().map(|r| r[col].as_i64().unwrap()).collect()
}

/// The paper's Figure 8 tables.
fn setup_quote_inventory() -> (Arc<VerifiedMemory>, Arc<QueryEngine>) {
    let (mem, eng) = setup();
    eng.execute("CREATE TABLE quote (id INT PRIMARY KEY, count INT, price INT)")
        .unwrap();
    eng.execute("CREATE TABLE inventory (id INT PRIMARY KEY, count INT, descr TEXT)")
        .unwrap();
    eng.execute("INSERT INTO quote VALUES (1,100,100),(2,100,200),(3,500,100),(4,600,100)")
        .unwrap();
    eng.execute(
        "INSERT INTO inventory VALUES (1,50,'desc1'),(3,200,'desc3'),\
         (4,100,'desc4'),(6,100,'desc6')",
    )
    .unwrap();
    (mem, eng)
}

#[test]
fn create_insert_select_roundtrip() {
    let (mem, eng) = setup();
    eng.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT, score FLOAT)")
        .unwrap();
    let r = eng
        .execute("INSERT INTO t VALUES (1,'alice',9.5),(2,'bob',7.25),(3,'carol',8.0)")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(3));
    let r = eng.execute("SELECT * FROM t").unwrap();
    assert_eq!(r.columns, vec!["id", "name", "score"]);
    assert_eq!(ints(&r.rows, 0), vec![1, 2, 3]);
    mem.verify_now().unwrap();
}

#[test]
fn duplicate_table_and_unknown_table_errors() {
    let (_m, eng) = setup();
    eng.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
    assert!(matches!(
        eng.execute("CREATE TABLE t (id INT PRIMARY KEY)"),
        Err(Error::TableExists(_))
    ));
    assert!(matches!(
        eng.execute("SELECT * FROM ghost"),
        Err(Error::TableNotFound(_))
    ));
}

#[test]
fn point_lookup_uses_index_search_plan() {
    let (mem, eng) = setup_quote_inventory();
    let plan = eng
        .explain("SELECT * FROM quote WHERE id = 3", &PlanOptions::default())
        .unwrap();
    assert!(plan.contains("IndexSearch"), "plan was:\n{plan}");
    let r = eng.execute("SELECT * FROM quote WHERE id = 3").unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][1], Value::Int(500));
    // Verified miss.
    let r = eng.execute("SELECT * FROM quote WHERE id = 99").unwrap();
    assert!(r.rows.is_empty());
    mem.verify_now().unwrap();
}

#[test]
fn range_predicates_become_range_scans() {
    let (_m, eng) = setup_quote_inventory();
    let plan = eng
        .explain(
            "SELECT * FROM quote WHERE id >= 2 AND id < 4",
            &PlanOptions::default(),
        )
        .unwrap();
    assert!(plan.contains("RangeScan"), "plan was:\n{plan}");
    let r = eng
        .execute("SELECT * FROM quote WHERE id >= 2 AND id < 4")
        .unwrap();
    assert_eq!(ints(&r.rows, 0), vec![2, 3]);
    // BETWEEN sugar.
    let r = eng
        .execute("SELECT * FROM quote WHERE id BETWEEN 2 AND 3")
        .unwrap();
    assert_eq!(ints(&r.rows, 0), vec![2, 3]);
}

#[test]
fn residual_predicates_filter_after_scan() {
    let (_m, eng) = setup_quote_inventory();
    let r = eng
        .execute("SELECT id FROM quote WHERE price = 100 AND count > 400")
        .unwrap();
    assert_eq!(ints(&r.rows, 0), vec![3, 4]);
}

#[test]
fn example_5_4_join_quote_exceeds_inventory() {
    // SELECT q.id, q.count, i.count FROM quote q, inventory i
    // WHERE q.id = i.id AND q.count > i.count  →  (1,100,50), (3,500,200),
    // (4,600,100).
    let (mem, eng) = setup_quote_inventory();
    for prefer in [
        PreferredJoin::Auto,
        PreferredJoin::Hash,
        PreferredJoin::Merge,
        PreferredJoin::NestedLoop,
    ] {
        let opts = PlanOptions {
            prefer_join: prefer,
            ..Default::default()
        };
        let r = eng
            .execute_with(
                "SELECT q.id, q.count, i.count FROM quote as q, inventory as i \
                 WHERE q.id = i.id and q.count > i.count",
                &opts,
            )
            .unwrap();
        let mut got: Vec<(i64, i64, i64)> = r
            .rows
            .iter()
            .map(|row| {
                (
                    row[0].as_i64().unwrap(),
                    row[1].as_i64().unwrap(),
                    row[2].as_i64().unwrap(),
                )
            })
            .collect();
        got.sort_unstable();
        assert_eq!(
            got,
            vec![(1, 100, 50), (3, 500, 200), (4, 600, 100)],
            "join algorithm {prefer:?} returned wrong rows"
        );
    }
    mem.verify_now().unwrap();
}

#[test]
fn explicit_join_on_syntax() {
    let (_m, eng) = setup_quote_inventory();
    let r = eng
        .execute("SELECT q.id FROM quote q JOIN inventory i ON q.id = i.id")
        .unwrap();
    assert_eq!(ints(&r.rows, 0).len(), 3); // ids 1, 3, 4
}

#[test]
fn join_plans_match_preferences() {
    let (_m, eng) = setup_quote_inventory();
    let sql = "SELECT q.id FROM quote q, inventory i WHERE q.id = i.id";
    let auto = eng.explain(sql, &PlanOptions::default()).unwrap();
    assert!(auto.contains("IndexNestedLoopJoin"), "auto plan:\n{auto}");
    let hash = eng
        .explain(
            sql,
            &PlanOptions {
                prefer_join: PreferredJoin::Hash,
                ..Default::default()
            },
        )
        .unwrap();
    assert!(hash.contains("HashJoin"), "hash plan:\n{hash}");
    let merge = eng
        .explain(
            sql,
            &PlanOptions {
                prefer_join: PreferredJoin::Merge,
                ..Default::default()
            },
        )
        .unwrap();
    assert!(merge.contains("MergeJoin"), "merge plan:\n{merge}");
}

#[test]
fn aggregation_with_group_by_and_order() {
    let (_m, eng) = setup();
    eng.execute("CREATE TABLE sales (id INT PRIMARY KEY, region TEXT, amount FLOAT)")
        .unwrap();
    eng.execute(
        "INSERT INTO sales VALUES (1,'east',10.0),(2,'west',20.0),\
         (3,'east',30.0),(4,'west',5.0),(5,'north',1.0)",
    )
    .unwrap();
    let r = eng
        .execute(
            "SELECT region, SUM(amount) AS total, COUNT(*) AS n, \
             AVG(amount) AS mean, MIN(amount), MAX(amount) \
             FROM sales GROUP BY region ORDER BY region",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 3);
    // east, north, west (sorted).
    assert_eq!(r.rows[0][0], Value::Str("east".into()));
    assert_eq!(r.rows[0][1], Value::Float(40.0));
    assert_eq!(r.rows[0][2], Value::Int(2));
    assert_eq!(r.rows[0][3], Value::Float(20.0));
    assert_eq!(r.rows[0][4], Value::Float(10.0));
    assert_eq!(r.rows[0][5], Value::Float(30.0));
    assert_eq!(r.rows[1][0], Value::Str("north".into()));
    assert_eq!(r.rows[2][0], Value::Str("west".into()));
}

#[test]
fn global_aggregate_over_empty_input() {
    let (_m, eng) = setup();
    eng.execute("CREATE TABLE e (id INT PRIMARY KEY, x FLOAT)")
        .unwrap();
    let r = eng
        .execute("SELECT COUNT(*), SUM(x), AVG(x) FROM e")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::Int(0));
    assert_eq!(r.rows[0][1], Value::Null);
    assert_eq!(r.rows[0][2], Value::Null);
}

#[test]
fn arithmetic_in_aggregates() {
    let (_m, eng) = setup();
    eng.execute("CREATE TABLE li (id INT PRIMARY KEY, price FLOAT, disc FLOAT)")
        .unwrap();
    eng.execute("INSERT INTO li VALUES (1,100.0,0.1),(2,200.0,0.25)")
        .unwrap();
    let r = eng
        .execute("SELECT SUM(price * (1 - disc)) AS revenue FROM li")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Float(100.0 * 0.9 + 200.0 * 0.75));
}

#[test]
fn order_by_desc_and_limit() {
    let (_m, eng) = setup_quote_inventory();
    let r = eng
        .execute("SELECT id, count FROM quote ORDER BY count DESC, id ASC LIMIT 2")
        .unwrap();
    assert_eq!(ints(&r.rows, 0), vec![4, 3]);
}

#[test]
fn update_and_delete_with_filters() {
    let (mem, eng) = setup_quote_inventory();
    let r = eng
        .execute("UPDATE quote SET count = count + 1 WHERE price = 100")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(3));
    let r = eng.execute("SELECT count FROM quote WHERE id = 3").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(501));

    let r = eng.execute("DELETE FROM quote WHERE count > 500").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(2)); // counts 501 and 601
    let r = eng.execute("SELECT * FROM quote").unwrap();
    assert_eq!(r.rows.len(), 2);
    mem.verify_now().unwrap();
}

#[test]
fn update_of_primary_key_rechains() {
    let (mem, eng) = setup_quote_inventory();
    eng.execute("UPDATE quote SET id = 10 WHERE id = 2")
        .unwrap();
    let r = eng.execute("SELECT id FROM quote").unwrap();
    assert_eq!(ints(&r.rows, 0), vec![1, 3, 4, 10]);
    mem.verify_now().unwrap();
}

#[test]
fn in_list_and_or_predicates() {
    let (_m, eng) = setup_quote_inventory();
    let r = eng
        .execute("SELECT id FROM quote WHERE id IN (1, 4, 99)")
        .unwrap();
    assert_eq!(ints(&r.rows, 0), vec![1, 4]);
    let r = eng
        .execute("SELECT id FROM quote WHERE count = 600 OR price = 200")
        .unwrap();
    assert_eq!(ints(&r.rows, 0), vec![2, 4]);
    let r = eng
        .execute("SELECT id FROM quote WHERE NOT (price = 100)")
        .unwrap();
    assert_eq!(ints(&r.rows, 0), vec![2]);
}

#[test]
fn secondary_chain_accelerates_range() {
    let (_m, eng) = setup();
    eng.execute("CREATE TABLE ev (id INT PRIMARY KEY, ts INT CHAINED, kind TEXT)")
        .unwrap();
    for i in 0..50 {
        eng.execute(&format!(
            "INSERT INTO ev VALUES ({i}, {}, 'k{}')",
            1000 - i * 10,
            i % 3
        ))
        .unwrap();
    }
    let plan = eng
        .explain(
            "SELECT id FROM ev WHERE ts >= 600 AND ts <= 700",
            &PlanOptions::default(),
        )
        .unwrap();
    assert!(plan.contains("RangeScan(chain 1)"), "plan:\n{plan}");
    let r = eng
        .execute("SELECT id, ts FROM ev WHERE ts >= 600 AND ts <= 700")
        .unwrap();
    assert_eq!(r.rows.len(), 11);
    // Output arrives in ts order (chain order).
    let ts = ints(&r.rows, 1);
    assert!(ts.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn three_way_join() {
    let (_m, eng) = setup();
    eng.execute("CREATE TABLE a (id INT PRIMARY KEY, bx INT)")
        .unwrap();
    eng.execute("CREATE TABLE b (id INT PRIMARY KEY, cx INT)")
        .unwrap();
    eng.execute("CREATE TABLE c (id INT PRIMARY KEY, name TEXT)")
        .unwrap();
    eng.execute("INSERT INTO a VALUES (1,10),(2,20),(3,30)")
        .unwrap();
    eng.execute("INSERT INTO b VALUES (10,100),(20,200)")
        .unwrap();
    eng.execute("INSERT INTO c VALUES (100,'x'),(200,'y')")
        .unwrap();
    let r = eng
        .execute(
            "SELECT a.id, c.name FROM a, b, c \
             WHERE a.bx = b.id AND b.cx = c.id ORDER BY id",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0][1], Value::Str("x".into()));
    assert_eq!(r.rows[1][1], Value::Str("y".into()));
}

#[test]
fn cross_join_without_equi_condition() {
    let (_m, eng) = setup();
    eng.execute("CREATE TABLE l (id INT PRIMARY KEY)").unwrap();
    eng.execute("CREATE TABLE r (id INT PRIMARY KEY)").unwrap();
    eng.execute("INSERT INTO l VALUES (1),(2)").unwrap();
    eng.execute("INSERT INTO r VALUES (10),(20),(30)").unwrap();
    let res = eng
        .execute("SELECT l.id, r.id FROM l, r WHERE l.id < r.id")
        .unwrap();
    assert_eq!(res.rows.len(), 6);
}

#[test]
fn ambiguous_and_unknown_columns_error() {
    let (_m, eng) = setup_quote_inventory();
    assert!(matches!(
        eng.execute("SELECT count FROM quote, inventory WHERE quote.id = inventory.id"),
        Err(Error::Plan(_))
    ));
    assert!(eng.execute("SELECT nothere FROM quote").is_err());
}

// ---- portal / client protocol ---------------------------------------------------

fn portal_setup() -> (Arc<VerifiedMemory>, Arc<QueryPortal>, Client) {
    let (mem, eng) = setup_quote_inventory();
    let portal = Arc::new(QueryPortal::new(
        Arc::clone(&eng),
        Arc::clone(&mem),
        "client-1",
    ));
    let client = Client::with_key(portal.channel_key_for_attested_client());
    (mem, portal, client)
}

#[test]
fn authenticated_query_round_trip() {
    let (_mem, portal, mut client) = portal_setup();
    let q = client.sign_query("SELECT id, count FROM quote WHERE id = 3");
    let endorsed = portal.submit(&q).unwrap();
    let rows = client.verify_result(&q, &endorsed).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][1], Value::Int(500));
}

#[test]
fn forged_query_mac_rejected() {
    let (_mem, portal, mut client) = portal_setup();
    let mut q = client.sign_query("SELECT * FROM quote");
    q.sql = "DELETE FROM quote".into(); // host alters the query in flight
    let err = portal.submit(&q).unwrap_err();
    assert!(matches!(err, Error::AuthFailed(_)));
}

#[test]
fn replayed_qid_rejected() {
    let (_mem, portal, mut client) = portal_setup();
    let q = client.sign_query("SELECT * FROM quote");
    portal.submit(&q).unwrap();
    let err = portal.submit(&q).unwrap_err();
    assert!(matches!(err, Error::ReplayDetected { .. }));
}

#[test]
fn tampered_result_rejected_by_client() {
    let (_mem, portal, mut client) = portal_setup();
    let q = client.sign_query("SELECT id FROM quote WHERE id = 1");
    let mut endorsed = portal.submit(&q).unwrap();
    endorsed.result.rows[0] = Row::new(vec![Value::Int(999)]);
    let err = client.verify_result(&q, &endorsed).unwrap_err();
    assert!(matches!(err, Error::AuthFailed(_)));
}

#[test]
fn rollback_attack_detected_via_sequence_numbers() {
    let (_mem, portal, mut client) = portal_setup();
    let q1 = client.sign_query("SELECT * FROM quote WHERE id = 1");
    let e1 = portal.submit(&q1).unwrap();
    client.verify_result(&q1, &e1).unwrap();
    // The adversary replays the old endorsed result for a new query — or
    // equivalently rolls the server back so it re-issues old sequence
    // numbers. Either way the client sees a repeated sequence number.
    let q2 = client.sign_query("SELECT * FROM quote WHERE id = 1");
    let replayed = veridb_query::EndorsedResult {
        qid: q2.qid,
        sequence: e1.sequence, // stale sequence number
        result: e1.result.clone(),
        mac: portal.channel_key_for_attested_client().sign(&[
            &q2.qid.to_le_bytes(),
            &e1.sequence.to_le_bytes(),
            &result_digest_for_test(&e1.result),
        ]),
    };
    let err = client.verify_result(&q2, &replayed).unwrap_err();
    assert!(matches!(err, Error::RollbackDetected { .. }));
}

// Local copy of the digest (the portal's is crate-private by design).
fn result_digest_for_test(result: &veridb_query::QueryResult) -> [u8; 32] {
    let mut buf = Vec::new();
    for c in &result.columns {
        buf.extend_from_slice(c.as_bytes());
        buf.push(0);
    }
    for r in &result.rows {
        r.encode(&mut buf);
    }
    veridb_enclave::mac::sha256(&[b"result", &buf])
}

#[test]
fn portal_refuses_endorsement_after_tampering() {
    let (mem, portal, mut client) = portal_setup();
    // Tamper with the storage directly (first page holding a live cell —
    // the page map's ordering is arbitrary), then force a verification
    // pass.
    let mut tampered = false;
    for page in mem.page_ids() {
        for slot in 0..8u16 {
            if veridb_wrcm::tamper::overwrite_cell(
                &mem,
                veridb_wrcm::CellAddr { page, slot },
                b"garbage!",
            )
            .is_ok()
            {
                tampered = true;
                break;
            }
        }
        if tampered {
            break;
        }
    }
    assert!(tampered, "no live cell found to tamper with");
    let _ = mem.verify_now(); // poisons the memory
    assert!(mem.poisoned().is_some());
    let q = client.sign_query("SELECT * FROM quote");
    let err = portal.submit(&q).unwrap_err();
    assert!(err.is_security_violation());
}

#[test]
fn attestation_flow_establishes_channel() {
    let (mem, eng) = setup_quote_inventory();
    let portal = Arc::new(QueryPortal::new(
        Arc::clone(&eng),
        Arc::clone(&mem),
        "attested",
    ));
    let enclave = mem.enclave();
    let qe = veridb_enclave::QuotingEnclave::new([77u8; 32]);
    let mut client = Client::attest(
        enclave,
        &qe,
        &qe.verifier(),
        enclave.measurement(),
        portal.channel_key_for_attested_client(),
        b"fresh-nonce",
    )
    .unwrap();
    let q = client.sign_query("SELECT COUNT(*) FROM quote");
    let e = portal.submit(&q).unwrap();
    let rows = client.verify_result(&q, &e).unwrap();
    assert_eq!(rows[0][0], Value::Int(4));
}

// ---- DISTINCT / HAVING / EXPLAIN (engine extensions) ----------------------

#[test]
fn select_distinct_removes_duplicates() {
    let (_m, eng) = setup();
    eng.execute("CREATE TABLE d (id INT PRIMARY KEY, grp INT, tag TEXT)")
        .unwrap();
    eng.execute("INSERT INTO d VALUES (1,1,'a'),(2,1,'a'),(3,2,'b'),(4,2,'b'),(5,3,'a')")
        .unwrap();
    let r = eng
        .execute("SELECT DISTINCT grp, tag FROM d ORDER BY grp")
        .unwrap();
    assert_eq!(r.rows.len(), 3);
    let r = eng.execute("SELECT DISTINCT tag FROM d").unwrap();
    assert_eq!(r.rows.len(), 2);
    // DISTINCT on unique output is a no-op.
    let r = eng.execute("SELECT DISTINCT id FROM d").unwrap();
    assert_eq!(r.rows.len(), 5);
}

#[test]
fn having_filters_groups() {
    let (_m, eng) = setup();
    eng.execute("CREATE TABLE h (id INT PRIMARY KEY, grp TEXT, amt INT)")
        .unwrap();
    eng.execute("INSERT INTO h VALUES (1,'a',10),(2,'a',20),(3,'b',1),(4,'b',2),(5,'c',100)")
        .unwrap();
    // HAVING over an aggregate that also appears in the select list.
    let r = eng
        .execute(
            "SELECT grp, SUM(amt) AS total FROM h GROUP BY grp \
             HAVING SUM(amt) > 5 ORDER BY grp",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0][0], Value::Str("a".into()));
    assert_eq!(r.rows[1][0], Value::Str("c".into()));
    // HAVING over an aggregate NOT in the select list.
    let r = eng
        .execute("SELECT grp FROM h GROUP BY grp HAVING COUNT(*) > 1 ORDER BY grp")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    // HAVING without aggregates/groups is rejected.
    assert!(eng.execute("SELECT id FROM h HAVING id > 1").is_err());
}

#[test]
fn explain_statement_renders_plan() {
    let (_m, eng) = setup_quote_inventory();
    let r = eng
        .execute("EXPLAIN SELECT q.id FROM quote q, inventory i WHERE q.id = i.id")
        .unwrap();
    assert_eq!(r.columns, vec!["plan"]);
    let text: String = r
        .rows
        .iter()
        .map(|row| row[0].as_str().unwrap().to_string())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("IndexNestedLoopJoin"), "plan text:\n{text}");
    assert!(text.contains("SeqScan"), "plan text:\n{text}");
}

#[test]
fn distinct_having_combined() {
    let (_m, eng) = setup();
    eng.execute("CREATE TABLE dh (id INT PRIMARY KEY, grp INT, v INT)")
        .unwrap();
    for i in 0..20 {
        eng.execute(&format!(
            "INSERT INTO dh VALUES ({i}, {}, {})",
            i % 4,
            i % 2
        ))
        .unwrap();
    }
    let r = eng
        .execute("SELECT DISTINCT COUNT(*) FROM dh GROUP BY grp HAVING COUNT(*) >= 5")
        .unwrap();
    // All four groups have exactly 5 members → one distinct count value.
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::Int(5));
}

// ---- nested queries (§3.2's named extension) --------------------------------

#[test]
fn scalar_subquery_in_where() {
    let (_m, eng) = setup_quote_inventory();
    // Rows with count above the average count.
    let r = eng
        .execute(
            "SELECT id FROM quote WHERE count > \
             (SELECT AVG(count) FROM quote)",
        )
        .unwrap();
    // avg(count) = (100+100+500+600)/4 = 325 → ids 3, 4.
    assert_eq!(ints(&r.rows, 0), vec![3, 4]);
}

#[test]
fn scalar_subquery_in_select_list() {
    let (_m, eng) = setup_quote_inventory();
    let r = eng
        .execute("SELECT id, (SELECT MAX(count) FROM inventory) FROM quote WHERE id = 1")
        .unwrap();
    assert_eq!(r.rows[0][1], Value::Int(200));
}

#[test]
fn in_subquery() {
    let (_m, eng) = setup_quote_inventory();
    let r = eng
        .execute("SELECT id FROM quote WHERE id IN (SELECT id FROM inventory)")
        .unwrap();
    assert_eq!(ints(&r.rows, 0), vec![1, 3, 4]);
    let r = eng
        .execute("SELECT id FROM quote WHERE id NOT IN (SELECT id FROM inventory)")
        .unwrap();
    assert_eq!(ints(&r.rows, 0), vec![2]);
}

#[test]
fn nested_subqueries_two_levels() {
    let (_m, eng) = setup_quote_inventory();
    let r = eng
        .execute(
            "SELECT id FROM quote WHERE count = \
             (SELECT MAX(count) FROM quote WHERE id IN \
              (SELECT id FROM inventory))",
        )
        .unwrap();
    // Inventory ids ∩ quote: 1, 3, 4 → max count = 600 → id 4.
    assert_eq!(ints(&r.rows, 0), vec![4]);
}

#[test]
fn subquery_error_cases() {
    let (_m, eng) = setup_quote_inventory();
    // Scalar subquery with several rows.
    assert!(matches!(
        eng.execute("SELECT id FROM quote WHERE count = (SELECT count FROM quote)"),
        Err(Error::Plan(_))
    ));
    // Scalar subquery with several columns.
    assert!(matches!(
        eng.execute("SELECT id FROM quote WHERE count = (SELECT id, count FROM quote)"),
        Err(Error::Plan(_))
    ));
    // Empty scalar subquery yields NULL → no rows, no error.
    let r = eng
        .execute(
            "SELECT id FROM quote WHERE count = \
             (SELECT count FROM quote WHERE id = 999)",
        )
        .unwrap();
    assert!(r.rows.is_empty());
    // Correlated subqueries are rejected, not silently misevaluated.
    assert!(eng
        .execute(
            "SELECT id FROM quote q WHERE count = \
             (SELECT count FROM inventory i WHERE i.id = q.id)"
        )
        .is_err());
}

#[test]
fn subquery_equality_can_drive_index_search() {
    let (_m, eng) = setup_quote_inventory();
    // The lowered literal becomes a pushed-down point predicate.
    let r = eng
        .execute(
            "EXPLAIN SELECT * FROM quote WHERE id = \
             (SELECT MIN(id) FROM inventory)",
        )
        .unwrap();
    let text: String = r
        .rows
        .iter()
        .map(|row| row[0].as_str().unwrap().to_string())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("IndexSearch"), "plan:\n{text}");
}

// ---- LIKE and scalar functions ----------------------------------------------

#[test]
fn like_predicates() {
    let (_m, eng) = setup();
    eng.execute("CREATE TABLE parts (id INT PRIMARY KEY, brand TEXT)")
        .unwrap();
    eng.execute(
        "INSERT INTO parts VALUES (1,'Brand#12'),(2,'Brand#13'),\
         (3,'Brand#23'),(4,'Other')",
    )
    .unwrap();
    let r = eng
        .execute("SELECT id FROM parts WHERE brand LIKE 'Brand#1%'")
        .unwrap();
    assert_eq!(ints(&r.rows, 0), vec![1, 2]);
    let r = eng
        .execute("SELECT id FROM parts WHERE brand LIKE '%#_3'")
        .unwrap();
    assert_eq!(ints(&r.rows, 0), vec![2, 3]);
    let r = eng
        .execute("SELECT id FROM parts WHERE brand NOT LIKE 'Brand#%'")
        .unwrap();
    assert_eq!(ints(&r.rows, 0), vec![4]);
}

#[test]
fn scalar_functions() {
    let (_m, eng) = setup();
    eng.execute("CREATE TABLE s (id INT PRIMARY KEY, name TEXT, x INT)")
        .unwrap();
    eng.execute("INSERT INTO s VALUES (1,'Hello',-5),(2,'wOrLd',7)")
        .unwrap();
    let r = eng
        .execute("SELECT UPPER(name), LOWER(name), LENGTH(name), ABS(x) FROM s")
        .unwrap();
    assert_eq!(r.rows[0].values()[0], Value::Str("HELLO".into()));
    assert_eq!(r.rows[0].values()[1], Value::Str("hello".into()));
    assert_eq!(r.rows[0].values()[2], Value::Int(5));
    assert_eq!(r.rows[0].values()[3], Value::Int(5));
    assert_eq!(r.rows[1].values()[1], Value::Str("world".into()));

    let r = eng
        .execute("SELECT SUBSTR(name, 2, 3) FROM s WHERE id = 1")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Str("ell".into()));
    let r = eng
        .execute("SELECT SUBSTR(name, 3) FROM s WHERE id = 1")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Str("llo".into()));

    // Functions compose with filters, grouping, and aggregates.
    let r = eng
        .execute("SELECT id FROM s WHERE LENGTH(name) = 5 AND UPPER(name) LIKE 'H%'")
        .unwrap();
    assert_eq!(ints(&r.rows, 0), vec![1]);
    let r = eng
        .execute("SELECT UPPER(name), COUNT(*) FROM s GROUP BY UPPER(name) ORDER BY 1")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
}

#[test]
fn function_arity_and_type_errors() {
    let (_m, eng) = setup();
    eng.execute("CREATE TABLE s (id INT PRIMARY KEY, name TEXT)")
        .unwrap();
    eng.execute("INSERT INTO s VALUES (1,'x')").unwrap();
    assert!(eng.execute("SELECT SUBSTR(name) FROM s").is_err());
    assert!(eng.execute("SELECT UPPER(id) FROM s").is_err());
    assert!(eng.execute("SELECT id FROM s WHERE id LIKE 'x%'").is_err());
    assert!(eng.execute("SELECT NOSUCHFN(id) FROM s").is_err());
}

#[test]
fn merge_join_with_duplicates_on_both_sides() {
    let (_m, eng) = setup();
    eng.execute("CREATE TABLE l (id INT PRIMARY KEY, k INT)")
        .unwrap();
    eng.execute("CREATE TABLE r (id INT PRIMARY KEY, k INT)")
        .unwrap();
    // k=5 appears 3× on the left and 2× on the right → 6 joined rows;
    // k=7 appears 1× and 3× → 3 rows; k=9 left-only → 0.
    eng.execute("INSERT INTO l VALUES (1,5),(2,5),(3,5),(4,7),(5,9)")
        .unwrap();
    eng.execute("INSERT INTO r VALUES (10,5),(11,5),(12,7),(13,7),(14,7),(15,8)")
        .unwrap();
    for prefer in [
        PreferredJoin::Merge,
        PreferredJoin::Hash,
        PreferredJoin::Auto,
    ] {
        let res = eng
            .execute_with(
                "SELECT l.id, r.id FROM l, r WHERE l.k = r.k",
                &PlanOptions {
                    prefer_join: prefer,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(res.rows.len(), 3 * 2 + 3, "{prefer:?}");
    }
}

#[test]
fn distinct_with_order_and_limit() {
    let (_m, eng) = setup();
    eng.execute("CREATE TABLE d (id INT PRIMARY KEY, v INT)")
        .unwrap();
    for i in 0..30 {
        eng.execute(&format!("INSERT INTO d VALUES ({i}, {})", i % 6))
            .unwrap();
    }
    let r = eng
        .execute("SELECT DISTINCT v FROM d ORDER BY v DESC LIMIT 3")
        .unwrap();
    assert_eq!(ints(&r.rows, 0), vec![5, 4, 3]);
}

// ---- morsel-driven parallel execution -----------------------------------

/// A table big enough for the morsel splitter to engage (>= 512 rows).
fn setup_wide() -> (Arc<VerifiedMemory>, Arc<QueryEngine>) {
    let (mem, eng) = setup();
    eng.execute("CREATE TABLE w (id INT PRIMARY KEY, grp INT, x INT)")
        .unwrap();
    let mut vals = Vec::new();
    for i in 0..1500i64 {
        vals.push(format!("({},{},{})", i, i % 5, i % 13));
    }
    eng.execute(&format!("INSERT INTO w VALUES {}", vals.join(",")))
        .unwrap();
    (mem, eng)
}

#[test]
fn parallelize_inserts_exchange_and_gather() {
    let (_m, eng) = setup_wide();
    let sql = "SELECT id, x FROM w WHERE x > 3";
    let serial = eng.explain(sql, &PlanOptions::default()).unwrap();
    assert!(
        !serial.contains("Exchange") && !serial.contains("Gather"),
        "workers=1 plan must be bit-identical to the serial plan:\n{serial}"
    );
    let par = eng
        .explain(
            sql,
            &PlanOptions {
                workers: 4,
                ..Default::default()
            },
        )
        .unwrap();
    assert!(par.contains("Gather"), "parallel plan:\n{par}");
    assert!(
        par.contains("Exchange [4 workers]"),
        "parallel plan:\n{par}"
    );

    // Grouped aggregation parallelizes without a Gather funnel: the
    // Exchange sits directly under the Aggregate.
    let agg = eng
        .explain(
            "SELECT grp, COUNT(*) FROM w GROUP BY grp",
            &PlanOptions {
                workers: 4,
                ..Default::default()
            },
        )
        .unwrap();
    assert!(agg.contains("Aggregate"), "agg plan:\n{agg}");
    assert!(agg.contains("Exchange"), "agg plan:\n{agg}");
    assert!(!agg.contains("Gather"), "agg plan:\n{agg}");
}

#[test]
fn engine_default_workers_apply_when_opts_say_inherit() {
    let (_m, eng) = setup_wide();
    let sql = "SELECT id FROM w";
    eng.set_workers(3);
    let plan = eng.explain(sql, &PlanOptions::default()).unwrap();
    assert!(plan.contains("Exchange [3 workers]"), "plan:\n{plan}");
    // An explicit workers=1 overrides the engine default back to serial.
    let serial = eng
        .explain(
            sql,
            &PlanOptions {
                workers: 1,
                ..Default::default()
            },
        )
        .unwrap();
    assert!(!serial.contains("Exchange"), "plan:\n{serial}");
    eng.set_workers(1);
}

#[test]
fn parallel_scan_matches_serial_rows_and_order() {
    let (mem, eng) = setup_wide();
    let sql = "SELECT id, grp, x FROM w WHERE x > 2 AND id < 1200";
    let serial = eng.execute(sql).unwrap();
    for workers in [2usize, 8] {
        let par = eng
            .execute_with(
                sql,
                &PlanOptions {
                    workers,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(
            par.rows, serial.rows,
            "workers={workers} must reproduce the serial rows in order"
        );
    }
    mem.verify_now().unwrap();
}

#[test]
fn parallel_aggregate_matches_serial() {
    let (_m, eng) = setup_wide();
    let sql = "SELECT grp, COUNT(*), SUM(x), MIN(id), MAX(id) \
               FROM w GROUP BY grp ORDER BY grp";
    let serial = eng.execute(sql).unwrap();
    for workers in [2usize, 8] {
        let par = eng
            .execute_with(
                sql,
                &PlanOptions {
                    workers,
                    ..Default::default()
                },
            )
            .unwrap();
        // Integer aggregates merge exactly; ORDER BY pins the group order.
        assert_eq!(par.rows, serial.rows, "workers={workers}");
    }
}

#[test]
fn parallel_empty_and_tiny_inputs_degenerate_cleanly() {
    let (_m, eng) = setup();
    eng.execute("CREATE TABLE e (id INT PRIMARY KEY, v INT)")
        .unwrap();
    let opts = PlanOptions {
        workers: 4,
        ..Default::default()
    };
    // Empty table: global aggregate still emits its identity row.
    let r = eng.execute_with("SELECT COUNT(*) FROM e", &opts).unwrap();
    assert_eq!(r.rows, vec![Row::new(vec![Value::Int(0)])]);
    let r = eng.execute_with("SELECT * FROM e", &opts).unwrap();
    assert!(r.rows.is_empty());
    // Tiny table (below the morsel floor): runs as one morsel.
    eng.execute("INSERT INTO e VALUES (1,10),(2,20)").unwrap();
    let r = eng.execute_with("SELECT SUM(v) FROM e", &opts).unwrap();
    assert_eq!(r.rows, vec![Row::new(vec![Value::Int(30)])]);
}
