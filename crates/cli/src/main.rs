//! `veridb` — an interactive SQL shell over a VeriDB instance.
//!
//! ```text
//! $ cargo run -p veridb-cli --release
//! veridb> CREATE TABLE t (id INT PRIMARY KEY, v TEXT)
//! veridb> INSERT INTO t VALUES (1, 'hello')
//! veridb> SELECT * FROM t
//! veridb> .verify
//! veridb> .help
//! ```
//!
//! Meta commands: `.help`, `.tables`, `.schema <table>`, `.verify`,
//! `.costs`, `.stats`, `.timing on|off`, `.demo` (loads the paper's
//! quote/inventory example), `.tpch [rows]` (loads a small TPC-H dataset),
//! `.quit`. Everything else is SQL, executed through the in-enclave engine
//! with verified storage underneath.
//!
//! Non-interactive: `veridb stats [rows]` loads a TPC-H-style workload,
//! runs the paper's query mix, and prints one `veridb-obs` metrics
//! snapshot — a quick end-to-end check that observability is wired
//! through every layer.

use std::io::{BufRead, Write};
use std::time::Instant;
use veridb::{MetricsSnapshot, PlanOptions, VeriDb, VeriDbConfig};

fn main() {
    // Global flags (taken anywhere on the command line); the rest are
    // positional arguments.
    let mut workers: Option<usize> = None;
    let mut pool: Option<usize> = None;
    let mut verify_threads: Option<usize> = None;
    let mut cell_cache: Option<usize> = None;
    let mut listen: Option<String> = None;
    let mut channel: Option<String> = None;
    let mut max_conns: Option<usize> = None;
    let mut net_queue: Option<usize> = None;
    let mut data_dir: Option<String> = None;
    let mut replica_of: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if let Some(v) = a.strip_prefix("--workers=") {
            workers = parse_flag("--workers", Some(v.to_owned()));
        } else if let Some(v) = a.strip_prefix("--pool=") {
            pool = parse_flag("--pool", Some(v.to_owned()));
        } else if let Some(v) = a.strip_prefix("--verify-threads=") {
            verify_threads = parse_flag("--verify-threads", Some(v.to_owned()));
        } else if let Some(v) = a.strip_prefix("--cell-cache=") {
            cell_cache = parse_flag("--cell-cache", Some(v.to_owned()));
        } else if let Some(v) = a.strip_prefix("--listen=") {
            listen = Some(v.to_owned());
        } else if let Some(v) = a.strip_prefix("--channel=") {
            channel = Some(v.to_owned());
        } else if let Some(v) = a.strip_prefix("--max-conns=") {
            max_conns = parse_flag("--max-conns", Some(v.to_owned()));
        } else if let Some(v) = a.strip_prefix("--net-queue=") {
            net_queue = parse_flag("--net-queue", Some(v.to_owned()));
        } else if let Some(v) = a.strip_prefix("--data-dir=") {
            data_dir = Some(v.to_owned());
        } else if let Some(v) = a.strip_prefix("--replica-of=") {
            replica_of = Some(v.to_owned());
        } else {
            match a.as_str() {
                "--workers" => workers = parse_flag("--workers", it.next()),
                "--pool" => pool = parse_flag("--pool", it.next()),
                "--verify-threads" => verify_threads = parse_flag("--verify-threads", it.next()),
                "--cell-cache" => cell_cache = parse_flag("--cell-cache", it.next()),
                "--listen" => listen = parse_flag("--listen", it.next()),
                "--channel" => channel = parse_flag("--channel", it.next()),
                "--max-conns" => max_conns = parse_flag("--max-conns", it.next()),
                "--net-queue" => net_queue = parse_flag("--net-queue", it.next()),
                "--data-dir" => data_dir = parse_flag("--data-dir", it.next()),
                "--replica-of" => replica_of = parse_flag("--replica-of", it.next()),
                _ => positional.push(a),
            }
        }
    }
    let mut config = VeriDbConfig::default();
    if let Some(w) = workers {
        if !(1..=64).contains(&w) {
            eprintln!("warning: --workers {w} out of range (1..=64); clamping");
        }
        config.workers = w.clamp(1, 64);
    }
    if let Some(p) = pool {
        if !(1..=64).contains(&p) {
            eprintln!("warning: --pool {p} out of range (1..=64); clamping");
        }
        config.pool_threads = p.clamp(1, 64);
    }
    if let Some(b) = cell_cache {
        config.cell_cache_bytes = b;
    }
    if let Some(n) = max_conns {
        config.max_conns = n.max(1);
    }
    if let Some(n) = net_queue {
        config.net_queue_depth = n.clamp(1, 1 << 20);
    }
    if let Some(d) = data_dir {
        config.data_dir = Some(d);
    }
    if let Some(p) = replica_of {
        if config.data_dir.is_none() {
            eprintln!("--replica-of requires --data-dir (the replica keeps its own endorsed log)");
            std::process::exit(2);
        }
        if positional.first().map(String::as_str) != Some("serve") {
            eprintln!("--replica-of only makes sense with the serve subcommand");
            std::process::exit(2);
        }
        config.replica_of = Some(p);
    }
    // Unless overridden, synchronous verification uses the same pool size
    // as query execution (the MemConfig knob); `--verify-threads` decouples
    // the two.
    let verify_threads = verify_threads.unwrap_or(config.workers).max(1);
    match positional.first().map(String::as_str) {
        Some("stats") => {
            let rows = positional
                .get(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or(2_000);
            std::process::exit(cmd_stats(rows, config, verify_threads));
        }
        Some("serve") => {
            std::process::exit(cmd_serve(listen, config));
        }
        Some("connect") => {
            let Some(addr) = positional.get(1).cloned() else {
                eprintln!("usage: veridb connect <host:port> [--channel <name>]");
                std::process::exit(2);
            };
            let channel = channel.unwrap_or_else(|| "repl".to_owned());
            std::process::exit(cmd_connect(&addr, &channel, &config));
        }
        Some("help" | "--help" | "-h") => {
            println!(
                "usage: veridb [flags]               interactive SQL shell\n\
                 \x20      veridb [flags] stats [rows] run a TPC-H-style workload and print metrics\n\
                 \x20      veridb [flags] serve        serve the verifiable protocol over TCP\n\
                 \x20      veridb connect <host:port>  remote verifying SQL shell\n\
                 flags:\n\
                 \x20 --workers <n>         per-query parallelism cap (DOP) on the shared\n\
                 \x20                       scheduler pool (default: $VERIDB_WORKERS or 1)\n\
                 \x20 --pool <n>            shared scheduler pool size — one pool serves all\n\
                 \x20                       concurrent queries and net turns (default:\n\
                 \x20                       $VERIDB_POOL, $VERIDB_WORKERS, or machine cores)\n\
                 \x20 --verify-threads <n>  concurrent verifiers for .verify / stats\n\
                 \x20                       (default: same as --workers)\n\
                 \x20 --cell-cache <bytes>  enclave-resident verified cell cache capacity\n\
                 \x20                       (0 disables; default: $VERIDB_CELL_CACHE or 4 MiB)\n\
                 \x20 --listen <addr>       serve: listen address\n\
                 \x20                       (default: $VERIDB_LISTEN or 127.0.0.1:5433)\n\
                 \x20 --channel <name>      connect: portal channel name (default: repl)\n\
                 \x20 --max-conns <n>       serve: concurrent connection cap\n\
                 \x20                       (default: $VERIDB_MAX_CONNS or 64)\n\
                 \x20 --net-queue <n>       serve: admission queue depth; queries past it\n\
                 \x20                       get a retryable Overloaded error\n\
                 \x20                       (default: $VERIDB_NET_QUEUE or 256)\n\
                 \x20 --data-dir <path>     durable mode: MAC-chained write-ahead log,\n\
                 \x20                       snapshots, sealed epoch manifests; restart\n\
                 \x20                       recovers (or refuses, on rollback) from here\n\
                 \x20 --replica-of <addr>   serve: run as a warm replica of the primary at\n\
                 \x20                       <addr> — tail its endorsed log, auto-promote\n\
                 \x20                       when it dies (requires --data-dir)\n\
                 net knobs: $VERIDB_MAX_CONNS, $VERIDB_NET_TIMEOUT_MS, $VERIDB_NET_QUEUE,\n\
                 \x20         $VERIDB_REPLAY_WINDOW"
            );
            return;
        }
        _ => {}
    }
    let db = match VeriDb::open(config) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("failed to open database: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "VeriDB shell — {} RSWS partitions, verifier every {:?} ops, {} worker(s), \
         {} cell cache.\n\
         Type SQL, or .help for meta commands.",
        db.config().rsws_partitions,
        db.config().verify_every_ops,
        db.config().workers,
        match db.config().cell_cache_bytes {
            0 => "no".to_owned(),
            b => format!("{} KiB", b / 1024),
        }
    );

    let stdin = std::io::stdin();
    let mut timing = true;
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("veridb> ");
        } else {
            print!("   ...> ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if buffer.is_empty() && line.starts_with('.') {
            if !meta_command(&db, line, &mut timing, verify_threads) {
                break;
            }
            continue;
        }
        // Accumulate until a statement terminator (or take the line as-is).
        buffer.push_str(line);
        buffer.push(' ');
        if !line.ends_with(';') && line.ends_with('\\') {
            buffer.pop();
            buffer.pop(); // strip the continuation backslash
            continue;
        }
        let sql = buffer.trim().trim_end_matches(';').to_owned();
        buffer.clear();
        run_sql(&db, &sql, timing);
    }
    println!();
}

/// Parse a flag's value, warning (with the offending input named) and
/// ignoring the flag when the value is missing or unparseable — a typo
/// silently falling back to defaults is a debugging trap.
fn parse_flag<T: std::str::FromStr>(flag: &str, raw: Option<String>) -> Option<T> {
    let Some(raw) = raw else {
        eprintln!("warning: {flag} requires a value; ignoring the flag");
        return None;
    };
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("warning: invalid {flag} value {raw:?}; ignoring the flag");
            None
        }
    }
}

/// `veridb stats [rows]`: load TPC-H tables, run the paper's query mix
/// (Q1, Q3, Q6, Q19), verify, and print the metrics snapshot.
fn cmd_stats(rows: usize, config: VeriDbConfig, verify_threads: usize) -> i32 {
    let db = match VeriDb::open(config) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("failed to open database: {e}");
            return 1;
        }
    };
    let cfg = veridb_workloads::TpchConfig {
        lineitem_rows: rows,
        part_rows: (rows / 30).max(50),
        ..Default::default()
    };
    println!("generating TPC-H ({rows} lineitem rows)…");
    let data = veridb_workloads::TpchData::generate(&cfg);
    if let Err(e) = data.load(&db) {
        eprintln!("error loading workload: {e}");
        return 1;
    }
    // Drive the query mix through the authenticated portal so the whole
    // stack — MAC check, replay window, ECall, engine, verified scans —
    // shows up in the counters.
    use veridb_workloads::tpch;
    let portal = db.portal("stats");
    let mut client = veridb::Client::with_key(portal.channel_key_for_attested_client());
    for (name, sql) in [
        ("Q1", tpch::q1()),
        ("Q3", tpch::q3()),
        ("Q6", tpch::q6()),
        ("Q19", tpch::q19()),
    ] {
        let q = client.sign_query(sql);
        match portal.submit(&q) {
            Ok(e) => println!("{name}: {} row(s)", e.result.rows.len()),
            Err(e) => {
                eprintln!("{name} failed: {e}");
                return 1;
            }
        }
    }
    if let Err(e) = db.verify_now_parallel(verify_threads) {
        eprintln!("SECURITY ALARM: {e}");
        return 1;
    }
    print_metrics(&db.metrics());
    0
}

/// `veridb serve [--listen addr]`: serve the verifiable protocol over TCP
/// until stdin closes or `quit` is typed. Remote clients attest, then run
/// SQL through per-channel authenticated portals.
fn cmd_serve(listen: Option<String>, config: VeriDbConfig) -> i32 {
    let addr = listen
        .or_else(|| config.listen_addr.clone())
        .unwrap_or_else(|| "127.0.0.1:5433".to_owned());
    let net_timeout = std::time::Duration::from_millis(config.net_timeout_ms);
    // A cold replica needs the primary's sealed root entropy before its
    // first durable open — fetched over the attested wire, written once.
    if let (Some(primary), Some(dir)) = (config.replica_of.clone(), config.data_dir.clone()) {
        if let Err(e) = veridb_net::ensure_replica_seed(&dir, &primary, "veridb", net_timeout) {
            eprintln!("failed to bootstrap replica seed from {primary}: {e}");
            return 1;
        }
    }
    let db = match VeriDb::open(config) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("failed to open database: {e}");
            return 1;
        }
    };
    let db = std::sync::Arc::new(db);
    let runner = db.config().replica_of.clone().map(|primary| {
        veridb_net::ReplicaRunner::spawn(std::sync::Arc::clone(&db), &primary, "veridb", net_timeout)
    });
    let mut server = match veridb_net::serve(std::sync::Arc::clone(&db), &addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to start server: {e}");
            return 1;
        }
    };
    println!(
        "VeriDB serving on {} — {} max conn(s), {}-query admission queue, \
         {} ms frame timeout, replay window {}. Type 'quit' (or close stdin) to stop.",
        server.local_addr(),
        db.config().max_conns,
        db.config().net_queue_depth,
        db.config().net_timeout_ms,
        db.config().replay_window
    );
    match (&db.config().data_dir, &db.config().replica_of) {
        (Some(dir), Some(primary)) => println!(
            "durable: data dir {dir} — warm replica of {primary}, applying its endorsed \
             log through the verified path (auto-promotes if the primary dies)."
        ),
        (Some(dir), None) => println!(
            "durable: data dir {dir} — MAC-chained log, group commit, sealed epoch \
             manifests; restart recovers or refuses on rollback."
        ),
        (None, _) => println!(
            "durable: OFF — ephemeral instance; pass --data-dir to enable the endorsed log."
        ),
    }
    let stdin = std::io::stdin();
    loop {
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => {
                // stdin closed (e.g. daemonized in CI): keep serving until
                // the process is signalled.
                loop {
                    std::thread::park();
                }
            }
            Ok(_) if line.trim() == "quit" => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
    }
    println!("shutting down (draining in-flight queries)…");
    server.shutdown();
    if let Some(r) = runner {
        let _ = r.stop();
    }
    0
}

/// `veridb connect <addr>`: a remote verifying SQL shell. Every result is
/// MAC-verified and sequence-checked by the client before it is printed.
fn cmd_connect(addr: &str, channel: &str, config: &VeriDbConfig) -> i32 {
    let timeout = std::time::Duration::from_millis(config.net_timeout_ms);
    let mut client =
        match veridb_net::RemoteClient::connect_simulated(addr, channel, "veridb", timeout) {
            Ok(c) => c,
            Err(e) => {
                if e.is_security_violation() {
                    eprintln!("SECURITY ALARM: {e}");
                } else {
                    eprintln!("failed to connect: {e}");
                }
                return 1;
            }
        };
    println!(
        "connected to {addr} (channel {channel:?}, enclave attested).\n\
         Type SQL, .stats for server metrics, .quit to exit."
    );
    let stdin = std::io::stdin();
    loop {
        print!("veridb[{addr}]> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            ".quit" | ".exit" | ".q" => break,
            ".stats" => match client.stats() {
                Ok(text) => print!("{text}"),
                Err(e) => eprintln!("error: {e}"),
            },
            sql => {
                let start = Instant::now();
                match client.query(sql.trim_end_matches(';')) {
                    Ok(result) => {
                        let dt = start.elapsed();
                        if result.columns == ["rows_affected"] {
                            match result.rows.first().and_then(|r| r.values().first()) {
                                Some(n) => println!("ok ({n} row(s) affected)"),
                                None => println!("ok"),
                            }
                        } else {
                            print!("{}", result.to_table());
                            println!("({} row(s))", result.rows.len());
                        }
                        println!("-- {:.3} ms over the wire", dt.as_secs_f64() * 1e3);
                    }
                    Err(e) if e.is_security_violation() => {
                        // Verification failures are never retried and never
                        // downgraded: surface loudly and stop trusting the
                        // session.
                        eprintln!("SECURITY ALARM: {e}");
                    }
                    Err(e) => eprintln!("error: {e}"),
                }
            }
        }
    }
    client.close();
    println!();
    0
}

/// Print every registered counter, then the one-line summary.
fn print_metrics(snap: &MetricsSnapshot) {
    let counters = snap.counters();
    let width = counters.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    for (name, value) in &counters {
        println!("{name:<width$}  {value}");
    }
    println!("-- {}", snap.summary_line());
}

fn run_sql(db: &VeriDb, sql: &str, timing: bool) {
    let start = Instant::now();
    match db.sql(sql) {
        Ok(result) => {
            let dt = start.elapsed();
            if result.columns == ["rows_affected"] {
                match result.rows.first().and_then(|r| r.values().first()) {
                    Some(n) => println!("ok ({n} row(s) affected)"),
                    None => println!("ok"),
                }
            } else {
                print!("{}", result.to_table());
                println!("({} row(s))", result.rows.len());
            }
            if timing {
                println!("-- {:.3} ms", dt.as_secs_f64() * 1e3);
            }
        }
        Err(e) => {
            if e.is_security_violation() {
                eprintln!("SECURITY ALARM: {e}");
            } else {
                eprintln!("error: {e}");
            }
        }
    }
}

/// Handle a `.meta` command; returns false to exit the shell.
fn meta_command(db: &VeriDb, line: &str, timing: &mut bool, verify_threads: usize) -> bool {
    let mut parts = line.split_whitespace();
    match parts.next().unwrap_or("") {
        ".quit" | ".exit" | ".q" => return false,
        ".help" => {
            println!(
                "meta commands:\n\
                 \x20 .tables            list tables\n\
                 \x20 .schema <table>    show a table's columns and chains\n\
                 \x20 .explain <sql>     show the physical plan\n\
                 \x20 .verify            run a full verification pass\n\
                 \x20                    (--verify-threads concurrent verifiers)\n\
                 \x20 .costs             simulated SGX cost counters\n\
                 \x20 .stats             veridb-obs metrics snapshot (all layers)\n\
                 \x20 .timing on|off     toggle query timing\n\
                 \x20 .demo              load the paper's quote/inventory tables\n\
                 \x20 .tpch [rows]       load a small TPC-H dataset\n\
                 \x20 .quit              exit\n\
                 anything else is executed as SQL"
            );
        }
        ".tables" => {
            for name in db.catalog().table_names() {
                match db.catalog().table(&name) {
                    Ok(t) => println!("{name}  ({} rows)", t.row_count()),
                    Err(e) => eprintln!("{name}  (error: {e})"),
                }
            }
        }
        ".schema" => match parts.next() {
            Some(name) => match db.table(name) {
                Ok(t) => {
                    for (i, col) in t.schema().columns().iter().enumerate() {
                        println!(
                            "{:<3} {:<20} {:<6} {}",
                            i,
                            col.name,
                            col.ty.to_string(),
                            if col.chained { "CHAINED" } else { "" }
                        );
                    }
                }
                Err(e) => eprintln!("error: {e}"),
            },
            None => eprintln!("usage: .schema <table>"),
        },
        ".explain" => {
            let sql: String = parts.collect::<Vec<_>>().join(" ");
            match db.explain(&sql, &PlanOptions::default()) {
                Ok(plan) => print!("{plan}"),
                Err(e) => eprintln!("error: {e}"),
            }
        }
        ".verify" => {
            let start = Instant::now();
            match db.verify_now_parallel(verify_threads) {
                Ok(report) => println!(
                    "verification PASSED: {} pages processed ({} re-read) \
                     by {verify_threads} verifier(s) in {:.3} ms",
                    report.pages_processed,
                    report.pages_read,
                    start.elapsed().as_secs_f64() * 1e3
                ),
                Err(e) => eprintln!("SECURITY ALARM: {e}"),
            }
        }
        ".costs" => {
            let c = db.costs();
            println!(
                "prf evals: {}\nverified reads: {}\nverified writes: {}\n\
                 pages scanned: {}\necalls: {}\nepc swaps: {}\n\
                 simulated cycles: {}",
                c.prf_evals,
                c.verified_reads,
                c.verified_writes,
                c.pages_scanned,
                c.ecalls,
                c.epc_swaps,
                c.simulated_cycles
            );
        }
        ".stats" => {
            let snap = db.metrics();
            print_metrics(&snap);
            println!(
                "cell cache: {} hit(s) / {} miss(es) ({}%), {} eviction(s), \
                 {} write-back(s), {} byte(s) resident",
                snap.cache_hits,
                snap.cache_misses,
                snap.cache_hit_ratio_pct,
                snap.cache_evictions,
                snap.cache_writebacks,
                snap.cache_resident_bytes
            );
            let lag = db.verification_lag();
            let max_lag = lag.iter().map(|(_, l)| *l).max().unwrap_or(0);
            println!(
                "verification lag: max {max_lag} op(s) across {} partition(s)",
                lag.len()
            );
        }
        ".timing" => match parts.next() {
            Some("on") => *timing = true,
            Some("off") => *timing = false,
            _ => eprintln!("usage: .timing on|off"),
        },
        ".demo" => {
            for sql in [
                "CREATE TABLE quote (id INT PRIMARY KEY, count INT, price INT)",
                "CREATE TABLE inventory (id INT PRIMARY KEY, count INT, descr TEXT)",
                "INSERT INTO quote VALUES (1,100,100),(2,100,200),(3,500,100),(4,600,100)",
                "INSERT INTO inventory VALUES (1,50,'desc1'),(3,200,'desc3'),\
                 (4,100,'desc4'),(6,100,'desc6')",
            ] {
                if let Err(e) = db.sql(sql) {
                    eprintln!("error: {e}");
                    return true;
                }
            }
            println!("loaded quote (4 rows) and inventory (4 rows) — try:");
            println!(
                "  SELECT q.id, q.count, i.count FROM quote q, inventory i \
                 WHERE q.id = i.id AND q.count > i.count"
            );
        }
        ".tpch" => {
            let rows: usize = parts.next().and_then(|s| s.parse().ok()).unwrap_or(10_000);
            let cfg = veridb_workloads::TpchConfig {
                lineitem_rows: rows,
                part_rows: (rows / 30).max(50),
                ..Default::default()
            };
            println!("generating TPC-H ({rows} lineitem rows)…");
            let data = veridb_workloads::TpchData::generate(&cfg);
            match data.load(db) {
                Ok(()) => println!("loaded lineitem and part — try Q6:\n  {}", q6_short()),
                Err(e) => eprintln!("error: {e}"),
            }
        }
        other => eprintln!("unknown meta command {other} (.help for help)"),
    }
    true
}

fn q6_short() -> &'static str {
    "SELECT SUM(l_extendedprice * l_discount) FROM lineitem \
     WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' \
     AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24"
}
