//! `veridb-log`: the durability subsystem.
//!
//! Everything the in-memory verified database needs to survive a crash —
//! and, crucially, to *prove* after a restart that the host did not roll
//! it back to an earlier state — lives here:
//!
//! - [`record`] — the log-record codec. Every protected write the engine
//!   commits becomes one logical record, MAC-chained to its predecessor
//!   under an enclave-derived key, framed with a length + CRC so a torn
//!   tail is detected byte-exactly and never misparsed.
//! - [`wal`] — the append-only segment store with leader/follower group
//!   commit: appends buffer under the commit lock, durability waits happen
//!   outside it, and the first waiter whose record is not yet on disk
//!   becomes the flusher for everyone (one `fsync` per batch).
//! - [`store`] — sealed epoch manifests, plaintext snapshots anchored by
//!   a hash inside the sealed manifest, the trusted monotonic counter that
//!   the rollback defense pivots on, and atomic file I/O helpers.
//!
//! The trust story mirrors the paper's §5.1: the disk is the host's, so
//! nothing on it is believed. Log records are believed because the MAC
//! chain verifies from genesis under a key only the enclave can derive;
//! the snapshot is believed because its hash is inside a sealed manifest;
//! and the *freshness* of the manifest is believed because its epoch must
//! equal the trusted monotonic counter — a host that re-offers an older
//! manifest, truncates the log below the manifest's recorded tip, or
//! swaps in a different snapshot gets a loud `RollbackDetected` /
//! `TamperDetected`, never a silently stale database.

pub mod record;
pub mod store;
pub mod wal;

pub use record::{
    scan_records, LogRecord, GENESIS_MAC, KIND_CREATE_TABLE, KIND_DELETE, KIND_DROP_TABLE,
    KIND_INSERT, KIND_UPDATE, MAX_RECORD_BYTES,
};
pub use store::{
    decode_snapshot, encode_snapshot, EpochStore, Manifest, TableSnapshot, TrustedCounter,
};
pub use wal::{Wal, WalOptions};
