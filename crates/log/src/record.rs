//! The log-record codec and MAC chain.
//!
//! A record is *logical*: it carries the SQL statement the engine
//! committed, not page images. Replaying the statements through the same
//! protected write path rebuilds the verified state (including `h(WS)`)
//! deterministically, so the log doubles as the replication stream.
//!
//! On the wire / on disk each record is framed as
//!
//! ```text
//! len:u32 ‖ crc:u32 ‖ body
//! body = lsn:u64 ‖ epoch:u64 ‖ seq_high_water:u64 ‖ kind:u8 ‖ sql:bytes ‖ mac:32B
//! ```
//!
//! The CRC is hygiene (torn-tail detection on the host's disk); integrity
//! is the MAC chain: `mac_i = MAC(key, "wal-record" ‖ mac_{i-1} ‖ lsn ‖
//! epoch ‖ seq ‖ kind ‖ sql)` starting from [`GENESIS_MAC`]. A host that
//! reorders, drops, or edits any interior record breaks the chain for
//! every later record.

use veridb_common::codec::{put_bytes, put_u32, put_u64, Reader};
use veridb_common::crc::crc32;
use veridb_common::{Error, Result};
use veridb_enclave::mac::{Mac, MacKey, MAC_LEN};

/// Record kind: `CREATE TABLE`.
pub const KIND_CREATE_TABLE: u8 = 1;
/// Record kind: `DROP TABLE`.
pub const KIND_DROP_TABLE: u8 = 2;
/// Record kind: `INSERT`.
pub const KIND_INSERT: u8 = 3;
/// Record kind: `UPDATE`.
pub const KIND_UPDATE: u8 = 4;
/// Record kind: `DELETE`.
pub const KIND_DELETE: u8 = 5;

/// Ceiling on one framed record body; anything larger in a length header
/// is treated as corruption, bounding allocation on hostile input.
pub const MAX_RECORD_BYTES: usize = 16 * 1024 * 1024;

/// The chain anchor for the first record (lsn 1).
pub const GENESIS_MAC: Mac = Mac([0u8; MAC_LEN]);

/// Bytes of framing overhead per record (`len` + `crc`).
pub const FRAME_OVERHEAD: usize = 8;

/// One MAC-chained logical log record.
#[derive(Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Log sequence number, contiguous from 1.
    pub lsn: u64,
    /// Sealed epoch the record was appended under.
    pub epoch: u64,
    /// Enclave timestamp high-water mark at append time; recovery raises
    /// the restarted enclave's counter past the max so endorsement
    /// sequence numbers never repeat.
    pub seq_high_water: u64,
    /// One of the `KIND_*` constants.
    pub kind: u8,
    /// The committed SQL statement, verbatim.
    pub sql: String,
    /// Chain MAC over this record and its predecessor's MAC.
    pub mac: Mac,
}

impl std::fmt::Debug for LogRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogRecord")
            .field("lsn", &self.lsn)
            .field("epoch", &self.epoch)
            .field("seq_high_water", &self.seq_high_water)
            .field("kind", &self.kind)
            .field("sql", &self.sql)
            .finish_non_exhaustive()
    }
}

impl LogRecord {
    /// The chain MAC for a record with the given fields following a
    /// predecessor whose MAC was `prev`.
    pub fn chain_mac(
        key: &MacKey,
        prev: &Mac,
        lsn: u64,
        epoch: u64,
        seq_high_water: u64,
        kind: u8,
        sql: &str,
    ) -> Mac {
        key.sign(&[
            b"wal-record",
            &prev.0,
            &lsn.to_le_bytes(),
            &epoch.to_le_bytes(),
            &seq_high_water.to_le_bytes(),
            &[kind],
            sql.as_bytes(),
        ])
    }

    /// Build a record chained onto `prev`.
    pub fn new_chained(
        key: &MacKey,
        prev: &Mac,
        lsn: u64,
        epoch: u64,
        seq_high_water: u64,
        kind: u8,
        sql: String,
    ) -> LogRecord {
        let mac = Self::chain_mac(key, prev, lsn, epoch, seq_high_water, kind, &sql);
        LogRecord {
            lsn,
            epoch,
            seq_high_water,
            kind,
            sql,
            mac,
        }
    }

    /// Whether this record's MAC correctly chains onto `prev` under `key`.
    pub fn verify_chain(&self, key: &MacKey, prev: &Mac) -> bool {
        key.verify(
            &[
                b"wal-record",
                &prev.0,
                &self.lsn.to_le_bytes(),
                &self.epoch.to_le_bytes(),
                &self.seq_high_water.to_le_bytes(),
                &[self.kind],
                self.sql.as_bytes(),
            ],
            &self.mac,
        )
    }

    /// Encode the body (everything after the frame header).
    pub fn encode_body(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(8 * 3 + 1 + 4 + self.sql.len() + MAC_LEN);
        put_u64(&mut buf, self.lsn);
        put_u64(&mut buf, self.epoch);
        put_u64(&mut buf, self.seq_high_water);
        buf.push(self.kind);
        put_bytes(&mut buf, self.sql.as_bytes());
        buf.extend_from_slice(&self.mac.0);
        buf
    }

    /// Append the framed record (`len ‖ crc ‖ body`) to `out`.
    pub fn encode_framed(&self, out: &mut Vec<u8>) {
        let body = self.encode_body();
        put_u32(out, body.len() as u32);
        put_u32(out, crc32(&body));
        out.extend_from_slice(&body);
    }

    /// The framed record as a standalone byte vector.
    pub fn to_framed_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_framed(&mut out);
        out
    }

    /// Decode a record body. Errors with [`Error::Codec`] on truncation,
    /// trailing garbage, or invalid UTF-8 — never panics.
    pub fn decode_body(body: &[u8]) -> Result<LogRecord> {
        let mut r = Reader::new(body);
        let lsn = r.get_u64()?;
        let epoch = r.get_u64()?;
        let seq_high_water = r.get_u64()?;
        let kind = r.get_u8()?;
        let sql = String::from_utf8(r.get_bytes()?.to_vec())
            .map_err(|_| Error::Codec("log record sql is not UTF-8".into()))?;
        if r.remaining() != MAC_LEN {
            return Err(Error::Codec(format!(
                "log record mac is {} bytes, expected {MAC_LEN}",
                r.remaining()
            )));
        }
        let mut mac = [0u8; MAC_LEN];
        for b in mac.iter_mut() {
            *b = r.get_u8()?;
        }
        Ok(LogRecord {
            lsn,
            epoch,
            seq_high_water,
            kind,
            sql,
            mac: Mac(mac),
        })
    }
}

/// Scan a byte buffer of framed records, returning every cleanly decodable
/// record from the front plus the byte length of that clean prefix.
///
/// This never errors: the first frame that is truncated, oversized, fails
/// its CRC, or fails body decoding simply ends the scan. The caller decides
/// whether a short clean prefix is a legal torn tail (last segment only) or
/// evidence of tampering (any earlier segment).
pub fn scan_records(buf: &[u8]) -> (Vec<LogRecord>, usize) {
    let mut records = Vec::new();
    let mut off = 0usize;
    loop {
        let rest = &buf[off..];
        if rest.len() < FRAME_OVERHEAD {
            break;
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len > MAX_RECORD_BYTES || rest.len() - FRAME_OVERHEAD < len {
            break;
        }
        let body = &rest[FRAME_OVERHEAD..FRAME_OVERHEAD + len];
        if crc32(body) != crc {
            break;
        }
        match LogRecord::decode_body(body) {
            Ok(rec) => {
                records.push(rec);
                off += FRAME_OVERHEAD + len;
            }
            Err(_) => break,
        }
    }
    (records, off)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> MacKey {
        MacKey::new([7u8; 32])
    }

    fn rec(lsn: u64, prev: &Mac, sql: &str) -> LogRecord {
        LogRecord::new_chained(&key(), prev, lsn, 3, 100 + lsn, KIND_INSERT, sql.into())
    }

    #[test]
    fn framed_round_trip() {
        let r = rec(1, &GENESIS_MAC, "INSERT INTO t VALUES (1, 'x')");
        let bytes = r.to_framed_bytes();
        let (records, clean) = scan_records(&bytes);
        assert_eq!(clean, bytes.len());
        assert_eq!(records, vec![r]);
    }

    #[test]
    fn chain_verifies_and_breaks_on_edit() {
        let k = key();
        let r1 = rec(1, &GENESIS_MAC, "CREATE TABLE t (a INT)");
        let r2 = rec(2, &r1.mac, "INSERT INTO t VALUES (1)");
        assert!(r1.verify_chain(&k, &GENESIS_MAC));
        assert!(r2.verify_chain(&k, &r1.mac));
        // Wrong predecessor: chain broken.
        assert!(!r2.verify_chain(&k, &GENESIS_MAC));
        // Edited payload: chain broken.
        let mut evil = r2.clone();
        evil.sql = "INSERT INTO t VALUES (999)".into();
        assert!(!evil.verify_chain(&k, &r1.mac));
        // Different key: chain broken.
        assert!(!r1.verify_chain(&MacKey::new([8u8; 32]), &GENESIS_MAC));
    }

    #[test]
    fn scan_stops_at_crc_damage_and_never_reads_past_it() {
        let r1 = rec(1, &GENESIS_MAC, "a");
        let r2 = rec(2, &r1.mac, "b");
        let mut bytes = r1.to_framed_bytes();
        let first_len = bytes.len();
        r2.encode_framed(&mut bytes);
        // Flip a byte inside the second record's body.
        bytes[first_len + FRAME_OVERHEAD + 2] ^= 0xFF;
        let (records, clean) = scan_records(&bytes);
        assert_eq!(records, vec![r1]);
        assert_eq!(clean, first_len);
    }

    #[test]
    fn scan_rejects_oversized_length_header() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, (MAX_RECORD_BYTES + 1) as u32);
        put_u32(&mut bytes, 0);
        bytes.extend_from_slice(&[0u8; 64]);
        let (records, clean) = scan_records(&bytes);
        assert!(records.is_empty());
        assert_eq!(clean, 0);
    }

    #[test]
    fn truncation_at_every_offset_yields_clean_prefix() {
        let r1 = rec(1, &GENESIS_MAC, "INSERT INTO t VALUES (1, 'hello')");
        let r2 = rec(2, &r1.mac, "UPDATE t SET a = 2");
        let mut bytes = r1.to_framed_bytes();
        let first_len = bytes.len();
        r2.encode_framed(&mut bytes);
        for cut in 0..bytes.len() {
            let (records, clean) = scan_records(&bytes[..cut]);
            if cut < first_len {
                assert!(records.is_empty(), "cut {cut}");
                assert_eq!(clean, 0, "cut {cut}");
            } else {
                assert_eq!(records.len(), 1, "cut {cut}");
                assert_eq!(clean, first_len, "cut {cut}");
            }
        }
    }

    #[test]
    fn decode_body_rejects_trailing_garbage() {
        let r = rec(1, &GENESIS_MAC, "x");
        let mut body = r.encode_body();
        body.push(0);
        assert!(LogRecord::decode_body(&body).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_record() -> impl Strategy<Value = LogRecord> {
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            1u8..=5,
            "[a-zA-Z0-9 ,'()=*]{0,200}",
        )
            .prop_map(|(lsn, epoch, seq, kind, sql)| {
                LogRecord::new_chained(
                    &MacKey::new([9u8; 32]),
                    &GENESIS_MAC,
                    lsn,
                    epoch,
                    seq,
                    kind,
                    sql,
                )
            })
    }

    proptest! {
        #[test]
        fn any_record_round_trips(rec in arb_record()) {
            let bytes = rec.to_framed_bytes();
            let (records, clean) = scan_records(&bytes);
            prop_assert_eq!(clean, bytes.len());
            prop_assert_eq!(records, vec![rec]);
        }

        /// The satellite requirement: a stream of records truncated at
        /// *every* byte offset always yields exactly the records whose
        /// frames fit entirely in the prefix — clean-tail detection, no
        /// panic, no misparse, no phantom record.
        #[test]
        fn torn_tail_at_every_offset_is_detected(
            sqls in prop::collection::vec("[a-z0-9 ]{0,64}", 1..6),
        ) {
            let key = MacKey::new([5u8; 32]);
            let mut prev = GENESIS_MAC;
            let mut bytes = Vec::new();
            let mut ends = Vec::new();
            for (i, sql) in sqls.iter().enumerate() {
                let r = LogRecord::new_chained(
                    &key, &prev, i as u64 + 1, 0, i as u64, KIND_INSERT, sql.clone(),
                );
                prev = r.mac;
                r.encode_framed(&mut bytes);
                ends.push(bytes.len());
            }
            for cut in 0..=bytes.len() {
                let (records, clean) = scan_records(&bytes[..cut]);
                let expect = ends.iter().filter(|&&e| e <= cut).count();
                prop_assert_eq!(records.len(), expect, "cut {}", cut);
                let expect_clean = if expect == 0 { 0 } else { ends[expect - 1] };
                prop_assert_eq!(clean, expect_clean, "cut {}", cut);
            }
        }

        /// Random garbage after a clean prefix never panics: the clean
        /// records still decode, and the garbage only extends the scan if
        /// it happens to form a valid CRC'd frame (which we tolerate —
        /// the MAC chain, not the framing, is the integrity boundary).
        #[test]
        fn garbage_tail_never_panics(tail in prop::collection::vec(any::<u8>(), 0..64)) {
            let key = MacKey::new([6u8; 32]);
            let r = LogRecord::new_chained(
                &key, &GENESIS_MAC, 1, 0, 0, KIND_INSERT, "insert".into(),
            );
            let mut bytes = r.to_framed_bytes();
            let clean_end = bytes.len();
            bytes.extend_from_slice(&tail);
            let (records, clean) = scan_records(&bytes);
            prop_assert!(!records.is_empty());
            prop_assert_eq!(records[0].clone(), r);
            prop_assert!(clean >= clean_end);
        }
    }
}
