//! Append-only segment store with leader/follower group commit.
//!
//! ## Concurrency design
//!
//! `append` is called under the engine's commit-order lock and only
//! *buffers* the framed record (cheap: one MAC, one memcpy). The caller
//! then releases the commit lock and calls `wait_durable(ticket)`, so
//! slow `fsync`s never serialize commits — they amortize across them.
//!
//! Durability waits use a **leader/follower** protocol rather than a
//! background flusher thread: the first waiter to find no flush in
//! progress elects itself leader, lingers for the group-commit window so
//! concurrent commits can pile into the batch, then writes and fsyncs the
//! whole batch with one syscall pair. Everyone else waits on a condvar
//! with a short timeout and re-checks — so if a leader dies or the
//! notify is missed, the next waiter simply takes over. This keeps the
//! WAL live even on a single-threaded scheduler pool (a dedicated flusher
//! task could starve if every pool worker blocked waiting on it).
//!
//! ## Segments
//!
//! Records are written to `wal-<first-lsn>.seg` files (zero-padded so
//! lexical order is LSN order), rotated once a segment passes the
//! configured size. A batch is always written whole to one segment. A
//! torn tail — a partially written final batch — is legal *only in the
//! last segment* and is truncated away on open; a short or corrupt frame
//! in any earlier segment means the host edited history and is reported
//! as `TamperDetected`.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use veridb_common::crashpoint;
use veridb_common::obs::Metrics;
use veridb_common::{Error, Result};
use veridb_enclave::mac::{Mac, MacKey};

use crate::record::{scan_records, LogRecord, GENESIS_MAC};
use crate::store::{fsync_dir, io_err};

/// Tunables for one [`Wal`].
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// Segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// How long a group-commit leader lingers before flushing, letting
    /// concurrent commits join the batch. Zero degenerates to
    /// fsync-per-commit.
    pub group_commit_window: Duration,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            segment_bytes: 64 * 1024 * 1024,
            group_commit_window: Duration::from_micros(100),
        }
    }
}

/// A record buffered but not yet durable.
struct Pending {
    lsn: u64,
    frame: Vec<u8>,
}

/// Chain/tip state and the group-commit buffer.
struct WalInner {
    next_lsn: u64,
    tip_mac: Mac,
    pending: Vec<Pending>,
    /// True while some thread is the elected flush leader.
    flushing: bool,
}

/// The current segment file; touched only by the elected flush leader.
struct SegWriter {
    file: Option<File>,
    len: u64,
}

/// What the waiters watch.
struct DurableMark {
    lsn: u64,
    /// A write/fsync failure poisons the WAL: every current and future
    /// waiter gets the same error — a log that silently skipped a batch
    /// would be indistinguishable from a rollback later.
    error: Option<Error>,
}

/// The MAC-chained write-ahead log.
pub struct Wal {
    dir: PathBuf,
    key: MacKey,
    opts: WalOptions,
    metrics: std::sync::Arc<Metrics>,
    inner: Mutex<WalInner>,
    writer: Mutex<SegWriter>,
    durable: Mutex<DurableMark>,
    durable_cv: Condvar,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal").field("dir", &self.dir).finish_non_exhaustive()
    }
}

fn segment_path(dir: &Path, first_lsn: u64) -> PathBuf {
    dir.join(format!("wal-{first_lsn:020}.seg"))
}

/// Segment files in `dir`, sorted by first LSN.
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut segs = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| io_err(dir, "read_dir", &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, "read_dir entry", &e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(lsn_str) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".seg"))
        {
            if let Ok(first_lsn) = lsn_str.parse::<u64>() {
                segs.push((first_lsn, entry.path()));
            }
        }
    }
    segs.sort_unstable_by_key(|(lsn, _)| *lsn);
    Ok(segs)
}

impl Wal {
    /// Open (or create) the log in `dir`, verifying every record's chain
    /// MAC from genesis and truncating a torn tail in the last segment.
    /// Returns the WAL positioned after the last durable record, plus all
    /// records for replay.
    ///
    /// Failure modes: `TamperDetected` for a broken chain, a
    /// non-contiguous LSN run, or a torn frame anywhere but the last
    /// segment's tail; `Io` for plain I/O trouble.
    pub fn open(
        dir: &Path,
        key: MacKey,
        opts: WalOptions,
        metrics: std::sync::Arc<Metrics>,
    ) -> Result<(Wal, Vec<LogRecord>)> {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, "create_dir_all", &e))?;
        let segs = list_segments(dir)?;
        let mut records: Vec<LogRecord> = Vec::new();
        let mut expected_lsn = 1u64;
        let mut prev = GENESIS_MAC;
        let last_idx = segs.len().wrapping_sub(1);
        let mut tail_len = 0u64;
        for (i, (first_lsn, path)) in segs.iter().enumerate() {
            let mut bytes = Vec::new();
            File::open(path)
                .and_then(|mut f| f.read_to_end(&mut bytes))
                .map_err(|e| io_err(path, "read segment", &e))?;
            let (recs, clean) = scan_records(&bytes);
            if clean < bytes.len() {
                if i != last_idx {
                    return Err(Error::TamperDetected(format!(
                        "wal segment {} is corrupt mid-log ({} clean of {} bytes); \
                         only the final segment may carry a torn tail",
                        path.display(),
                        clean,
                        bytes.len()
                    )));
                }
                // Torn tail from a crash mid-write: discard it.
                let f = OpenOptions::new()
                    .write(true)
                    .open(path)
                    .map_err(|e| io_err(path, "open for truncate", &e))?;
                f.set_len(clean as u64)
                    .and_then(|()| f.sync_data())
                    .map_err(|e| io_err(path, "truncate torn tail", &e))?;
            }
            if recs.is_empty() {
                if i != last_idx {
                    return Err(Error::TamperDetected(format!(
                        "wal segment {} is empty mid-log",
                        path.display()
                    )));
                }
                tail_len = clean as u64;
                continue;
            }
            if recs[0].lsn != *first_lsn {
                return Err(Error::TamperDetected(format!(
                    "wal segment {} starts at lsn {}, not its named lsn {}",
                    path.display(),
                    recs[0].lsn,
                    first_lsn
                )));
            }
            for rec in recs {
                if rec.lsn != expected_lsn {
                    return Err(Error::TamperDetected(format!(
                        "wal lsn gap: expected {}, found {} in {}",
                        expected_lsn,
                        rec.lsn,
                        path.display()
                    )));
                }
                if !rec.verify_chain(&key, &prev) {
                    return Err(Error::TamperDetected(format!(
                        "wal chain MAC broken at lsn {} in {}",
                        rec.lsn,
                        path.display()
                    )));
                }
                prev = rec.mac;
                expected_lsn += 1;
                records.push(rec);
            }
            if i == last_idx {
                tail_len = clean as u64;
            }
        }
        // Keep appending to the last segment if it has room.
        let writer = match segs.last() {
            Some((_, path)) if tail_len < opts.segment_bytes => SegWriter {
                file: Some(
                    OpenOptions::new()
                        .append(true)
                        .open(path)
                        .map_err(|e| io_err(path, "open for append", &e))?,
                ),
                len: tail_len,
            },
            _ => SegWriter { file: None, len: 0 },
        };
        let next_lsn = expected_lsn;
        Ok((
            Wal {
                dir: dir.to_path_buf(),
                key,
                opts,
                metrics,
                inner: Mutex::new(WalInner {
                    next_lsn,
                    tip_mac: prev,
                    pending: Vec::new(),
                    flushing: false,
                }),
                writer: Mutex::new(writer),
                durable: Mutex::new(DurableMark {
                    lsn: next_lsn - 1,
                    error: None,
                }),
                durable_cv: Condvar::new(),
            },
            records,
        ))
    }

    fn check_poisoned(&self) -> Result<()> {
        match &self.durable.lock().unwrap().error {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Append one record to the in-memory commit buffer, chaining it onto
    /// the tip. Returns the assigned LSN as the durability ticket for
    /// [`Wal::wait_durable`]. Cheap (no I/O): safe to call under the
    /// engine's commit-order lock.
    pub fn append(&self, epoch: u64, seq_high_water: u64, kind: u8, sql: &str) -> Result<u64> {
        self.check_poisoned()?;
        let mut inner = self.inner.lock().unwrap();
        let lsn = inner.next_lsn;
        let rec = LogRecord::new_chained(
            &self.key,
            &inner.tip_mac,
            lsn,
            epoch,
            seq_high_water,
            kind,
            sql.to_owned(),
        );
        let frame = rec.to_framed_bytes();
        self.metrics.log_appends.inc();
        self.metrics.log_append_bytes.add(frame.len() as u64);
        inner.tip_mac = rec.mac;
        inner.next_lsn += 1;
        inner.pending.push(Pending { lsn, frame });
        drop(inner);
        crashpoint("wal-append-buffered");
        Ok(lsn)
    }

    /// Append a record received from elsewhere (the replication stream)
    /// byte-identically, verifying it chains onto our tip first. Returns
    /// the LSN ticket.
    pub fn append_raw(&self, rec: &LogRecord) -> Result<u64> {
        self.check_poisoned()?;
        let mut inner = self.inner.lock().unwrap();
        if rec.lsn != inner.next_lsn {
            return Err(Error::TamperDetected(format!(
                "shipped record lsn {} does not extend local wal tip {}",
                rec.lsn,
                inner.next_lsn - 1
            )));
        }
        if !rec.verify_chain(&self.key, &inner.tip_mac) {
            return Err(Error::AuthFailed(format!(
                "shipped record lsn {} fails the wal chain MAC",
                rec.lsn
            )));
        }
        let frame = rec.to_framed_bytes();
        self.metrics.log_appends.inc();
        self.metrics.log_append_bytes.add(frame.len() as u64);
        inner.tip_mac = rec.mac;
        inner.next_lsn += 1;
        inner.pending.push(Pending {
            lsn: rec.lsn,
            frame,
        });
        Ok(rec.lsn)
    }

    /// Block until the record with the given ticket (LSN) is fsynced, or
    /// the WAL is poisoned. Leader/follower: see the module docs.
    pub fn wait_durable(&self, ticket: u64) -> Result<()> {
        loop {
            {
                let d = self.durable.lock().unwrap();
                if let Some(e) = &d.error {
                    return Err(e.clone());
                }
                if d.lsn >= ticket {
                    return Ok(());
                }
            }
            let elected = {
                let mut inner = self.inner.lock().unwrap();
                if inner.flushing {
                    false
                } else {
                    inner.flushing = true;
                    true
                }
            };
            if elected {
                let window = self.opts.group_commit_window;
                if !window.is_zero() {
                    std::thread::sleep(window);
                }
                let res = self.flush_batch();
                self.inner.lock().unwrap().flushing = false;
                self.durable_cv.notify_all();
                res?;
            } else {
                let d = self.durable.lock().unwrap();
                if d.lsn >= ticket || d.error.is_some() {
                    continue;
                }
                // Short timeout so a vanished leader can't strand us.
                let _ = self
                    .durable_cv
                    .wait_timeout(d, Duration::from_millis(1))
                    .unwrap();
            }
        }
    }

    /// Block until the durable mark moves past `lsn` (returning the new
    /// mark) or `timeout` elapses (returning the current mark). For
    /// shipper threads waiting on fresh records: unlike
    /// [`wait_durable`](Self::wait_durable) it never elects itself
    /// flusher — nothing may be pending at all, and a commit waiter will
    /// do the flushing when there is.
    pub fn wait_for_durable_past(&self, lsn: u64, timeout: Duration) -> u64 {
        let deadline = std::time::Instant::now() + timeout;
        let mut d = self.durable.lock().unwrap();
        loop {
            if d.lsn > lsn || d.error.is_some() {
                return d.lsn;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return d.lsn;
            }
            let (guard, _) = self
                .durable_cv
                .wait_timeout(d, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            d = guard;
        }
    }

    /// Drive the WAL until nothing is pending and everything appended so
    /// far is durable. Returns the durable tip `(last_lsn, chain_mac)` —
    /// the pair a sealed manifest pins. Call with appends quiesced if the
    /// returned tip must cover *all* records.
    pub fn flush_all(&self) -> Result<(u64, Mac)> {
        loop {
            self.check_poisoned()?;
            let target = {
                let inner = self.inner.lock().unwrap();
                inner.next_lsn - 1
            };
            if target == 0 || self.durable.lock().unwrap().lsn >= target {
                let inner = self.inner.lock().unwrap();
                if inner.pending.is_empty() {
                    return Ok((inner.next_lsn - 1, inner.tip_mac));
                }
                continue;
            }
            self.wait_durable(target)?;
        }
    }

    /// One leader flush: drain the commit buffer, write it whole to one
    /// segment (rotating first if needed), fsync, advance the durable
    /// mark. Crash points bracket every durability transition.
    fn flush_batch(&self) -> Result<()> {
        let (frames, first_lsn, last_lsn) = {
            let mut inner = self.inner.lock().unwrap();
            if inner.pending.is_empty() {
                return Ok(());
            }
            let batch: Vec<Pending> = std::mem::take(&mut inner.pending);
            let first = batch[0].lsn;
            let last = batch[batch.len() - 1].lsn;
            let mut bytes = Vec::with_capacity(batch.iter().map(|p| p.frame.len()).sum());
            for p in &batch {
                bytes.extend_from_slice(&p.frame);
            }
            (bytes, first, last)
        };
        let n_records = last_lsn - first_lsn + 1;
        let res = self.write_and_sync(&frames, first_lsn);
        match res {
            Ok(()) => {
                self.metrics.log_group_commit_batch.record(n_records);
                let mut d = self.durable.lock().unwrap();
                d.lsn = last_lsn;
                drop(d);
                self.durable_cv.notify_all();
                Ok(())
            }
            Err(e) => {
                let mut d = self.durable.lock().unwrap();
                if d.error.is_none() {
                    d.error = Some(e.clone());
                }
                drop(d);
                self.durable_cv.notify_all();
                Err(e)
            }
        }
    }

    fn write_and_sync(&self, frames: &[u8], first_lsn: u64) -> Result<()> {
        crashpoint("wal-pre-write");
        let mut w = self.writer.lock().unwrap();
        if w.file.is_none() || w.len >= self.opts.segment_bytes {
            let path = segment_path(&self.dir, first_lsn);
            let file = OpenOptions::new()
                .create_new(true)
                .append(true)
                .open(&path)
                .map_err(|e| io_err(&path, "create segment", &e))?;
            fsync_dir(&self.dir)?;
            w.file = Some(file);
            w.len = 0;
        }
        let file = w.file.as_mut().expect("segment open");
        file.write_all(frames)
            .map_err(|e| io_err(&self.dir, "write wal batch", &e))?;
        crashpoint("wal-pre-fsync");
        let t0 = Instant::now();
        file.sync_data()
            .map_err(|e| io_err(&self.dir, "fsync wal segment", &e))?;
        self.metrics
            .log_fsync_us
            .record(t0.elapsed().as_micros() as u64);
        crashpoint("wal-post-fsync");
        w.len += frames.len() as u64;
        Ok(())
    }

    /// The LSN of the newest record known durable.
    pub fn durable_lsn(&self) -> u64 {
        self.durable.lock().unwrap().lsn
    }

    /// `(next_lsn, tip_mac)`: where the next append will chain.
    pub fn tip(&self) -> (u64, Mac) {
        let inner = self.inner.lock().unwrap();
        (inner.next_lsn, inner.tip_mac)
    }

    /// Read up to `max` durable records with `lsn >= from_lsn` back off
    /// disk (the replication feed). Never returns records past the
    /// durable mark: a replica must not get ahead of what a recovered
    /// primary would still have.
    pub fn records_from(&self, from_lsn: u64, max: usize) -> Result<Vec<LogRecord>> {
        let durable = self.durable_lsn();
        if from_lsn > durable || max == 0 {
            return Ok(Vec::new());
        }
        let segs = list_segments(&self.dir)?;
        // Start at the last segment whose first LSN is <= from_lsn.
        let start = segs
            .iter()
            .rposition(|(first, _)| *first <= from_lsn)
            .unwrap_or(0);
        let mut out = Vec::new();
        for (_, path) in &segs[start..] {
            let mut bytes = Vec::new();
            File::open(path)
                .and_then(|mut f| f.read_to_end(&mut bytes))
                .map_err(|e| io_err(path, "read segment", &e))?;
            // The clean prefix is all we trust structurally; the durable
            // cap filters any fsync-pending suffix.
            let (recs, _) = scan_records(&bytes);
            for rec in recs {
                if rec.lsn < from_lsn || rec.lsn > durable {
                    continue;
                }
                out.push(rec);
                if out.len() >= max {
                    return Ok(out);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::KIND_INSERT;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn tmpdir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "veridb-wal-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn opts_fast() -> WalOptions {
        WalOptions {
            segment_bytes: 64 * 1024 * 1024,
            group_commit_window: Duration::ZERO,
        }
    }

    fn open(dir: &Path, opts: WalOptions) -> (Wal, Vec<LogRecord>) {
        Wal::open(dir, MacKey::new([1u8; 32]), opts, Arc::new(Metrics::new())).unwrap()
    }

    #[test]
    fn append_flush_reopen_round_trip() {
        let dir = tmpdir("round");
        {
            let (wal, recovered) = open(&dir, opts_fast());
            assert!(recovered.is_empty());
            for i in 0..10 {
                let t = wal
                    .append(1, 100 + i, KIND_INSERT, &format!("INSERT {i}"))
                    .unwrap();
                wal.wait_durable(t).unwrap();
            }
            assert_eq!(wal.durable_lsn(), 10);
        }
        let (wal, recovered) = open(&dir, opts_fast());
        assert_eq!(recovered.len(), 10);
        assert_eq!(recovered[9].sql, "INSERT 9");
        assert_eq!(wal.tip().0, 11);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_batches_concurrent_appends() {
        let dir = tmpdir("group");
        let metrics = Arc::new(Metrics::new());
        let (wal, _) = Wal::open(
            &dir,
            MacKey::new([1u8; 32]),
            WalOptions {
                segment_bytes: 64 * 1024 * 1024,
                group_commit_window: Duration::from_millis(2),
            },
            metrics.clone(),
        )
        .unwrap();
        let wal = Arc::new(wal);
        let mut handles = Vec::new();
        for t in 0..8 {
            let wal = wal.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..20 {
                    let ticket = wal
                        .append(1, 0, KIND_INSERT, &format!("t{t} i{i}"))
                        .unwrap();
                    wal.wait_durable(ticket).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(wal.durable_lsn(), 160);
        let snap = metrics.snapshot();
        assert_eq!(snap.log_appends, 160);
        // Group commit must have amortized: strictly fewer fsyncs than
        // records (the 2 ms window batches the 8 concurrent writers).
        assert!(
            snap.log_fsync_us.count < 160,
            "no batching: {} fsyncs for 160 records",
            snap.log_fsync_us.count
        );
        assert_eq!(snap.log_group_commit_batch.sum, 160);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_in_last_segment_truncates_cleanly() {
        let dir = tmpdir("torn");
        {
            let (wal, _) = open(&dir, opts_fast());
            for i in 0..5 {
                let t = wal.append(1, i, KIND_INSERT, &format!("r{i}")).unwrap();
                wal.wait_durable(t).unwrap();
            }
        }
        // Simulate a crash mid-write: append garbage to the segment.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
        drop(f);
        let (wal, recovered) = open(&dir, opts_fast());
        assert_eq!(recovered.len(), 5);
        // The torn bytes are gone and the log keeps extending cleanly.
        let t = wal.append(1, 9, KIND_INSERT, "after-torn").unwrap();
        wal.wait_durable(t).unwrap();
        drop(wal);
        let (_, recovered) = open(&dir, opts_fast());
        assert_eq!(recovered.len(), 6);
        assert_eq!(recovered[5].sql, "after-torn");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_middle_segment_is_tamper_not_torn_tail() {
        let dir = tmpdir("middle");
        {
            let (wal, _) = open(
                &dir,
                WalOptions {
                    segment_bytes: 64, // force rotation every batch
                    group_commit_window: Duration::ZERO,
                },
            );
            for i in 0..6 {
                let t = wal
                    .append(1, i, KIND_INSERT, &format!("record number {i}"))
                    .unwrap();
                wal.wait_durable(t).unwrap();
            }
        }
        let segs = list_segments(&dir).unwrap();
        assert!(segs.len() >= 3, "expected rotation, got {}", segs.len());
        // Damage the first segment's tail byte: mid-log corruption.
        let bytes = fs::read(&segs[0].1).unwrap();
        fs::write(&segs[0].1, &bytes[..bytes.len() - 1]).unwrap();
        let err = Wal::open(
            &dir,
            MacKey::new([1u8; 32]),
            opts_fast(),
            Arc::new(Metrics::new()),
        )
        .unwrap_err();
        assert!(err.is_security_violation(), "got {err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn edited_record_breaks_the_chain_on_open() {
        let dir = tmpdir("edit");
        {
            let (wal, _) = open(&dir, opts_fast());
            for i in 0..3 {
                let t = wal.append(1, i, KIND_INSERT, "INSERT 100").unwrap();
                wal.wait_durable(t).unwrap();
            }
        }
        let (_, path) = list_segments(&dir).unwrap().remove(0);
        let mut bytes = fs::read(&path).unwrap();
        // Flip a payload byte *and* fix up the frame CRC so only the MAC
        // chain can catch it.
        let (recs, _) = scan_records(&bytes);
        assert_eq!(recs.len(), 3);
        let mut evil = recs[0].clone();
        evil.sql = "INSERT 999".into();
        let mut forged = evil.to_framed_bytes();
        let rest = bytes.split_off(recs[0].to_framed_bytes().len());
        forged.extend_from_slice(&rest);
        fs::write(&path, &forged).unwrap();
        let err = Wal::open(
            &dir,
            MacKey::new([1u8; 32]),
            opts_fast(),
            Arc::new(Metrics::new()),
        )
        .unwrap_err();
        assert!(err.is_security_violation(), "got {err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_key_cannot_read_the_log() {
        let dir = tmpdir("key");
        {
            let (wal, _) = open(&dir, opts_fast());
            let t = wal.append(1, 0, KIND_INSERT, "x").unwrap();
            wal.wait_durable(t).unwrap();
        }
        let err = Wal::open(
            &dir,
            MacKey::new([2u8; 32]),
            opts_fast(),
            Arc::new(Metrics::new()),
        )
        .unwrap_err();
        assert!(err.is_security_violation());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_spreads_records_across_segments_and_reopens() {
        let dir = tmpdir("rotate");
        {
            let (wal, _) = open(
                &dir,
                WalOptions {
                    segment_bytes: 256,
                    group_commit_window: Duration::ZERO,
                },
            );
            for i in 0..40 {
                let t = wal
                    .append(1, i, KIND_INSERT, &format!("INSERT INTO t VALUES ({i})"))
                    .unwrap();
                wal.wait_durable(t).unwrap();
            }
        }
        assert!(list_segments(&dir).unwrap().len() > 1);
        let (wal, recovered) = open(
            &dir,
            WalOptions {
                segment_bytes: 256,
                group_commit_window: Duration::ZERO,
            },
        );
        assert_eq!(recovered.len(), 40);
        assert_eq!(wal.tip().0, 41);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_raw_verifies_the_chain() {
        let dir_a = tmpdir("rawa");
        let dir_b = tmpdir("rawb");
        let (primary, _) = open(&dir_a, opts_fast());
        let (replica, _) = open(&dir_b, opts_fast());
        for i in 0..5 {
            let t = primary.append(1, i, KIND_INSERT, &format!("r{i}")).unwrap();
            primary.wait_durable(t).unwrap();
        }
        let shipped = primary.records_from(1, 100).unwrap();
        assert_eq!(shipped.len(), 5);
        for rec in &shipped {
            let t = replica.append_raw(rec).unwrap();
            replica.wait_durable(t).unwrap();
        }
        assert_eq!(replica.tip(), primary.tip());
        // Re-applying an already-applied record is refused (wrong LSN).
        assert!(replica.append_raw(&shipped[0]).is_err());
        // A forged record is refused by the chain MAC.
        let mut forged = shipped[4].clone();
        forged.lsn = 6;
        forged.sql = "evil".into();
        let err = replica.append_raw(&forged).unwrap_err();
        assert!(err.is_security_violation());
        let _ = fs::remove_dir_all(&dir_a);
        let _ = fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn records_from_respects_durable_cap_and_limit() {
        let dir = tmpdir("feed");
        let (wal, _) = open(&dir, opts_fast());
        let mut last = 0;
        for i in 0..10 {
            last = wal.append(1, i, KIND_INSERT, &format!("r{i}")).unwrap();
        }
        wal.wait_durable(last).unwrap();
        // Buffer two more without waiting: not durable, must not ship.
        wal.append(1, 90, KIND_INSERT, "pending-a").unwrap();
        wal.append(1, 91, KIND_INSERT, "pending-b").unwrap();
        let recs = wal.records_from(4, 100).unwrap();
        assert_eq!(recs.first().map(|r| r.lsn), Some(4));
        assert_eq!(recs.last().map(|r| r.lsn), Some(10));
        let capped = wal.records_from(1, 3).unwrap();
        assert_eq!(capped.len(), 3);
        assert!(wal.records_from(11, 100).unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_all_returns_the_sealed_tip() {
        let dir = tmpdir("seal");
        let (wal, _) = open(&dir, opts_fast());
        assert_eq!(wal.flush_all().unwrap().0, 0, "empty wal tip is lsn 0");
        for i in 0..7 {
            wal.append(2, i, KIND_INSERT, &format!("r{i}")).unwrap();
        }
        let (last, mac) = wal.flush_all().unwrap();
        assert_eq!(last, 7);
        assert_eq!(wal.durable_lsn(), 7);
        assert_eq!(wal.tip(), (8, mac));
        let _ = fs::remove_dir_all(&dir);
    }
}
