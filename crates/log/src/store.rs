//! Sealed epoch manifests, snapshots, and the trusted monotonic counter.
//!
//! An *epoch* is one sealed checkpoint of the database. Sealing epoch `E`
//! writes three things, in a crash-safe order:
//!
//! 1. `snap-<E>.bin` — a plaintext snapshot of every table (the rows
//!    already live in host-readable untrusted pages, so confidentiality
//!    of the snapshot adds nothing; *integrity* comes from its hash being
//!    pinned inside the sealed manifest).
//! 2. `manifest-<E>.sealed` — a [`Manifest`] sealed under an
//!    enclave-derived key: the snapshot hash, the WAL position and chain
//!    MAC the snapshot corresponds to, the enclave timestamp high-water
//!    mark, and the epoch number itself.
//! 3. The [`TrustedCounter`] is bumped to `E` — the *only* step that
//!    commits the epoch. A crash after (1) or (2) leaves a dangling
//!    snapshot/manifest that recovery ignores, because the counter still
//!    names the previous epoch.
//!
//! Recovery then refuses rollback by construction: the host must produce
//! the manifest whose epoch equals the counter (an older one fails the
//! equality), with the snapshot matching the sealed hash (a substituted
//! snapshot fails), and a WAL extending at least to the manifest's
//! `last_lsn` with the manifest's chain MAC at that position (a truncated
//! or forked log fails).
//!
//! The counter file stands in for SGX's hardware monotonic counter. Its
//! MAC (under a key derived from the simulated CPU fuse key) stops the
//! host *editing* it; a host that deletes the entire data directory
//! simulates destroying the hardware counter itself, which no software
//! defense survives — the paper's §5.1 remedy for that is the
//! client-side sequence-interval check, which `veridb-query::portal`
//! implements.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use veridb_common::codec::{put_bytes, put_u16, put_u32, put_u64, Reader};
use veridb_common::{ColumnDef, ColumnType, Error, Result, Row, Schema};
use veridb_enclave::mac::{sha256, Mac, MacKey, MAC_LEN};
use veridb_enclave::sealing::{SealedBlob, Sealer};

/// Map an I/O error to [`Error::Io`] with the path and operation named.
pub(crate) fn io_err(path: &Path, op: &str, e: &std::io::Error) -> Error {
    Error::Io(format!("{op} {}: {e}", path.display()))
}

/// Fsync a directory so a just-created/renamed file's directory entry is
/// durable.
pub(crate) fn fsync_dir(dir: &Path) -> Result<()> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| io_err(dir, "fsync dir", &e))
}

/// Write `bytes` to `path` atomically: write + fsync a temp file, rename
/// it into place, fsync the directory. A crash at any point leaves either
/// the old file or the new one, never a torn mix.
pub fn write_file_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    let dir = path.parent().unwrap_or(Path::new("."));
    let tmp = path.with_extension("tmp");
    let mut f = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&tmp)
        .map_err(|e| io_err(&tmp, "create temp", &e))?;
    f.write_all(bytes)
        .and_then(|()| f.sync_data())
        .map_err(|e| io_err(&tmp, "write temp", &e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| io_err(path, "rename into place", &e))?;
    fsync_dir(dir)
}

// ---------------------------------------------------------------------
// Trusted monotonic counter
// ---------------------------------------------------------------------

const COUNTER_FILE: &str = "counter.bin";

/// The simulated hardware monotonic counter: an 8-byte value MAC'd under
/// a fuse-derived key. [`TrustedCounter::advance_to`] is the only
/// mutation and it never goes backwards.
pub struct TrustedCounter {
    path: PathBuf,
    key: MacKey,
    value: u64,
}

impl std::fmt::Debug for TrustedCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrustedCounter")
            .field("path", &self.path)
            .field("value", &self.value)
            .finish_non_exhaustive()
    }
}

impl TrustedCounter {
    /// Open the counter in `dir`, creating it at zero if absent. A
    /// present-but-forged counter file is `AuthFailed`.
    pub fn open(dir: &Path, key: MacKey) -> Result<TrustedCounter> {
        let path = dir.join(COUNTER_FILE);
        let value = match fs::read(&path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => 0,
            Err(e) => return Err(io_err(&path, "read counter", &e)),
            Ok(bytes) => {
                if bytes.len() != 8 + MAC_LEN {
                    return Err(Error::AuthFailed(format!(
                        "trusted counter file is {} bytes, expected {}",
                        bytes.len(),
                        8 + MAC_LEN
                    )));
                }
                let mut v = [0u8; 8];
                v.copy_from_slice(&bytes[..8]);
                let mut tag = [0u8; MAC_LEN];
                tag.copy_from_slice(&bytes[8..]);
                if !key.verify(&[b"trusted-counter", &v], &Mac(tag)) {
                    return Err(Error::AuthFailed(
                        "trusted counter file failed its MAC (host edited it)".into(),
                    ));
                }
                u64::from_le_bytes(v)
            }
        };
        Ok(TrustedCounter { path, key, value })
    }

    /// Current counter value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Raise the counter to `v` durably. Lowering it is a programming
    /// error and is refused.
    pub fn advance_to(&mut self, v: u64) -> Result<()> {
        if v < self.value {
            return Err(Error::InvalidArgument(format!(
                "monotonic counter cannot go backwards ({} -> {v})",
                self.value
            )));
        }
        if v == self.value {
            return Ok(());
        }
        let le = v.to_le_bytes();
        let tag = self.key.sign(&[b"trusted-counter", &le]);
        let mut bytes = Vec::with_capacity(8 + MAC_LEN);
        bytes.extend_from_slice(&le);
        bytes.extend_from_slice(&tag.0);
        write_file_atomic(&self.path, &bytes)?;
        self.value = v;
        Ok(())
    }

    /// `value + 1`, durably. Returns the new value.
    pub fn bump(&mut self) -> Result<u64> {
        self.advance_to(self.value + 1)?;
        Ok(self.value)
    }
}

// ---------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------

const MANIFEST_MAGIC: &[u8; 8] = b"VDBMAN1\0";

/// The sealed description of one epoch: what state the snapshot captures
/// and where the log continues from.
#[derive(Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Epoch number; must equal the trusted counter to be fresh.
    pub epoch: u64,
    /// LSN of the newest record folded into the snapshot (0 = none).
    pub last_lsn: u64,
    /// WAL chain MAC at `last_lsn` ([`crate::record::GENESIS_MAC`] when
    /// `last_lsn` is 0). Pins the exact log prefix the snapshot covers.
    pub chain_mac: Mac,
    /// Enclave timestamp high-water mark at seal time; recovery advances
    /// past it so endorsement sequence numbers never repeat.
    pub seq_high_water: u64,
    /// SHA-256 of the plaintext snapshot file.
    pub snapshot_hash: [u8; 32],
    /// The verified memory's logical state fingerprint at seal time
    /// (XOR-fold of live cell digests); recovery re-derives it after
    /// replay as a defense-in-depth equality witness.
    pub state_fingerprint: [u8; 32],
}

impl std::fmt::Debug for Manifest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Manifest")
            .field("epoch", &self.epoch)
            .field("last_lsn", &self.last_lsn)
            .field("seq_high_water", &self.seq_high_water)
            .finish_non_exhaustive()
    }
}

impl Manifest {
    /// Plaintext encoding (what gets sealed).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(8 + 8 * 3 + MAC_LEN + 64);
        buf.extend_from_slice(MANIFEST_MAGIC);
        put_u64(&mut buf, self.epoch);
        put_u64(&mut buf, self.last_lsn);
        buf.extend_from_slice(&self.chain_mac.0);
        put_u64(&mut buf, self.seq_high_water);
        buf.extend_from_slice(&self.snapshot_hash);
        buf.extend_from_slice(&self.state_fingerprint);
        buf
    }

    /// Decode a plaintext manifest (after unsealing).
    pub fn decode(bytes: &[u8]) -> Result<Manifest> {
        let mut r = Reader::new(bytes);
        let mut magic = [0u8; 8];
        for b in magic.iter_mut() {
            *b = r.get_u8()?;
        }
        if &magic != MANIFEST_MAGIC {
            return Err(Error::Codec("bad manifest magic".into()));
        }
        let epoch = r.get_u64()?;
        let last_lsn = r.get_u64()?;
        let mut chain = [0u8; MAC_LEN];
        for b in chain.iter_mut() {
            *b = r.get_u8()?;
        }
        let seq_high_water = r.get_u64()?;
        let mut snapshot_hash = [0u8; 32];
        for b in snapshot_hash.iter_mut() {
            *b = r.get_u8()?;
        }
        let mut state_fingerprint = [0u8; 32];
        for b in state_fingerprint.iter_mut() {
            *b = r.get_u8()?;
        }
        if r.remaining() != 0 {
            return Err(Error::Codec("trailing bytes after manifest".into()));
        }
        Ok(Manifest {
            epoch,
            last_lsn,
            chain_mac: Mac(chain),
            seq_high_water,
            snapshot_hash,
            state_fingerprint,
        })
    }

    /// Seal the manifest for persistence. The nonce is derived from the
    /// epoch, which is unique per seal (the counter bump enforces it).
    pub fn seal(&self, sealer: &Sealer) -> Vec<u8> {
        let mut nonce = [0u8; 16];
        nonce.copy_from_slice(&sha256(&[b"manifest-nonce", &self.epoch.to_le_bytes()])[..16]);
        sealer.seal(&self.encode(), nonce).to_bytes()
    }

    /// Decode + unseal + parse a manifest file's bytes. Tampering is
    /// `AuthFailed`; truncation is `Codec`.
    pub fn unseal(bytes: &[u8], sealer: &Sealer) -> Result<Manifest> {
        let blob = SealedBlob::from_bytes(bytes)?;
        Manifest::decode(&sealer.unseal(&blob)?)
    }
}

// ---------------------------------------------------------------------
// Snapshot codec
// ---------------------------------------------------------------------

const SNAPSHOT_MAGIC: &[u8; 8] = b"VDBSNAP1";

/// One table's complete contents at seal time.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSnapshot {
    /// Table name.
    pub name: String,
    /// Schema, including which columns are chained.
    pub schema: Schema,
    /// Every live row, in verified-scan order.
    pub rows: Vec<Row>,
}

fn type_tag(ty: ColumnType) -> u8 {
    match ty {
        ColumnType::Int => 0,
        ColumnType::Float => 1,
        ColumnType::Str => 2,
        ColumnType::Date => 3,
    }
}

fn tag_type(tag: u8) -> Result<ColumnType> {
    Ok(match tag {
        0 => ColumnType::Int,
        1 => ColumnType::Float,
        2 => ColumnType::Str,
        3 => ColumnType::Date,
        _ => return Err(Error::Codec(format!("unknown column type tag {tag}"))),
    })
}

/// Encode a full-database snapshot.
pub fn encode_snapshot(tables: &[TableSnapshot]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(SNAPSHOT_MAGIC);
    put_u32(&mut buf, tables.len() as u32);
    for t in tables {
        put_bytes(&mut buf, t.name.as_bytes());
        let cols = t.schema.columns();
        put_u16(&mut buf, cols.len() as u16);
        for c in cols {
            put_bytes(&mut buf, c.name.as_bytes());
            buf.push(type_tag(c.ty));
            buf.push(c.chained as u8);
        }
        put_u64(&mut buf, t.rows.len() as u64);
        for row in &t.rows {
            row.encode(&mut buf);
        }
    }
    buf
}

/// Decode a snapshot produced by [`encode_snapshot`]. Bounds-checked
/// throughout: truncated or trailing bytes are `Codec` errors, never
/// panics — the file comes from the untrusted host (its *integrity* is
/// established separately by the sealed manifest hash).
pub fn decode_snapshot(bytes: &[u8]) -> Result<Vec<TableSnapshot>> {
    let mut r = Reader::new(bytes);
    let mut magic = [0u8; 8];
    for b in magic.iter_mut() {
        *b = r.get_u8()?;
    }
    if &magic != SNAPSHOT_MAGIC {
        return Err(Error::Codec("bad snapshot magic".into()));
    }
    let ntables = r.get_u32()?;
    let mut tables = Vec::new();
    for _ in 0..ntables {
        let name = String::from_utf8(r.get_bytes()?.to_vec())
            .map_err(|_| Error::Codec("table name is not UTF-8".into()))?;
        let ncols = r.get_u16()?;
        if ncols == 0 {
            return Err(Error::Codec(format!("table {name} has no columns")));
        }
        let mut cols = Vec::with_capacity(ncols as usize);
        for _ in 0..ncols {
            let cname = String::from_utf8(r.get_bytes()?.to_vec())
                .map_err(|_| Error::Codec("column name is not UTF-8".into()))?;
            let ty = tag_type(r.get_u8()?)?;
            let chained = r.get_u8()? != 0;
            cols.push(ColumnDef {
                name: cname,
                ty,
                chained,
            });
        }
        let schema =
            Schema::new(cols).map_err(|e| Error::Codec(format!("bad snapshot schema: {e}")))?;
        let nrows = r.get_u64()?;
        let mut rows = Vec::new();
        for _ in 0..nrows {
            rows.push(Row::decode(&mut r)?);
        }
        tables.push(TableSnapshot { name, schema, rows });
    }
    if r.remaining() != 0 {
        return Err(Error::Codec("trailing bytes after snapshot".into()));
    }
    Ok(tables)
}

// ---------------------------------------------------------------------
// Epoch store: files on disk
// ---------------------------------------------------------------------

/// Path layout and crash-ordered writes for epochs in one data directory.
pub struct EpochStore {
    dir: PathBuf,
}

impl EpochStore {
    /// An epoch store rooted at `dir` (created if absent).
    pub fn new(dir: &Path) -> Result<EpochStore> {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, "create_dir_all", &e))?;
        Ok(EpochStore {
            dir: dir.to_path_buf(),
        })
    }

    /// `snap-<epoch>.bin`.
    pub fn snapshot_path(&self, epoch: u64) -> PathBuf {
        self.dir.join(format!("snap-{epoch:020}.bin"))
    }

    /// `manifest-<epoch>.sealed`.
    pub fn manifest_path(&self, epoch: u64) -> PathBuf {
        self.dir.join(format!("manifest-{epoch:020}.sealed"))
    }

    /// Write snapshot then sealed manifest, each atomically, in that
    /// order. The caller bumps the trusted counter *afterwards*; a crash
    /// anywhere in between leaves the previous epoch fully intact.
    pub fn write_epoch(
        &self,
        manifest: &Manifest,
        sealer: &Sealer,
        snapshot_bytes: &[u8],
    ) -> Result<()> {
        debug_assert_eq!(manifest.snapshot_hash, sha256(&[snapshot_bytes]));
        write_file_atomic(&self.snapshot_path(manifest.epoch), snapshot_bytes)?;
        veridb_common::crashpoint("seal-snapshot-written");
        write_file_atomic(&self.manifest_path(manifest.epoch), &manifest.seal(sealer))?;
        veridb_common::crashpoint("seal-manifest-written");
        Ok(())
    }

    /// Read + unseal the manifest for `epoch`. A missing file reports as
    /// `RollbackDetected` carrying the epoch — if the trusted counter
    /// says epoch `E` was sealed, only the host losing/hiding it explains
    /// its absence.
    pub fn read_manifest(&self, epoch: u64, sealer: &Sealer) -> Result<Manifest> {
        let path = self.manifest_path(epoch);
        let bytes = match fs::read(&path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(Error::RollbackDetected { sequence: epoch });
            }
            Err(e) => return Err(io_err(&path, "read manifest", &e)),
            Ok(b) => b,
        };
        let m = Manifest::unseal(&bytes, sealer)?;
        if m.epoch != epoch {
            // The host renamed some other epoch's manifest into place.
            return Err(Error::RollbackDetected { sequence: epoch });
        }
        Ok(m)
    }

    /// Read the snapshot for `epoch` and check it against the manifest's
    /// sealed hash. A mismatch (or absence) is `RollbackDetected`: the
    /// host substituted or lost the state the manifest promises.
    pub fn read_snapshot(&self, manifest: &Manifest) -> Result<Vec<u8>> {
        let path = self.snapshot_path(manifest.epoch);
        let bytes = match fs::read(&path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(Error::RollbackDetected {
                    sequence: manifest.epoch,
                });
            }
            Err(e) => return Err(io_err(&path, "read snapshot", &e)),
            Ok(b) => b,
        };
        if sha256(&[&bytes]) != manifest.snapshot_hash {
            return Err(Error::RollbackDetected {
                sequence: manifest.epoch,
            });
        }
        Ok(bytes)
    }

    /// Whether any durable VeriDB state (wal/manifest/snapshot/counter)
    /// exists in the directory. Used to catch the "host deleted just the
    /// counter" rollback: counter at zero with state present is refused.
    pub fn any_state_present(dir: &Path) -> bool {
        let Ok(entries) = fs::read_dir(dir) else {
            return false;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("wal-")
                || name.starts_with("manifest-")
                || name.starts_with("snap-")
                || name == COUNTER_FILE
            {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use veridb_common::Value;

    fn tmpdir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "veridb-store-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sealer() -> Sealer {
        Sealer::new([3u8; 32])
    }

    fn manifest(epoch: u64, snap: &[u8]) -> Manifest {
        Manifest {
            epoch,
            last_lsn: 42,
            chain_mac: Mac([7u8; MAC_LEN]),
            seq_high_water: 1000,
            snapshot_hash: sha256(&[snap]),
            state_fingerprint: [9u8; 32],
        }
    }

    #[test]
    fn counter_persists_and_is_monotonic() {
        let dir = tmpdir("ctr");
        let key = MacKey::new([2u8; 32]);
        let mut c = TrustedCounter::open(&dir, key.clone()).unwrap();
        assert_eq!(c.value(), 0);
        assert_eq!(c.bump().unwrap(), 1);
        c.advance_to(5).unwrap();
        assert!(c.advance_to(3).is_err(), "backwards refused");
        drop(c);
        let c = TrustedCounter::open(&dir, key).unwrap();
        assert_eq!(c.value(), 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn forged_counter_file_is_auth_failed() {
        let dir = tmpdir("ctrforge");
        let key = MacKey::new([2u8; 32]);
        let mut c = TrustedCounter::open(&dir, key.clone()).unwrap();
        c.advance_to(9).unwrap();
        // Host rewrites the value without the key.
        let path = dir.join(COUNTER_FILE);
        let mut bytes = fs::read(&path).unwrap();
        bytes[0] = 1; // 9 -> rolled back to 1
        fs::write(&path, &bytes).unwrap();
        let err = TrustedCounter::open(&dir, key).unwrap_err();
        assert!(err.is_security_violation());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_seals_round_trips_and_detects_tampering() {
        let m = manifest(3, b"snapbytes");
        let sealed = m.seal(&sealer());
        let back = Manifest::unseal(&sealed, &sealer()).unwrap();
        assert_eq!(back, m);
        // Flip one ciphertext byte: AuthFailed, not a misparse.
        let mut evil = sealed.clone();
        let mid = evil.len() / 2;
        evil[mid] ^= 1;
        let err = Manifest::unseal(&evil, &sealer()).unwrap_err();
        assert!(err.is_security_violation());
        // Wrong enclave identity cannot unseal.
        assert!(Manifest::unseal(&sealed, &Sealer::new([4u8; 32])).is_err());
        let _ = fs::remove_dir_all(std::env::temp_dir().join("unused"));
    }

    #[test]
    fn snapshot_codec_round_trips() {
        let t = TableSnapshot {
            name: "quotes".into(),
            schema: Schema::new(vec![
                ColumnDef {
                    name: "id".into(),
                    ty: ColumnType::Int,
                    chained: true,
                },
                ColumnDef {
                    name: "sym".into(),
                    ty: ColumnType::Str,
                    chained: false,
                },
            ])
            .unwrap(),
            rows: vec![
                Row::new(vec![Value::Int(1), Value::Str("AAPL".into())]),
                Row::new(vec![Value::Int(2), Value::Str("MSFT".into())]),
            ],
        };
        let empty = TableSnapshot {
            name: "empty".into(),
            schema: Schema::new(vec![ColumnDef {
                name: "k".into(),
                ty: ColumnType::Int,
                chained: true,
            }])
            .unwrap(),
            rows: vec![],
        };
        let bytes = encode_snapshot(&[t.clone(), empty.clone()]);
        let back = decode_snapshot(&bytes).unwrap();
        assert_eq!(back, vec![t, empty]);
    }

    #[test]
    fn snapshot_decode_rejects_truncation_at_every_offset() {
        let t = TableSnapshot {
            name: "t".into(),
            schema: Schema::new(vec![ColumnDef {
                name: "a".into(),
                ty: ColumnType::Int,
                chained: true,
            }])
            .unwrap(),
            rows: vec![Row::new(vec![Value::Int(7)])],
        };
        let bytes = encode_snapshot(&[t]);
        for cut in 0..bytes.len() {
            assert!(decode_snapshot(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode_snapshot(&long).is_err());
    }

    #[test]
    fn epoch_store_detects_substitution_and_absence() {
        let dir = tmpdir("epoch");
        let store = EpochStore::new(&dir).unwrap();
        let snap = encode_snapshot(&[]);
        let m = manifest(1, &snap);
        store.write_epoch(&m, &sealer(), &snap).unwrap();
        // Round trip.
        let back = store.read_manifest(1, &sealer()).unwrap();
        assert_eq!(back, m);
        assert_eq!(store.read_snapshot(&back).unwrap(), snap);
        // Missing manifest for a later epoch: rollback.
        let err = store.read_manifest(2, &sealer()).unwrap_err();
        assert_eq!(err, Error::RollbackDetected { sequence: 2 });
        // Substituted snapshot: rollback.
        fs::write(store.snapshot_path(1), b"different bytes").unwrap();
        let err = store.read_snapshot(&back).unwrap_err();
        assert_eq!(err, Error::RollbackDetected { sequence: 1 });
        // Manifest renamed across epochs: rollback.
        fs::rename(store.manifest_path(1), store.manifest_path(2)).unwrap();
        let err = store.read_manifest(2, &sealer()).unwrap_err();
        assert_eq!(err, Error::RollbackDetected { sequence: 2 });
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn any_state_present_spots_partial_deletions() {
        let dir = tmpdir("present");
        assert!(!EpochStore::any_state_present(&dir));
        fs::write(dir.join("wal-00000000000000000001.seg"), b"").unwrap();
        assert!(EpochStore::any_state_present(&dir));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_file_atomic_replaces_whole_files() {
        let dir = tmpdir("atomic");
        let path = dir.join("blob.bin");
        write_file_atomic(&path, b"first version").unwrap();
        write_file_atomic(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        assert!(!path.with_extension("tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
