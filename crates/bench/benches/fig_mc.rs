//! Multi-client aggregate throughput on the shared scheduler pool.
//!
//! One process-wide work-stealing pool executes every concurrent verified
//! query; this bench sweeps concurrent remote clients {1, 4, 8, 16} at
//! two per-query DOP caps — 1 (pure inter-query parallelism: the pool
//! multiplexes whole queries across cores) and `min(cores, 8)` (each
//! query may also fan out morsels) — and reports aggregate throughput
//! plus client-observed p50/p95. Every remote result is checked against
//! the in-process answer before any number is reported.
//!
//! Concurrency gate: on hosts with ≥ 4 cores the bench *fails* (non-zero
//! exit) if 8 concurrent Q6 clients at DOP 1 do not reach 2.5× the
//! single-client aggregate throughput — concurrent queries sharing one
//! pool must actually run concurrently, not serialize behind each other.
//! Single-core CI skips the gate and only checks correctness.
//!
//! Written to `BENCH_mc.json` for cross-PR tracking.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use veridb::{Value, VeriDb, VeriDbConfig};
use veridb_bench::{f1, scale_from_env, summarize, FigureTable, OpSummary, Scale};
use veridb_workloads::tpch::{self, TpchConfig, TpchData};

const CLIENT_COUNTS: [usize; 4] = [1, 4, 8, 16];
/// Q6 executions per client per sweep cell.
const ROUNDS: usize = 4;
/// Minimum aggregate-throughput ratio, 8 clients vs 1 client, at DOP 1
/// on a multi-core host (gate).
const MIN_8C_SPEEDUP: f64 = 2.5;

fn config(scale: Scale) -> TpchConfig {
    match scale {
        Scale::Paper => TpchConfig {
            lineitem_rows: 120_000,
            part_rows: 4_000,
            ..TpchConfig::default()
        },
        Scale::Small => TpchConfig {
            lineitem_rows: 12_000,
            part_rows: 400,
            ..TpchConfig::default()
        },
    }
}

/// Q6 is one aggregate row with a float sum: epsilon equality (partial
/// sums associate differently across DOPs).
fn rows_equivalent(a: &[veridb::Row], b: &[veridb::Row]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b).all(|(ra, rb)| {
        ra.values().len() == rb.values().len()
            && ra
                .values()
                .iter()
                .zip(rb.values())
                .all(|(x, y)| match (x, y) {
                    (Value::Float(fx), Value::Float(fy)) => {
                        let scale = fx.abs().max(fy.abs()).max(1.0);
                        (fx - fy).abs() <= 1e-9 * scale
                    }
                    _ => x == y,
                })
    })
}

fn counter(db: &VeriDb, name: &str) -> u64 {
    db.metrics()
        .counters()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| v)
        .unwrap_or(0)
}

fn main() {
    let scale = scale_from_env();
    let cfg = config(scale);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let dops = if cores > 1 {
        vec![1usize, cores.min(8)]
    } else {
        vec![1usize]
    };
    println!(
        "Multi-client sweep — lineitem: {} rows, clients {CLIENT_COUNTS:?}, per-query \
         DOP {dops:?}, shared pool: {} thread(s) (scale {scale:?})",
        cfg.lineitem_rows,
        cores.min(8),
    );
    let data = TpchData::generate(&cfg);

    let mut v_cfg = VeriDbConfig::rsws();
    v_cfg.verify_every_ops = None;
    v_cfg.replay_window = 1 << 14;
    v_cfg.max_conns = 64;
    // The one pool every client's queries share; its size — not the
    // client count — bounds total execution threads.
    v_cfg.pool_threads = cores.min(8);
    let db = Arc::new(VeriDb::open(v_cfg).expect("open"));
    data.load(&db).expect("load");

    let sql = tpch::q6();
    let expected = db.sql(sql).expect("in-process Q6");

    let mut server = veridb_net::serve(Arc::clone(&db), "127.0.0.1:0").expect("serve");
    let addr = server.local_addr().to_string();

    let mut t = FigureTable::new(
        "Multi-client: concurrent Q6 clients sharing one scheduler pool \
         (aggregate q/s must scale with clients while total threads stay \
         fixed at the pool size)",
        &[
            "dop",
            "clients",
            "queries",
            "p50 ms",
            "p95 ms",
            "agg q/s",
            "vs 1 client",
            "steals×job",
        ],
    );
    let mut summaries: Vec<OpSummary> = Vec::new();
    let mut gate_ratio = None;
    for &dop in &dops {
        db.set_workers(dop);
        let mut single_client_tput = None;
        for &n in &CLIENT_COUNTS {
            let steals_before = counter(&db, "query.cross_job_steals");
            let mut clients: Vec<veridb_net::RemoteClient> = (0..n)
                .map(|i| {
                    veridb_net::RemoteClient::connect_simulated(
                        &addr,
                        &format!("mc-{dop}-{n}-{i}"),
                        "veridb",
                        Duration::from_secs(120),
                    )
                    .expect("connect")
                })
                .collect();
            let barrier = Barrier::new(n);
            let wall_start = Instant::now();
            let all_samples: Vec<Vec<f64>> = std::thread::scope(|s| {
                let handles: Vec<_> = clients
                    .iter_mut()
                    .map(|client| {
                        let expected = &expected;
                        let barrier = &barrier;
                        s.spawn(move || {
                            barrier.wait();
                            let mut samples = Vec::with_capacity(ROUNDS);
                            for _ in 0..ROUNDS {
                                let start = Instant::now();
                                let got = client.query(sql).expect("remote Q6");
                                samples.push(start.elapsed().as_secs_f64());
                                assert!(
                                    rows_equivalent(&got.rows, &expected.rows),
                                    "remote Q6 must equal the in-process result"
                                );
                            }
                            samples
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("client thread"))
                    .collect()
            });
            let wall = wall_start.elapsed().as_secs_f64();
            for mut c in clients {
                c.close();
            }
            let steals = counter(&db, "query.cross_job_steals") - steals_before;
            let samples: Vec<f64> = all_samples.into_iter().flatten().collect();
            let queries = samples.len();
            let mut summary = summarize(
                &format!("Q6/dop={dop}/clients={n}"),
                &samples,
                wall,
                queries,
            );
            let base = *single_client_tput.get_or_insert(summary.throughput_per_s);
            let ratio = summary.throughput_per_s / base.max(f64::MIN_POSITIVE);
            if dop == 1 && n == 8 {
                gate_ratio = Some(ratio);
            }
            summary.speedup_vs_1w = Some(ratio);
            t.row(vec![
                dop.to_string(),
                n.to_string(),
                queries.to_string(),
                f1(summary.p50_us / 1e3),
                f1(summary.p95_us / 1e3),
                f1(summary.throughput_per_s),
                format!("{ratio:.2}x"),
                steals.to_string(),
            ]);
            summaries.push(summary);
        }
    }
    db.set_workers(1);

    server.shutdown();
    db.verify_now().expect("post-run verification must pass");
    let panics = counter(&db, "net.worker_panics");
    let queued = counter(&db, "net.queued");
    assert_eq!(panics, 0, "no turn may panic during the sweep");
    assert_eq!(queued, 0, "every admitted query must have terminated");
    t.note("Every remote result was asserted equivalent to the in-process path.");
    t.note(
        "steals×job: cross-job work steals — pool workers finishing one \
         query's morsels and pulling another concurrent query's.",
    );
    t.print();
    veridb_bench::write_bench_summary("mc", &summaries);

    // Concurrency gate (multi-core hosts only).
    let ratio = gate_ratio.expect("the dop=1, clients=8 cell ran");
    if cores >= 4 {
        if ratio < MIN_8C_SPEEDUP {
            eprintln!(
                "CONCURRENCY REGRESSION: 8 concurrent Q6 clients reached only \
                 {ratio:.2}x the single-client aggregate throughput (gate: ≥ \
                 {MIN_8C_SPEEDUP:.1}x on a {cores}-core host). Concurrent \
                 queries are serializing on the shared pool."
            );
            std::process::exit(1);
        }
        println!(
            "  concurrency gate passed: 8 clients = {ratio:.2}x 1 client (≥ {MIN_8C_SPEEDUP:.1}x)"
        );
    } else {
        println!(
            "  concurrency gate skipped: host has {cores} core(s); correctness \
             checks still ran at every cell (8 clients = {ratio:.2}x)"
        );
    }
}
