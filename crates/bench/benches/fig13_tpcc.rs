//! Figure 13 — "Transaction throughput on TPC-C dataset."
//!
//! Reproduces §6.3's concurrency experiment: TPC-C NewOrder/Payment
//! throughput as the number of client threads grows from 1 to 8, for
//!
//! - **No RSWS updates** (the ordinary-database baseline), and
//! - RSWS partition counts **1024 / 128 / 16 / 4 / 1**.
//!
//! Paper's claims to reproduce in shape: more RSWSs → less digest-lock
//! contention → higher throughput; with enough partitions the scaling
//! curve tracks the baseline's shape; a single RSWS collapses under
//! concurrency; the RSWS hash updates cost a constant factor on
//! throughput (the paper reports ~3-4× at 1024 RSWSs on their testbed).

use std::sync::Arc;
use veridb::{VeriDb, VeriDbConfig};
use veridb_bench::{f1, scale_from_env, FigureTable, Scale};
use veridb_workloads::{TpccConfig, TpccDriver};

fn tpcc_config(scale: Scale) -> TpccConfig {
    match scale {
        // The paper's 20 warehouses (population still laptop-scaled).
        Scale::Paper => TpccConfig::default(),
        Scale::Small => TpccConfig {
            warehouses: 8,
            districts_per_warehouse: 5,
            customers_per_district: 20,
            items: 400,
            ..TpccConfig::default()
        },
    }
}

fn txns_per_client(scale: Scale) -> u64 {
    match scale {
        Scale::Paper => 500,
        Scale::Small => 150,
    }
}

/// Throughput for one (verification config, client count) cell.
fn run_cell(
    verify: Option<usize>, // None = baseline; Some(p) = p RSWS partitions
    clients: usize,
    tpcc: &TpccConfig,
    txns: u64,
) -> f64 {
    let mut cfg = if verify.is_some() {
        VeriDbConfig::rsws()
    } else {
        VeriDbConfig::baseline()
    };
    if let Some(p) = verify {
        cfg.rsws_partitions = p;
    }
    cfg.verify_every_ops = None; // Figure 13 isolates RSWS lock contention
    let db = VeriDb::open(cfg).expect("open");
    let driver = Arc::new(TpccDriver::load(&db, tpcc.clone()).expect("load"));
    let stats = driver.run_clients(clients, txns);
    if verify.is_some() {
        db.verify_now().expect("honest run verifies");
    }
    stats.tps()
}

/// Cell-cache ablation on the same workload: NewOrder latency and mixed
/// throughput with the enclave-resident cell cache off vs on (default
/// RSWS config, verification deferred to one final `verify_now`).
fn cell_cache_comparison(tpcc: &TpccConfig, txns: u64) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut t = FigureTable::new(
        "Figure 13b: TPC-C with the enclave cell cache off vs on",
        &[
            "cell cache",
            "NewOrder us/txn",
            "mixed TPS (4 clients)",
            "hit ratio",
        ],
    );
    let mut json = serde_json::Map::new();
    for (name, bytes) in [("off", 0usize), ("on (4 MiB)", 4 << 20)] {
        let mut cfg = VeriDbConfig::rsws();
        cfg.verify_every_ops = None;
        cfg.cell_cache_bytes = bytes;
        let db = VeriDb::open(cfg).expect("open");
        let driver = Arc::new(TpccDriver::load(&db, tpcc.clone()).expect("load"));

        // Single-client NewOrder-only loop for a clean latency number.
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for _ in 0..(txns / 4).max(50) {
            let _ = driver.new_order(&mut rng);
        }
        let timed = txns.max(200);
        let start = std::time::Instant::now();
        let mut committed = 0u64;
        for _ in 0..timed {
            if driver.new_order(&mut rng).is_ok() {
                committed += 1;
            }
        }
        let us_per_txn = start.elapsed().as_secs_f64() * 1e6 / committed.max(1) as f64;

        // Mixed workload under concurrency, like the main figure.
        let stats = driver.run_clients(4, txns);
        db.verify_now().expect("honest run verifies");

        let snap = db.metrics();
        let lookups = snap.cache_hits + snap.cache_misses;
        let ratio = if lookups == 0 {
            "-".to_string()
        } else {
            format!("{:.1}%", 100.0 * snap.cache_hits as f64 / lookups as f64)
        };
        t.row(vec![
            name.to_string(),
            f1(us_per_txn),
            f1(stats.tps()),
            ratio,
        ]);
        json.insert(
            name.to_string(),
            serde_json::json!({
                "new_order_us_per_txn": us_per_txn,
                "mixed_tps_4_clients": stats.tps(),
                "cache_hits": snap.cache_hits,
                "cache_misses": snap.cache_misses,
            }),
        );
    }
    t.note("cache off = VERIDB_CELL_CACHE=0; on = the 4 MiB default. NewOrder");
    t.note("latency is a single-client NewOrder-only loop; hit ratio is measured");
    t.note("over the whole run (population + latency loop + mixed clients)");
    t.print();
    veridb_bench::write_json("fig13_cell_cache", &serde_json::Value::Object(json));
}

fn main() {
    let scale = scale_from_env();
    let tpcc = tpcc_config(scale);
    let txns = txns_per_client(scale);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "Figure 13 reproduction — {} warehouses, {} txns/client, {} CPU core(s) \
         (scale {scale:?})",
        tpcc.warehouses, txns, cores
    );
    if cores < 4 {
        println!(
            "NOTE: {cores} core(s) available — client-count scaling (the rising \
             part of the paper's curves) needs real parallelism; on few cores \
             the reproducible signals are the RSWS constant-factor overhead \
             and the single-RSWS degradation under concurrency."
        );
    }

    let configs: Vec<(String, Option<usize>)> = vec![
        ("No RSWS updates".into(), None),
        ("1024 RSWSs".into(), Some(1024)),
        ("128 RSWSs".into(), Some(128)),
        ("16 RSWSs".into(), Some(16)),
        ("4 RSWSs".into(), Some(4)),
        ("1 RSWS".into(), Some(1)),
    ];
    let client_counts: Vec<usize> = (1..=8).collect();

    let mut t = FigureTable::new(
        "Figure 13: TPC-C throughput (TPS) vs #clients",
        &["config", "1", "2", "3", "4", "5", "6", "7", "8"],
    );
    let mut json = serde_json::Map::new();
    for (name, verify) in &configs {
        let mut cells = vec![name.clone()];
        let mut series = Vec::new();
        for &c in &client_counts {
            let tps = run_cell(*verify, c, &tpcc, txns);
            cells.push(f1(tps));
            series.push(tps);
        }
        t.row(cells);
        json.insert(name.clone(), serde_json::json!(series));
    }
    t.note("paper claims: more RSWSs reduce lock contention; with many RSWSs the");
    t.note("scaling curve tracks the no-verification baseline's shape; RSWS hash");
    t.note("updates cost a constant throughput factor (paper: ~3-4x at 1024 RSWSs)");
    t.print();
    veridb_bench::write_json("fig13", &serde_json::Value::Object(json));

    cell_cache_comparison(&tpcc, txns);
}
