//! Figure 13 — "Transaction throughput on TPC-C dataset."
//!
//! Reproduces §6.3's concurrency experiment: TPC-C NewOrder/Payment
//! throughput as the number of client threads grows from 1 to 8, for
//!
//! - **No RSWS updates** (the ordinary-database baseline), and
//! - RSWS partition counts **1024 / 128 / 16 / 4 / 1**.
//!
//! Paper's claims to reproduce in shape: more RSWSs → less digest-lock
//! contention → higher throughput; with enough partitions the scaling
//! curve tracks the baseline's shape; a single RSWS collapses under
//! concurrency; the RSWS hash updates cost a constant factor on
//! throughput (the paper reports ~3-4× at 1024 RSWSs on their testbed).

use std::sync::Arc;
use veridb::{VeriDb, VeriDbConfig};
use veridb_bench::{f1, scale_from_env, FigureTable, Scale};
use veridb_workloads::{TpccConfig, TpccDriver};

fn tpcc_config(scale: Scale) -> TpccConfig {
    match scale {
        // The paper's 20 warehouses (population still laptop-scaled).
        Scale::Paper => TpccConfig::default(),
        Scale::Small => TpccConfig {
            warehouses: 8,
            districts_per_warehouse: 5,
            customers_per_district: 20,
            items: 400,
            ..TpccConfig::default()
        },
    }
}

fn txns_per_client(scale: Scale) -> u64 {
    match scale {
        Scale::Paper => 500,
        Scale::Small => 150,
    }
}

/// Throughput for one (verification config, client count) cell.
fn run_cell(
    verify: Option<usize>, // None = baseline; Some(p) = p RSWS partitions
    clients: usize,
    tpcc: &TpccConfig,
    txns: u64,
) -> f64 {
    let mut cfg = if verify.is_some() {
        VeriDbConfig::rsws()
    } else {
        VeriDbConfig::baseline()
    };
    if let Some(p) = verify {
        cfg.rsws_partitions = p;
    }
    cfg.verify_every_ops = None; // Figure 13 isolates RSWS lock contention
    let db = VeriDb::open(cfg).expect("open");
    let driver = Arc::new(TpccDriver::load(&db, tpcc.clone()).expect("load"));
    let stats = driver.run_clients(clients, txns);
    if verify.is_some() {
        db.verify_now().expect("honest run verifies");
    }
    stats.tps()
}

fn main() {
    let scale = scale_from_env();
    let tpcc = tpcc_config(scale);
    let txns = txns_per_client(scale);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "Figure 13 reproduction — {} warehouses, {} txns/client, {} CPU core(s) \
         (scale {scale:?})",
        tpcc.warehouses, txns, cores
    );
    if cores < 4 {
        println!(
            "NOTE: {cores} core(s) available — client-count scaling (the rising \
             part of the paper's curves) needs real parallelism; on few cores \
             the reproducible signals are the RSWS constant-factor overhead \
             and the single-RSWS degradation under concurrency."
        );
    }

    let configs: Vec<(String, Option<usize>)> = vec![
        ("No RSWS updates".into(), None),
        ("1024 RSWSs".into(), Some(1024)),
        ("128 RSWSs".into(), Some(128)),
        ("16 RSWSs".into(), Some(16)),
        ("4 RSWSs".into(), Some(4)),
        ("1 RSWS".into(), Some(1)),
    ];
    let client_counts: Vec<usize> = (1..=8).collect();

    let mut t = FigureTable::new(
        "Figure 13: TPC-C throughput (TPS) vs #clients",
        &["config", "1", "2", "3", "4", "5", "6", "7", "8"],
    );
    let mut json = serde_json::Map::new();
    for (name, verify) in &configs {
        let mut cells = vec![name.clone()];
        let mut series = Vec::new();
        for &c in &client_counts {
            let tps = run_cell(*verify, c, &tpcc, txns);
            cells.push(f1(tps));
            series.push(tps);
        }
        t.row(cells);
        json.insert(name.clone(), serde_json::json!(series));
    }
    t.note("paper claims: more RSWSs reduce lock contention; with many RSWSs the");
    t.note("scaling curve tracks the no-verification baseline's shape; RSWS hash");
    t.note("updates cost a constant throughput factor (paper: ~3-4x at 1024 RSWSs)");
    t.print();
    veridb_bench::write_json("fig13", &serde_json::Value::Object(json));
}
