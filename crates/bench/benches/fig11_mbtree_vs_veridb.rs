//! Figure 11 — "Latency of reads/writes for MB-tree and VeriDB."
//!
//! Reproduces §6.2: the same mixed read/write stream runs against
//!
//! - **MB-Tree**: the classic MHT-based design — every write recomputes
//!   the hash path to the root under a global lock; every read produces a
//!   verification object the client checks against the root hash;
//! - **VeriDB**: RSWS digests + non-quiescent verification at one page
//!   scan per 1 000 operations (the §6.2 configuration).
//!
//! Paper's claim to reproduce in shape: VeriDB cuts read/write latency by
//! 94–96% (the paper's y-axis is log-scale, ops sitting at 2 µs vs
//! 30–130 µs).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;
use veridb::{VeriDb, VeriDbConfig};
use veridb_bench::{f2, pct, scale_from_env, FigureTable, Scale};
use veridb_mbtree::MbTree;
use veridb_workloads::{MicroOp, MicroWorkload};

fn workload(scale: Scale) -> MicroWorkload {
    match scale {
        // Paper §6.2 uses 100K ops over the §6.1 initial state.
        Scale::Paper => MicroWorkload {
            operations: 100_000,
            ..MicroWorkload::default()
        },
        Scale::Small => MicroWorkload::scaled(150_000, 8_000),
    }
}

fn kind_of(op: &MicroOp) -> &'static str {
    match op {
        MicroOp::Get(_) => "Get",
        MicroOp::Insert(..) => "Insert",
        MicroOp::Delete(_) => "Delete",
        MicroOp::Update(..) => "Update",
    }
}

fn main() {
    let scale = scale_from_env();
    let w = workload(scale);
    println!(
        "Figure 11 reproduction — initial pairs: {}, ops: {} (scale {scale:?})",
        w.initial_pairs, w.operations
    );

    // --- VeriDB with background verification at 1000 ops/scan -----------
    let mut cfg = VeriDbConfig::rsws();
    cfg.verify_every_ops = Some(1000);
    let db = VeriDb::open(cfg).expect("open");
    db.sql("CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)")
        .expect("ddl");
    let table = db.table("kv").expect("table");
    w.load_table(&table).expect("load");
    let before = db.metrics();
    let mut veridb_lat: BTreeMap<&'static str, (f64, u64)> = BTreeMap::new();
    for op in w.ops() {
        let start = Instant::now();
        MicroWorkload::apply_table(&table, &op).expect("op");
        let dt = start.elapsed().as_secs_f64();
        let e = veridb_lat.entry(kind_of(&op)).or_insert((0.0, 0));
        e.0 += dt;
        e.1 += 1;
    }
    assert!(db.stop_verifier().is_none(), "honest run must verify");
    println!("  obs Δ: {}", db.metrics().since(&before).summary_line());
    let _ = Arc::strong_count(&table);

    // --- MB-Tree baseline -------------------------------------------------
    let tree = MbTree::new();
    w.load_mbtree(&tree);
    let mut mbt_lat: BTreeMap<&'static str, (f64, u64)> = BTreeMap::new();
    for op in w.ops() {
        let start = Instant::now();
        MicroWorkload::apply_mbtree(&tree, &op).expect("op");
        let dt = start.elapsed().as_secs_f64();
        let e = mbt_lat.entry(kind_of(&op)).or_insert((0.0, 0));
        e.0 += dt;
        e.1 += 1;
    }

    // Approximate values digitized from the paper's Figure 11 (µs).
    let paper: BTreeMap<&str, (f64, f64)> = [
        ("Get", (30.0, 2.0)),
        ("Insert", (130.0, 3.3)),
        ("Delete", (90.0, 2.4)),
        ("Update", (120.0, 3.2)),
    ]
    .into_iter()
    .collect();

    let mut t = FigureTable::new(
        "Figure 11: op latency (µs) — MB-Tree vs VeriDB (verifier @1000 ops/scan)",
        &[
            "op",
            "mb-tree",
            "veridb",
            "reduction",
            "paper(mbt/veridb)",
            "paper reduction",
        ],
    );
    let mut json = serde_json::Map::new();
    for op in ["Get", "Insert", "Delete", "Update"] {
        let (ms, mn) = mbt_lat[op];
        let (vs, vn) = veridb_lat[op];
        let m = ms / mn as f64 * 1e6;
        let v = vs / vn as f64 * 1e6;
        let p = paper[op];
        t.row(vec![
            op.to_string(),
            f2(m),
            f2(v),
            pct(1.0 - v / m),
            format!("{:.0}/{:.1}", p.0, p.1),
            pct(1.0 - p.1 / p.0),
        ]);
        json.insert(
            op.to_lowercase(),
            serde_json::json!({"mbtree_us": m, "veridb_us": v}),
        );
    }
    t.note("paper claim: 94-96% latency reduction; MB-Tree writes serialize on the root hash");
    t.print();
    veridb_bench::write_json("fig11", &serde_json::Value::Object(json));
}
