//! Figure 12 (scaling panel) — morsel-driven multi-thread execution.
//!
//! Runs the TPC-H analytical mix (Q1, Q6, Q3) with RS/WS maintenance on,
//! sweeping the worker-pool size over 1/2/4/8. Each worker executes
//! verified scans over its own key-range morsels, so the parallel runs do
//! exactly the same §5.2 completeness checks as the serial one — the
//! table asserts result equivalence at every pool size before reporting
//! a speedup.
//!
//! Speedups are *reported, not asserted*: on a single-core host the pool
//! adds scheduling overhead instead of parallelism, and the interesting
//! signal is that verified results stay identical while the morsel layer
//! is engaged (the `parallel_regions` / `morsels_dispatched` deltas are
//! printed per run).

use std::time::Instant;
use veridb::{PlanOptions, Value, VeriDb, VeriDbConfig};
use veridb_bench::{f2, scale_from_env, summarize, FigureTable, Scale};
use veridb_workloads::tpch::{self, TpchConfig, TpchData};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Timed repetitions per (query, workers) cell for the p50/p95 summary.
const SAMPLES: usize = 3;

fn config(scale: Scale) -> TpchConfig {
    match scale {
        Scale::Paper => TpchConfig {
            lineitem_rows: 600_000,
            part_rows: 20_000,
            ..TpchConfig::default()
        },
        Scale::Small => TpchConfig::default(), // 60k lineitem / 2k part
    }
}

/// Result equivalence across worker counts: identical shape and order;
/// float cells compare with a relative epsilon because per-morsel partial
/// sums associate differently than one serial left-fold.
fn rows_equivalent(a: &[veridb::Row], b: &[veridb::Row]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b).all(|(ra, rb)| {
        ra.values().len() == rb.values().len()
            && ra
                .values()
                .iter()
                .zip(rb.values())
                .all(|(x, y)| match (x, y) {
                    (Value::Float(fx), Value::Float(fy)) => {
                        let scale = fx.abs().max(fy.abs()).max(1.0);
                        (fx - fy).abs() <= 1e-9 * scale
                    }
                    _ => x == y,
                })
    })
}

fn main() {
    let scale = scale_from_env();
    let cfg = config(scale);
    println!(
        "Figure 12 scaling — lineitem: {} rows, part: {} rows, workers {WORKER_COUNTS:?} \
         (scale {scale:?}, host cores: {})",
        cfg.lineitem_rows,
        cfg.part_rows,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );
    let data = TpchData::generate(&cfg);

    let mut v_cfg = VeriDbConfig::rsws();
    v_cfg.verify_every_ops = None;
    let db = VeriDb::open(v_cfg).expect("open");
    data.load(&db).expect("load");

    let opts = PlanOptions::default();
    let cases: [(&str, &str); 3] = [("Q1", tpch::q1()), ("Q6", tpch::q6()), ("Q3", tpch::q3())];

    let mut t = FigureTable::new(
        "Figure 12 scaling: TPC-H under morsel-driven parallel execution \
         (time in s; speedup vs 1 worker)",
        &["query", "workers", "time", "speedup", "morsels", "rows"],
    );
    let mut json = serde_json::Map::new();
    let mut summaries = Vec::new();
    for (name, sql) in cases {
        let mut serial: Option<(f64, Vec<veridb::Row>)> = None;
        for w in WORKER_COUNTS {
            db.set_workers(w);
            // Warm-up (faults page maps in, primes caches).
            let _ = db.sql_with(sql, &opts).expect("query");
            let before = db.metrics();
            let mut samples = Vec::with_capacity(SAMPLES);
            let mut r = None;
            let wall_start = Instant::now();
            for _ in 0..SAMPLES {
                let start = Instant::now();
                r = Some(db.sql_with(sql, &opts).expect("query"));
                samples.push(start.elapsed().as_secs_f64());
            }
            let wall = wall_start.elapsed().as_secs_f64();
            let r = r.expect("at least one sample ran");
            let secs = veridb_bench::percentile(&samples, 0.5);
            summaries.push(summarize(
                &format!("{name}/workers={w}"),
                &samples,
                wall,
                SAMPLES,
            ));
            let delta = db.metrics().since(&before);
            let (base_secs, base_rows) = match &serial {
                None => {
                    serial = Some((secs, r.rows.clone()));
                    (secs, &serial.as_ref().expect("just set").1)
                }
                Some((s, rows)) => (*s, rows),
            };
            assert!(
                rows_equivalent(&r.rows, base_rows),
                "{name} at {w} workers must return the serial result"
            );
            t.row(vec![
                name.to_string(),
                w.to_string(),
                f2(secs),
                format!("{:.2}x", base_secs / secs),
                delta.morsels_dispatched.to_string(),
                r.rows.len().to_string(),
            ]);
            json.insert(
                format!("{name}/workers={w}"),
                serde_json::json!({
                    "seconds": secs,
                    "speedup_vs_serial": base_secs / secs,
                    "morsels_dispatched": delta.morsels_dispatched,
                    "parallel_regions": delta.parallel_regions,
                    "rows": r.rows.len(),
                }),
            );
        }
    }
    db.set_workers(1);
    db.verify_now().expect("post-run verification must pass");
    t.note(
        "Results verified identical at every pool size; a full RSWS \
         verification pass ran clean after the sweep.",
    );
    t.note(
        "Speedup is reported, not asserted: it tracks the host's core \
         count, and single-core CI shows ~1.0x with the morsel layer still \
         fully engaged.",
    );
    t.print();
    veridb_bench::write_json("fig12_scaling", &serde_json::Value::Object(json));
    veridb_bench::write_bench_summary("scaling", &summaries);
}
