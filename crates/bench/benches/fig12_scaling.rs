//! Figure 12 (scaling panel) — morsel-driven multi-thread execution over
//! the shared-nothing verified read path.
//!
//! Runs the TPC-H analytical mix (Q1, Q6, Q3) with RS/WS maintenance on,
//! sweeping the worker-pool size over 1/2/4/8, plus a cache-off Q6 sweep
//! (`Q6(nocache)`) so the cell cache's shard-lock behaviour is visible in
//! isolation. Each worker executes verified scans over its own key-range
//! morsels with a thread-local digest delta and block-allocated
//! timestamps, so the parallel runs do exactly the same §5.2 completeness
//! checks as the serial one — the table asserts result equivalence at
//! every pool size before reporting a speedup.
//!
//! Scaling gate: on hosts with ≥ 4 cores the bench *fails* (non-zero
//! exit) if Q1 at 8 workers does not reach 2× its 1-worker throughput —
//! that was exactly the regression the shared-nothing refactor removed,
//! and it must not come back silently. Single-core CI skips the gate (the
//! pool adds scheduling overhead instead of parallelism there) and only
//! checks equivalence.

use std::time::Instant;
use veridb::{PlanOptions, Value, VeriDb, VeriDbConfig};
use veridb_bench::{f2, scale_from_env, summarize, FigureTable, Scale};
use veridb_workloads::tpch::{self, TpchConfig, TpchData};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Timed repetitions per (query, workers) cell for the p50/p95 summary.
const SAMPLES: usize = 3;
/// Minimum Q1 speedup at 8 workers on a multi-core host (gate).
const MIN_Q1_8W_SPEEDUP: f64 = 2.0;
/// Minimum Q3 speedup at 8 workers on a multi-core host (gate): the
/// work-stealing scheduler, partitioned join build, and parallel sort
/// tail must keep the post-scan pipeline off the serial path.
const MIN_Q3_8W_SPEEDUP: f64 = 2.5;

fn config(scale: Scale) -> TpchConfig {
    match scale {
        Scale::Paper => TpchConfig {
            lineitem_rows: 600_000,
            part_rows: 20_000,
            ..TpchConfig::default()
        },
        Scale::Small => TpchConfig::default(), // 60k lineitem / 2k part
    }
}

/// Result equivalence across worker counts: identical shape and order;
/// float cells compare with a relative epsilon because per-morsel partial
/// sums associate differently than one serial left-fold.
fn rows_equivalent(a: &[veridb::Row], b: &[veridb::Row]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b).all(|(ra, rb)| {
        ra.values().len() == rb.values().len()
            && ra
                .values()
                .iter()
                .zip(rb.values())
                .all(|(x, y)| match (x, y) {
                    (Value::Float(fx), Value::Float(fy)) => {
                        let scale = fx.abs().max(fy.abs()).max(1.0);
                        (fx - fy).abs() <= 1e-9 * scale
                    }
                    _ => x == y,
                })
    })
}

fn main() {
    let scale = scale_from_env();
    let cfg = config(scale);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "Figure 12 scaling — lineitem: {} rows, part: {} rows, workers {WORKER_COUNTS:?} \
         (scale {scale:?}, host cores: {cores})",
        cfg.lineitem_rows, cfg.part_rows,
    );
    let data = TpchData::generate(&cfg);

    let mut v_cfg = VeriDbConfig::rsws();
    v_cfg.verify_every_ops = None;
    // Pin the shared scheduler pool to the sweep's widest DOP so the
    // worker sweep measures per-query parallelism, not pool sizing (and
    // stays comparable with the per-query-pool numbers of earlier runs).
    v_cfg.pool_threads = *WORKER_COUNTS.iter().max().expect("non-empty sweep");
    let db = VeriDb::open(v_cfg).expect("open");
    data.load(&db).expect("load");

    // A second database with the cell cache off, so Q6 can be swept in
    // both modes: the cache-on run exercises the shared-mode shard locks,
    // the cache-off run the pure delta path.
    let mut nc_cfg = VeriDbConfig::rsws();
    nc_cfg.verify_every_ops = None;
    nc_cfg.pool_threads = *WORKER_COUNTS.iter().max().expect("non-empty sweep");
    nc_cfg.cell_cache_bytes = 0;
    let db_nocache = VeriDb::open(nc_cfg).expect("open (cache off)");
    data.load(&db_nocache).expect("load (cache off)");

    let opts = PlanOptions::default();
    let cases: [(&str, &str, &VeriDb); 4] = [
        ("Q1", tpch::q1(), &db),
        ("Q6", tpch::q6(), &db),
        ("Q3", tpch::q3(), &db),
        ("Q6(nocache)", tpch::q6(), &db_nocache),
    ];

    let mut t = FigureTable::new(
        "Figure 12 scaling: TPC-H under shared-nothing morsel-driven \
         parallel execution (time in s; speedup vs 1 worker)",
        &[
            "query", "workers", "time", "speedup", "morsels", "steals", "merges", "ts_blks", "rows",
        ],
    );
    let mut json = serde_json::Map::new();
    let mut summaries = Vec::new();
    let mut q1_8w_speedup = None;
    let mut q3_8w_speedup = None;
    for (name, sql, target) in cases {
        let mut serial: Option<(f64, Vec<veridb::Row>)> = None;
        for w in WORKER_COUNTS {
            target.set_workers(w);
            // Warm-up (faults page maps in, primes caches).
            let _ = target.sql_with(sql, &opts).expect("query");
            let before = target.metrics();
            let mut samples = Vec::with_capacity(SAMPLES);
            let mut r = None;
            let wall_start = Instant::now();
            for _ in 0..SAMPLES {
                let start = Instant::now();
                r = Some(target.sql_with(sql, &opts).expect("query"));
                samples.push(start.elapsed().as_secs_f64());
            }
            let wall = wall_start.elapsed().as_secs_f64();
            let r = r.expect("at least one sample ran");
            let secs = veridb_bench::percentile(&samples, 0.5);
            let delta = target.metrics().since(&before);
            let (base_secs, base_rows) = match &serial {
                None => {
                    serial = Some((secs, r.rows.clone()));
                    (secs, &serial.as_ref().expect("just set").1)
                }
                Some((s, rows)) => (*s, rows),
            };
            assert!(
                rows_equivalent(&r.rows, base_rows),
                "{name} at {w} workers must return the serial result"
            );
            let speedup = base_secs / secs;
            if name == "Q1" && w == 8 {
                q1_8w_speedup = Some(speedup);
            }
            if name == "Q3" && w == 8 {
                q3_8w_speedup = Some(speedup);
            }
            let mut s = summarize(&format!("{name}/workers={w}"), &samples, wall, SAMPLES);
            s.speedup_vs_1w = Some(speedup);
            summaries.push(s);
            t.row(vec![
                name.to_string(),
                w.to_string(),
                f2(secs),
                format!("{speedup:.2}x"),
                delta.morsels_dispatched.to_string(),
                delta.morsels_stolen.to_string(),
                delta.delta_merges.to_string(),
                delta.ts_blocks_allocated.to_string(),
                r.rows.len().to_string(),
            ]);
            let worker_morsels: Vec<u64> = delta.worker_morsels.to_vec();
            let worker_steals: Vec<u64> = delta.worker_steals.to_vec();
            json.insert(
                format!("{name}/workers={w}"),
                serde_json::json!({
                    "seconds": secs,
                    "speedup_vs_1w": speedup,
                    "morsels_dispatched": delta.morsels_dispatched,
                    "morsels_stolen": delta.morsels_stolen,
                    "parallel_regions": delta.parallel_regions,
                    "delta_merges": delta.delta_merges,
                    "ts_blocks_allocated": delta.ts_blocks_allocated,
                    "part_lock_wait_ns": delta.part_lock_wait_ns,
                    "worker_morsels": worker_morsels,
                    "worker_steals": worker_steals,
                    "rows": r.rows.len(),
                }),
            );
        }
    }
    db.set_workers(1);
    db_nocache.set_workers(1);
    db.verify_now().expect("post-run verification must pass");
    db_nocache
        .verify_now()
        .expect("post-run verification must pass (cache off)");
    t.note(
        "Results verified identical at every pool size; a full RSWS \
         verification pass ran clean on both databases after the sweep.",
    );
    t.note(
        "merges/ts_blks: thread-local digest deltas merged into partition \
         state and timestamp blocks allocated — the shared-nothing path's \
         contention-avoidance work.",
    );
    t.print();
    veridb_bench::write_json("fig12_scaling", &serde_json::Value::Object(json));
    veridb_bench::write_bench_summary("scaling", &summaries);

    // Scaling gates (multi-core hosts only).
    let q1 = q1_8w_speedup.expect("Q1 swept to 8 workers");
    let q3 = q3_8w_speedup.expect("Q3 swept to 8 workers");
    if cores >= 4 {
        let mut failed = false;
        if q1 < MIN_Q1_8W_SPEEDUP {
            eprintln!(
                "SCALING REGRESSION: Q1 at 8 workers reached only {q1:.2}x its \
                 1-worker throughput (gate: ≥ {MIN_Q1_8W_SPEEDUP:.1}x on a \
                 {cores}-core host). The verified read path has re-serialized."
            );
            failed = true;
        }
        if q3 < MIN_Q3_8W_SPEEDUP {
            eprintln!(
                "SCALING REGRESSION: Q3 at 8 workers reached only {q3:.2}x its \
                 1-worker throughput (gate: ≥ {MIN_Q3_8W_SPEEDUP:.1}x on a \
                 {cores}-core host). The join build or sort tail has \
                 re-serialized (Amdahl gap reopened)."
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "  scaling gates passed: Q1@8w = {q1:.2}x (≥ {MIN_Q1_8W_SPEEDUP:.1}x), \
             Q3@8w = {q3:.2}x (≥ {MIN_Q3_8W_SPEEDUP:.1}x)"
        );
    } else {
        println!(
            "  scaling gates skipped: host has {cores} core(s); equivalence \
             checks still ran at every pool size (Q1@8w = {q1:.2}x, Q3@8w = {q3:.2}x)"
        );
    }
}
