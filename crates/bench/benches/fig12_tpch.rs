//! Figure 12 — "Execution time on TPC-H dataset."
//!
//! Reproduces §6.3's analytical experiment: TPC-H Q1, Q6 and Q19 run under
//!
//! - **Baseline**: verifiability disabled,
//! - **VeriDB**: RS/WS maintenance on (the figure's "w/ RSWS" bars),
//!
//! with each query's time split into **scan nodes** (the verified leaf
//! access methods, where all of VeriDB's overhead lives) and **other
//! nodes** (joins/aggregation inside the enclave, which the paper observes
//! add *no* extra overhead). Q19 runs under both plans the paper
//! discusses: MergeJoin and NestedLoopJoin.
//!
//! Paper's claims to reproduce in shape: overhead concentrated in the scan
//! nodes; relative overhead 9% (Q19 NLJ, compute-bound) to 39% (Q1/Q6,
//! scan-bound).

use std::time::Instant;
use veridb::{PlanOptions, PreferredJoin, VeriDb, VeriDbConfig};
use veridb_bench::{f2, scale_from_env, FigureTable, Scale};
use veridb_workloads::tpch::{self, TpchConfig, TpchData};

fn config(scale: Scale) -> TpchConfig {
    match scale {
        Scale::Paper => TpchConfig {
            lineitem_rows: 600_000,
            part_rows: 20_000,
            ..TpchConfig::default()
        },
        Scale::Small => TpchConfig::default(), // 60k lineitem / 2k part
    }
}

struct Measured {
    total_s: f64,
    scan_s: f64,
    rows: usize,
}

/// Time a query, plus the bare verified-scan time of the tables it reads
/// (the "scan nodes" share of the figure's stacked bars).
fn measure(db: &VeriDb, sql: &str, opts: &PlanOptions, tables: &[&str]) -> Measured {
    // Warm-up run (first touch marks pages, faults page maps in).
    let _ = db.sql_with(sql, opts).expect("query");
    let start = Instant::now();
    let r = db.sql_with(sql, opts).expect("query");
    let total_s = start.elapsed().as_secs_f64();

    let mut scan_s = 0.0;
    for t in tables {
        let table = db.table(t).expect("table");
        let start = Instant::now();
        let mut scan = table.seq_scan();
        let mut n = 0usize;
        for row in &mut scan {
            row.expect("verified row");
            n += 1;
        }
        std::hint::black_box(n);
        scan_s += start.elapsed().as_secs_f64();
    }
    Measured {
        total_s,
        scan_s: scan_s.min(total_s),
        rows: r.rows.len(),
    }
}

fn main() {
    let scale = scale_from_env();
    let cfg = config(scale);
    println!(
        "Figure 12 reproduction — lineitem: {} rows, part: {} rows (scale {scale:?})",
        cfg.lineitem_rows, cfg.part_rows
    );
    let data = TpchData::generate(&cfg);

    let mut base_cfg = VeriDbConfig::baseline();
    base_cfg.verify_every_ops = None;
    let baseline_db = VeriDb::open(base_cfg).expect("open");
    data.load(&baseline_db).expect("load baseline");

    let mut v_cfg = VeriDbConfig::rsws();
    v_cfg.verify_every_ops = Some(1000);
    let veridb_db = VeriDb::open(v_cfg).expect("open");
    data.load(&veridb_db).expect("load veridb");

    let auto = PlanOptions::default();
    let merge = PlanOptions {
        prefer_join: PreferredJoin::Merge,
        ..Default::default()
    };
    let nlj = PlanOptions {
        prefer_join: PreferredJoin::NestedLoop,
        ..Default::default()
    };

    let cases: Vec<(&str, &str, PlanOptions, Vec<&str>)> = vec![
        ("Q1", tpch::q1(), auto, vec!["lineitem"]),
        ("Q6", tpch::q6(), auto, vec!["lineitem"]),
        (
            "Q19 (MergeJoin)",
            tpch::q19(),
            merge,
            vec!["lineitem", "part"],
        ),
        (
            "Q19 (NestedLoopJoin)",
            tpch::q19(),
            nlj,
            vec!["lineitem", "part"],
        ),
        // Beyond the paper's set: a 3-way join with grouping/order/limit,
        // showing the engine generalizes past the evaluated queries.
        (
            "Q3 (extra)",
            tpch::q3(),
            auto,
            vec!["lineitem", "orders", "customer"],
        ),
    ];

    let mut t = FigureTable::new(
        "Figure 12: TPC-H execution time (s), split scan-nodes vs other-nodes",
        &[
            "query",
            "base scan",
            "base other",
            "base total",
            "veridb scan",
            "veridb other",
            "veridb total",
            "overhead",
        ],
    );
    let mut json = serde_json::Map::new();
    for (name, sql, opts, tables) in cases {
        let b = measure(&baseline_db, sql, &opts, &tables);
        let obs_before = veridb_db.metrics();
        let v = measure(&veridb_db, sql, &opts, &tables);
        println!(
            "  obs Δ {name}: {}",
            veridb_db.metrics().since(&obs_before).summary_line()
        );
        assert_eq!(b.rows, v.rows, "both configs must return the same answer");
        let overhead = (v.total_s - b.total_s) / b.total_s;
        t.row(vec![
            name.to_string(),
            f2(b.scan_s),
            f2(b.total_s - b.scan_s),
            f2(b.total_s),
            f2(v.scan_s),
            f2(v.total_s - v.scan_s),
            f2(v.total_s),
            format!("{:.0}%", overhead * 100.0),
        ]);
        json.insert(
            name.to_string(),
            serde_json::json!({
                "baseline_total_s": b.total_s,
                "baseline_scan_s": b.scan_s,
                "veridb_total_s": v.total_s,
                "veridb_scan_s": v.scan_s,
                "overhead": overhead,
            }),
        );
    }
    // Sanity: verified run detects nothing (honest host) and answers match
    // the reference implementation.
    veridb_db.verify_now().expect("honest run verifies");
    let q6_ref = tpch::q6_expected(&data);
    let got = veridb_db.sql(tpch::q6()).expect("q6").rows[0][0]
        .as_f64()
        .unwrap_or(0.0);
    assert!(
        (got - q6_ref).abs() < 1e-6 * q6_ref.abs().max(1.0),
        "Q6 must match the reference: {got} vs {q6_ref}"
    );

    t.note("paper claim: overhead dominated by scan nodes; in-enclave operators add none");
    t.note("paper overheads: Q1/Q6 up to 39% (scan-bound); Q19 NLJ ~9% (compute-bound)");
    t.print();
    veridb_bench::write_json("fig12", &serde_json::Value::Object(json));
}
