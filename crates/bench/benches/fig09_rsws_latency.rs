//! Figure 9 — "Latency of reads/writes with different system config."
//!
//! Reproduces §6.1's first experiment: the latency of Get / Insert /
//! Delete / Update under three configurations —
//!
//! - **Baseline**: no verifiability machinery,
//! - **RSWS**: ReadSet/WriteSet digests over records only (page metadata
//!   excluded, the §4.3 optimization),
//! - **RSWS w/ metadata**: digests over records *and* slot-directory
//!   maintenance.
//!
//! Paper's claims to reproduce in shape: RSWS adds ≈1.5–2.2 µs per op over
//! Baseline; excluding metadata cuts the RS/WS cost by ≈20%; Insert and
//! Delete cost more than Get and Update (they splice the predecessor's
//! nKey, adding digest updates).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;
use veridb::{VeriDb, VeriDbConfig};
use veridb_bench::{f2, scale_from_env, FigureTable, Scale};
use veridb_workloads::{MicroOp, MicroWorkload};

fn workload(scale: Scale) -> MicroWorkload {
    match scale {
        // Paper: 1M initial pairs, 10k mixed ops.
        Scale::Paper => MicroWorkload::default(),
        Scale::Small => MicroWorkload::scaled(50_000, 10_000),
    }
}

/// Run the mixed stream against a fresh database, returning mean latency
/// (µs) per op kind.
fn run(cfg: VeriDbConfig, w: &MicroWorkload) -> BTreeMap<&'static str, f64> {
    let db = VeriDb::open(cfg).expect("open");
    db.sql("CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)")
        .expect("ddl");
    let table = db.table("kv").expect("table");
    w.load_table(&table).expect("load");

    let before = db.metrics();
    let mut sums: BTreeMap<&'static str, (f64, u64)> = BTreeMap::new();
    for op in w.ops() {
        let kind = match op {
            MicroOp::Get(_) => "Get",
            MicroOp::Insert(..) => "Insert",
            MicroOp::Delete(_) => "Delete",
            MicroOp::Update(..) => "Update",
        };
        let start = Instant::now();
        MicroWorkload::apply_table(&table, &op).expect("op");
        let dt = start.elapsed().as_secs_f64();
        let e = sums.entry(kind).or_insert((0.0, 0));
        e.0 += dt;
        e.1 += 1;
    }
    if db.config().verify_rsws {
        db.verify_now().expect("honest run verifies");
    }
    println!("  obs Δ: {}", db.metrics().since(&before).summary_line());
    let _ = Arc::strong_count(&table);
    sums.into_iter()
        .map(|(k, (s, n))| (k, s / n as f64 * 1e6))
        .collect()
}

fn main() {
    let scale = scale_from_env();
    let w = workload(scale);
    println!(
        "Figure 9 reproduction — initial pairs: {}, ops: {} (scale {scale:?})",
        w.initial_pairs, w.operations
    );

    let mut no_verify = VeriDbConfig::baseline();
    no_verify.verify_every_ops = None;
    let baseline = run(no_verify, &w);

    let mut rsws_cfg = VeriDbConfig::rsws();
    rsws_cfg.verify_every_ops = None; // Figure 9 isolates RS/WS cost; the
                                      // verifier frequency is Figure 10.
    let rsws = run(rsws_cfg, &w);

    let mut meta_cfg = VeriDbConfig::rsws_with_metadata();
    meta_cfg.verify_every_ops = None;
    let rsws_meta = run(meta_cfg, &w);

    // Approximate values digitized from the paper's Figure 9 (µs).
    let paper: BTreeMap<&str, (f64, f64, f64)> = [
        ("Get", (0.6, 2.0, 2.5)),
        ("Insert", (1.1, 3.3, 4.1)),
        ("Delete", (0.9, 2.4, 3.1)),
        ("Update", (1.1, 3.2, 4.0)),
    ]
    .into_iter()
    .collect();

    let mut t = FigureTable::new(
        "Figure 9: op latency (µs) — Baseline / RSWS / RSWS w. metadata",
        &[
            "op",
            "baseline",
            "rsws",
            "rsws+meta",
            "rsws-baseline (µs)",
            "meta extra",
            "paper(base/rsws/meta)",
        ],
    );
    let mut json = serde_json::Map::new();
    for op in ["Get", "Insert", "Delete", "Update"] {
        let b = baseline[op];
        let r = rsws[op];
        let m = rsws_meta[op];
        let p = paper[op];
        t.row(vec![
            op.to_string(),
            f2(b),
            f2(r),
            f2(m),
            f2(r - b),
            format!("{:.0}%", (m - r) / (r - b).max(1e-9) * 100.0),
            format!("{:.1}/{:.1}/{:.1}", p.0, p.1, p.2),
        ]);
        json.insert(
            op.to_lowercase(),
            serde_json::json!({"baseline_us": b, "rsws_us": r, "rsws_meta_us": m}),
        );
    }
    t.note("paper claim: RSWS adds ~1.5-2.2 µs; metadata exclusion saves ~20% of RS/WS cost");
    t.note("Insert/Delete > Get/Update because chain splices add digest updates");
    t.print();
    veridb_bench::write_json("fig09", &serde_json::Value::Object(json));
}
