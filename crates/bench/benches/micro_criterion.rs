//! Criterion micro-benchmarks backing the §6.1 discussion:
//!
//! - `primitives`: the raw verified read/write/insert/delete cells — the
//!   paper reports "the overhead of verifiable read/write is consistently
//!   between 1.4–4.2 microseconds".
//! - `prf`: HMAC-SHA-256 vs SipHash-2-4 digest tags — the paper observes
//!   the RS/WS cost "is dominated almost exclusively by PRF operations"
//!   and anticipates hardware-accelerated hashing; the SipHash backend
//!   stands in for that.
//! - `compaction`: eager-on-delete vs deferred-to-scan space reclamation
//!   (the §4.3 optimization).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::sync::Arc;
use veridb_common::{PrfBackend, VeriDbConfig};
use veridb_enclave::Enclave;
use veridb_wrcm::{MemConfig, PrfEngine, VerifiedMemory};

fn memory(verify: bool, prf: PrfBackend, compact_lazy: bool) -> Arc<VerifiedMemory> {
    let enclave = Enclave::create_random("bench", 1 << 26);
    let cfg = VeriDbConfig::default();
    VerifiedMemory::new(
        enclave,
        MemConfig {
            page_size: cfg.page_size,
            partitions: 16,
            verify_rsws: verify,
            verify_metadata: false,
            verify_every_ops: None,
            track_touched_pages: true,
            compact_during_verification: compact_lazy,
            prf,
        },
    )
}

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives");
    for (label, verify) in [("baseline", false), ("verified", true)] {
        let mem = memory(verify, PrfBackend::HmacSha256, true);
        let page = mem.allocate_page();
        let addr = mem.insert_in(page, &[0xABu8; 500]).unwrap();

        g.bench_function(format!("read/{label}"), |b| {
            b.iter(|| mem.read(addr).unwrap())
        });
        g.bench_function(format!("write/{label}"), |b| {
            b.iter(|| mem.write(addr, &[0xCD; 500]).unwrap())
        });
        g.bench_function(format!("insert+delete/{label}"), |b| {
            b.iter(|| {
                let a = mem.insert_in(page, &[0xEF; 120]).unwrap();
                mem.delete(a).unwrap();
            })
        });
    }
    g.finish();
}

fn bench_prf(c: &mut Criterion) {
    let mut g = c.benchmark_group("prf");
    let data = [0x5Au8; 500];
    for (label, backend) in [
        ("hmac-sha256", PrfBackend::HmacSha256),
        ("siphash24", PrfBackend::SipHash),
    ] {
        let prf = PrfEngine::new(backend, [7u8; 32]);
        g.bench_function(format!("tag-500B/{label}"), |b| {
            b.iter(|| prf.tag(0xDEAD, 0, &data, 42))
        });
    }
    // Full verified read under each backend (PRF cost dominates, §6.1).
    for (label, backend) in [
        ("hmac-sha256", PrfBackend::HmacSha256),
        ("siphash24", PrfBackend::SipHash),
    ] {
        let mem = memory(true, backend, true);
        let page = mem.allocate_page();
        let addr = mem.insert_in(page, &data).unwrap();
        g.bench_function(format!("verified-read/{label}"), |b| {
            b.iter(|| mem.read(addr).unwrap())
        });
    }
    g.finish();
}

fn bench_compaction(c: &mut Criterion) {
    let mut g = c.benchmark_group("compaction");
    g.sample_size(20);
    for (label, lazy) in [("eager-on-delete", false), ("deferred-to-scan", true)] {
        g.bench_function(format!("delete-half-page/{label}"), |b| {
            b.iter_batched(
                || {
                    let mem = memory(true, PrfBackend::HmacSha256, lazy);
                    let page = mem.allocate_page();
                    let addrs: Vec<_> = (0..50)
                        .map(|_| mem.insert_in(page, &[0x11; 120]).unwrap())
                        .collect();
                    (mem, addrs)
                },
                |(mem, addrs)| {
                    for a in addrs.iter().step_by(2) {
                        mem.delete(*a).unwrap();
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_primitives, bench_prf, bench_compaction);
criterion_main!(benches);
