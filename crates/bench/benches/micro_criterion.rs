//! Criterion micro-benchmarks backing the §6.1 discussion:
//!
//! - `primitives`: the raw verified read/write/insert/delete cells — the
//!   paper reports "the overhead of verifiable read/write is consistently
//!   between 1.4–4.2 microseconds".
//! - `prf`: HMAC-SHA-256 vs SipHash-2-4 digest tags — the paper observes
//!   the RS/WS cost "is dominated almost exclusively by PRF operations"
//!   and anticipates hardware-accelerated hashing; the SipHash backend
//!   stands in for that.
//! - `compaction`: eager-on-delete vs deferred-to-scan space reclamation
//!   (the §4.3 optimization).
//! - `scan`: batched verified reads vs the per-cell path, at the memory
//!   layer (`read_page_batch` vs a `read` loop) and at the storage layer
//!   (a sequential `VerifiedScan` with and without index prefetch hints).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::sync::Arc;
use veridb_common::{ColumnDef, ColumnType, PrfBackend, Row, Schema, Value, VeriDbConfig};
use veridb_enclave::Enclave;
use veridb_storage::{ChainIndex, ChainKey, IndexOracle, Table};
use veridb_wrcm::{CellAddr, MemConfig, PrfEngine, ReadBatch, VerifiedMemory};

fn memory(verify: bool, prf: PrfBackend, compact_lazy: bool) -> Arc<VerifiedMemory> {
    let enclave = Enclave::create_random("bench", 1 << 26);
    let cfg = VeriDbConfig::default();
    VerifiedMemory::new(
        enclave,
        MemConfig {
            page_size: cfg.page_size,
            partitions: 16,
            verify_rsws: verify,
            verify_metadata: false,
            verify_every_ops: None,
            track_touched_pages: true,
            compact_during_verification: compact_lazy,
            prf,
            metrics: cfg.metrics,
            workers: 1,
            cell_cache_bytes: 0,
        },
    )
}

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives");
    for (label, verify) in [("baseline", false), ("verified", true)] {
        let mem = memory(verify, PrfBackend::HmacSha256, true);
        let page = mem.allocate_page();
        let addr = mem.insert_in(page, &[0xABu8; 500]).unwrap();

        g.bench_function(format!("read/{label}"), |b| {
            b.iter(|| mem.read(addr).unwrap())
        });
        g.bench_function(format!("write/{label}"), |b| {
            b.iter(|| mem.write(addr, &[0xCD; 500]).unwrap())
        });
        g.bench_function(format!("insert+delete/{label}"), |b| {
            b.iter(|| {
                let a = mem.insert_in(page, &[0xEF; 120]).unwrap();
                mem.delete(a).unwrap();
            })
        });
    }
    g.finish();
}

fn bench_prf(c: &mut Criterion) {
    let mut g = c.benchmark_group("prf");
    let data = [0x5Au8; 500];
    for (label, backend) in [
        ("hmac-sha256", PrfBackend::HmacSha256),
        ("siphash24", PrfBackend::SipHash),
    ] {
        let prf = PrfEngine::new(backend, [7u8; 32]);
        g.bench_function(format!("tag-500B/{label}"), |b| {
            b.iter(|| prf.tag(0xDEAD, 0, &data, 42))
        });
    }
    // Full verified read under each backend (PRF cost dominates, §6.1).
    for (label, backend) in [
        ("hmac-sha256", PrfBackend::HmacSha256),
        ("siphash24", PrfBackend::SipHash),
    ] {
        let mem = memory(true, backend, true);
        let page = mem.allocate_page();
        let addr = mem.insert_in(page, &data).unwrap();
        g.bench_function(format!("verified-read/{label}"), |b| {
            b.iter(|| mem.read(addr).unwrap())
        });
    }
    g.finish();
}

fn bench_compaction(c: &mut Criterion) {
    let mut g = c.benchmark_group("compaction");
    g.sample_size(20);
    for (label, lazy) in [("eager-on-delete", false), ("deferred-to-scan", true)] {
        g.bench_function(format!("delete-half-page/{label}"), |b| {
            b.iter_batched(
                || {
                    let mem = memory(true, PrfBackend::HmacSha256, lazy);
                    let page = mem.allocate_page();
                    let addrs: Vec<_> = (0..50)
                        .map(|_| mem.insert_in(page, &[0x11; 120]).unwrap())
                        .collect();
                    (mem, addrs)
                },
                |(mem, addrs)| {
                    for a in addrs.iter().step_by(2) {
                        mem.delete(*a).unwrap();
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// An honest index that refuses to answer prefetch hints, forcing the
/// verified scan onto its per-record resolve path. Lets the bench compare
/// the batched fast path against the fallback over identical data.
struct NoPrefetch(ChainIndex);

impl IndexOracle for NoPrefetch {
    fn find_floor(&self, key: &ChainKey) -> Option<CellAddr> {
        self.0.find_floor(key)
    }
    fn find_below(&self, key: &ChainKey) -> Option<CellAddr> {
        self.0.find_below(key)
    }
    fn find_exact(&self, key: &ChainKey) -> Option<CellAddr> {
        self.0.find_exact(key)
    }
    fn upsert(&self, key: ChainKey, addr: CellAddr) {
        self.0.upsert(key, addr);
    }
    fn remove(&self, key: &ChainKey) {
        self.0.remove(key);
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    // next_entries: inherited default (empty) — disables batching.
}

const SCAN_CELLS: usize = 64;
const SCAN_ROWS: usize = 1024;

fn scan_table(mem: &Arc<VerifiedMemory>, prefetch: bool) -> Arc<Table> {
    let schema = Schema::new(vec![
        ColumnDef::chained("id", ColumnType::Int),
        ColumnDef::new("payload", ColumnType::Str),
    ])
    .unwrap();
    let indexes: Vec<Box<dyn IndexOracle>> = if prefetch {
        vec![Box::new(ChainIndex::new())]
    } else {
        vec![Box::new(NoPrefetch(ChainIndex::new()))]
    };
    let name = if prefetch { "scan_fast" } else { "scan_slow" };
    let table = Table::create_with_indexes(Arc::clone(mem), name, schema, indexes).unwrap();
    for i in 0..SCAN_ROWS as i64 {
        table
            .insert(Row::new(vec![
                Value::Int(i),
                Value::Str(format!("payload-{i:06}-abcdefghijklmnopqrstuvwxyz")),
            ]))
            .unwrap();
    }
    table
}

fn bench_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan");

    // Memory layer: one page of 64 ~100 B cells, read per-cell vs batched.
    for (label, backend) in [
        ("hmac-sha256", PrfBackend::HmacSha256),
        ("siphash24", PrfBackend::SipHash),
    ] {
        let mem = memory(true, backend, true);
        let page = mem.allocate_page();
        let addrs: Vec<_> = (0..SCAN_CELLS)
            .map(|i| mem.insert_in(page, &[i as u8; 100]).unwrap())
            .collect();
        let slots: Vec<_> = addrs.iter().map(|a| a.slot).collect();
        g.throughput(Throughput::Elements(SCAN_CELLS as u64));
        g.bench_function(format!("wrcm-per-cell-64x100B/{label}"), |b| {
            b.iter(|| {
                for a in &addrs {
                    mem.read(*a).unwrap();
                }
            })
        });
        g.bench_function(format!("wrcm-batched-64x100B/{label}"), |b| {
            let mut batch = ReadBatch::new();
            b.iter(|| {
                mem.read_page_batch(page, &slots, &mut batch).unwrap();
                assert_eq!(batch.len(), SCAN_CELLS);
            })
        });
    }

    // Storage layer: full verified sequential scan, batched fast path
    // (prefetching index) vs per-record fallback (prefetch disabled).
    g.sample_size(20);
    for (label, backend) in [
        ("hmac-sha256", PrfBackend::HmacSha256),
        ("siphash24", PrfBackend::SipHash),
    ] {
        let mem = memory(true, backend, true);
        let fast = scan_table(&mem, true);
        let slow = scan_table(&mem, false);
        g.throughput(Throughput::Elements(SCAN_ROWS as u64));
        g.bench_function(format!("seq-scan-1024-batched/{label}"), |b| {
            b.iter(|| {
                let mut scan = fast.seq_scan();
                let mut n = 0usize;
                for r in scan.by_ref() {
                    r.unwrap();
                    n += 1;
                }
                assert_eq!(n, SCAN_ROWS);
                assert!(scan.batched_rounds() > 0, "fast path must engage");
            })
        });
        g.bench_function(format!("seq-scan-1024-per-record/{label}"), |b| {
            b.iter(|| {
                let mut scan = slow.seq_scan();
                let mut n = 0usize;
                for r in scan.by_ref() {
                    r.unwrap();
                    n += 1;
                }
                assert_eq!(n, SCAN_ROWS);
                assert_eq!(scan.batched_rounds(), 0, "fallback must stay per-record");
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_primitives,
    bench_prf,
    bench_compaction,
    bench_scan
);
criterion_main!(benches);
