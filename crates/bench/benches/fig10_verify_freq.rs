//! Figure 10 — "Latency of reads/writes with different verification freq."
//!
//! Reproduces §6.1's second experiment: the non-quiescent background
//! verifier is always running, performing one page scan every
//! {50, 100, 200, 500, 1000} operations; more frequent scanning costs more
//! (page locks + RS/WS updates during the scan). The paper's claim: at a
//! frequency of 1 000 ops/scan the overhead over plain RSWS is 1–4%.
//!
//! An extra ablation column re-runs the 1 000-ops/scan point with the
//! §4.3 touched-page tracking disabled (every scan re-reads every page),
//! showing what the optimization buys.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;
use veridb::{VeriDb, VeriDbConfig};
use veridb_bench::{f2, scale_from_env, FigureTable, Scale};
use veridb_workloads::{MicroOp, MicroWorkload};

fn workload(scale: Scale) -> MicroWorkload {
    match scale {
        Scale::Paper => MicroWorkload::default(),
        Scale::Small => MicroWorkload::scaled(20_000, 10_000),
    }
}

fn run(every: Option<u64>, track_touched: bool, w: &MicroWorkload) -> BTreeMap<&'static str, f64> {
    let mut cfg = VeriDbConfig::rsws();
    cfg.verify_every_ops = every;
    cfg.track_touched_pages = track_touched;
    let db = VeriDb::open(cfg).expect("open"); // starts the verifier
    db.sql("CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)")
        .expect("ddl");
    let table = db.table("kv").expect("table");
    w.load_table(&table).expect("load");

    let before = db.metrics();
    let mut sums: BTreeMap<&'static str, (f64, u64)> = BTreeMap::new();
    for op in w.ops() {
        let kind = match op {
            MicroOp::Get(_) => "Get",
            MicroOp::Insert(..) => "Insert",
            MicroOp::Delete(_) => "Delete",
            MicroOp::Update(..) => "Update",
        };
        let start = Instant::now();
        MicroWorkload::apply_table(&table, &op).expect("op");
        let dt = start.elapsed().as_secs_f64();
        let e = sums.entry(kind).or_insert((0.0, 0));
        e.0 += dt;
        e.1 += 1;
    }
    assert!(db.stop_verifier().is_none(), "honest run must verify");
    db.verify_now().expect("final pass");
    println!("  obs Δ: {}", db.metrics().since(&before).summary_line());
    let _ = Arc::strong_count(&table);
    sums.into_iter()
        .map(|(k, (s, n))| (k, s / n as f64 * 1e6))
        .collect()
}

fn main() {
    let scale = scale_from_env();
    let w = workload(scale);
    println!(
        "Figure 10 reproduction — initial pairs: {}, ops: {} (scale {scale:?})",
        w.initial_pairs, w.operations
    );

    let freqs: [u64; 5] = [50, 100, 200, 500, 1000];
    let mut results: Vec<(String, BTreeMap<&'static str, f64>)> = Vec::new();
    for f in freqs {
        results.push((f.to_string(), run(Some(f), true, &w)));
    }
    let no_verifier = run(None, true, &w);
    let full_scan_1000 = run(Some(1000), false, &w);

    let mut t = FigureTable::new(
        "Figure 10: op latency (µs) vs ops-per-page-scan (background verifier armed)",
        &[
            "op",
            "50",
            "100",
            "200",
            "500",
            "1000",
            "no-verifier",
            "1000 full-scan",
        ],
    );
    let mut json = serde_json::Map::new();
    for op in ["Get", "Insert", "Delete", "Update"] {
        let mut cells = vec![op.to_string()];
        let mut series = Vec::new();
        for (_, r) in &results {
            cells.push(f2(r[op]));
            series.push(r[op]);
        }
        cells.push(f2(no_verifier[op]));
        cells.push(f2(full_scan_1000[op]));
        t.row(cells);
        json.insert(
            op.to_lowercase(),
            serde_json::json!({
                "by_freq_us": series,
                "freqs": freqs,
                "no_verifier_us": no_verifier[op],
                "full_scan_1000_us": full_scan_1000[op],
            }),
        );
    }
    // Overall overhead of the 1000-freq configuration vs no verifier.
    let avg = |m: &BTreeMap<&'static str, f64>| m.values().sum::<f64>() / m.len() as f64;
    let overhead = (avg(&results[4].1) - avg(&no_verifier)) / avg(&no_verifier);
    t.note(&format!(
        "measured overhead at 1000 ops/scan vs no verifier: {:.1}% (paper: 1-4%)",
        overhead * 100.0
    ));
    t.note("paper claim: more frequent scans => higher op latency");
    t.print();
    veridb_bench::write_json("fig10", &serde_json::Value::Object(json));
}
