//! Durability cost and recovery speed: what the endorsed log charges per
//! protected write, what group commit buys back, and how fast a restart
//! returns to a verified, queryable state.
//!
//! Cells:
//!
//! - `write/ephemeral`   — protected single-row INSERTs, no log (baseline).
//! - `write/durable-sync`— same writes, MAC-chained WAL, fsync per commit
//!   (`group_commit_window_us = 0`): the worst-case durability tax.
//! - `write/durable-group/4w` — 4 concurrent writers under a 200 µs group
//!   commit window: one fsync endorses many records, so per-write cost
//!   amortizes while each writer still waits for *its* record to be
//!   durable.
//! - `recover/tail-replay` — reopen the synced directory with an unsealed
//!   log tail: the whole history replays through the protected write path
//!   (chain verified, `h(WS)` rebuilt).
//! - `seal/snapshot` + `recover/snapshot` — seal an epoch, reopen: the
//!   snapshot loads under its sealed manifest and only the empty tail
//!   replays.
//!
//! Correctness is asserted at every step (recovered row counts, full
//! verification pass); numbers land in `BENCH_dur.json`.

use std::path::PathBuf;
use std::sync::Barrier;
use std::time::Instant;
use veridb::{Value, VeriDb, VeriDbConfig};
use veridb_bench::{f1, scale_from_env, summarize, FigureTable, OpSummary, Scale};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("veridb-figdur-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(data_dir: Option<&PathBuf>, window_us: u64) -> VeriDbConfig {
    let mut cfg = VeriDbConfig::default();
    cfg.verify_every_ops = None;
    cfg.data_dir = data_dir.map(|d| d.display().to_string());
    cfg.group_commit_window_us = window_us;
    cfg
}

fn counter(db: &VeriDb, name: &str) -> u64 {
    db.metrics()
        .counters()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| v)
        .unwrap_or(0)
}

/// Sequential single-row INSERTs `base..base+n`; per-op latencies in s.
fn insert_rows(db: &VeriDb, base: i64, n: usize) -> Vec<f64> {
    let mut samples = Vec::with_capacity(n);
    for k in 0..n as i64 {
        let start = Instant::now();
        db.sql(&format!("INSERT INTO t VALUES ({}, 'payload')", base + k))
            .unwrap();
        samples.push(start.elapsed().as_secs_f64());
    }
    samples
}

fn main() {
    let scale = scale_from_env();
    let rows: usize = match scale {
        Scale::Paper => 20_000,
        Scale::Small => 1_500,
    };
    println!("Durability sweep — {rows} protected writes per cell (scale {scale:?})");
    let mut t = FigureTable::new(
        "Durability: endorsed-log write tax, group commit amortization, \
         and recovery (tail replay vs sealed snapshot)",
        &["cell", "ops", "p50 us", "p95 us", "ops/s", "fsyncs", "batch avg"],
    );
    let mut summaries: Vec<OpSummary> = Vec::new();
    let cell = |t: &mut FigureTable,
                    summaries: &mut Vec<OpSummary>,
                    name: &str,
                    samples: &[f64],
                    wall: f64,
                    fsyncs: u64,
                    batch_avg: f64| {
        let s = summarize(name, samples, wall, samples.len());
        t.row(vec![
            name.to_owned(),
            samples.len().to_string(),
            f1(s.p50_us),
            f1(s.p95_us),
            f1(s.throughput_per_s),
            fsyncs.to_string(),
            if batch_avg > 0.0 {
                format!("{batch_avg:.1}")
            } else {
                "-".to_owned()
            },
        ]);
        summaries.push(s);
    };

    // --- Ephemeral baseline. ---
    {
        let db = VeriDb::open(config(None, 0)).unwrap();
        db.sql("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)").unwrap();
        let wall = Instant::now();
        let samples = insert_rows(&db, 0, rows);
        cell(
            &mut t,
            &mut summaries,
            "write/ephemeral",
            &samples,
            wall.elapsed().as_secs_f64(),
            0,
            0.0,
        );
    }

    // --- Durable, fsync per commit. Keep the directory for recovery. ---
    let sync_dir = tmpdir("sync");
    {
        let db = VeriDb::open(config(Some(&sync_dir), 0)).unwrap();
        db.sql("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)").unwrap();
        let wall = Instant::now();
        let samples = insert_rows(&db, 0, rows);
        let fsyncs = counter(&db, "log.fsync_us.count");
        cell(
            &mut t,
            &mut summaries,
            "write/durable-sync",
            &samples,
            wall.elapsed().as_secs_f64(),
            fsyncs,
            0.0,
        );
        // Dropped unsealed: the WAL flushes, but recovery below must
        // replay the full tail.
    }

    // --- Durable, 4 writers under a 200 µs group commit window. ---
    {
        const WRITERS: usize = 4;
        let dir = tmpdir("group");
        let db = VeriDb::open(config(Some(&dir), 200)).unwrap();
        db.sql("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)").unwrap();
        let per = rows / WRITERS;
        let barrier = Barrier::new(WRITERS);
        let wall = Instant::now();
        let all: Vec<Vec<f64>> = std::thread::scope(|s| {
            (0..WRITERS)
                .map(|w| {
                    let db = &db;
                    let barrier = &barrier;
                    s.spawn(move || {
                        barrier.wait();
                        insert_rows(db, (w * per) as i64, per)
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let wall = wall.elapsed().as_secs_f64();
        let fsyncs = counter(&db, "log.fsync_us.count");
        let batches = counter(&db, "log.group_commit_batch.count");
        let batched = counter(&db, "log.group_commit_batch.sum");
        let batch_avg = if batches > 0 {
            batched as f64 / batches as f64
        } else {
            0.0
        };
        let samples: Vec<f64> = all.into_iter().flatten().collect();
        cell(
            &mut t,
            &mut summaries,
            "write/durable-group/4w",
            &samples,
            wall,
            fsyncs,
            batch_avg,
        );
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // --- Recovery: full tail replay of the synced directory. ---
    let expect_rows = |db: &VeriDb, n: usize| {
        let r = db.sql("SELECT COUNT(id) FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(n as i64), "recovery lost rows");
    };
    let sealed_db = {
        let start = Instant::now();
        let db = VeriDb::open(config(Some(&sync_dir), 0)).unwrap();
        let replay = start.elapsed().as_secs_f64();
        expect_rows(&db, rows);
        db.verify_now().unwrap();
        cell(
            &mut t,
            &mut summaries,
            "recover/tail-replay",
            &[replay],
            replay,
            0,
            0.0,
        );
        println!("  tail replay: {rows} record(s) re-executed through the protected path");
        db
    };

    // --- Seal an epoch, then recover from the snapshot. ---
    {
        let start = Instant::now();
        sealed_db.seal_now().unwrap();
        let seal = start.elapsed().as_secs_f64();
        cell(&mut t, &mut summaries, "seal/snapshot", &[seal], seal, 0, 0.0);
        drop(sealed_db);
        let start = Instant::now();
        let db = VeriDb::open(config(Some(&sync_dir), 0)).unwrap();
        let snap = start.elapsed().as_secs_f64();
        expect_rows(&db, rows);
        db.verify_now().unwrap();
        cell(
            &mut t,
            &mut summaries,
            "recover/snapshot",
            &[snap],
            snap,
            0,
            0.0,
        );
    }
    let _ = std::fs::remove_dir_all(&sync_dir);

    t.note("durable-sync pays one fsync per commit; the group window amortizes it.");
    t.note("Both recovery paths end verified: counts checked, full verification pass run.");
    t.print();
    veridb_bench::write_bench_summary("dur", &summaries);
}
