//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **PRF backend** — HMAC-SHA-256 vs keyed SipHash-2-4, end to end on
//!    the micro workload (§6.1 argues op cost is PRF-dominated and
//!    anticipates hardware hashing).
//! 2. **Touched-page tracking** (§4.3) — verification-scan cost on a
//!    large, mostly-cold database with and without the in-enclave
//!    touched-page bitmap + cached digests.
//! 3. **Compaction strategy** (§4.3) — eager-on-delete vs
//!    deferred-to-scan, measured on a delete-heavy stream.
//! 4. **Verifier parallelism** (§3.3) — full verification passes with 1,
//!    2, and 4 concurrent verifiers (needs multicore to show gains).
//! 5. **Intermediate-state spilling** (§5.4) — a materializing join with
//!    spilling off vs on.
//! 6. **Metrics switch** — the `veridb-obs` registry on vs off on the
//!    protected-read hot path; the budget is a few relaxed atomics
//!    (≤2% per op).

use std::sync::Arc;
use std::time::Instant;
use veridb::{PlanOptions, PreferredJoin, PrfBackend, VeriDb, VeriDbConfig};
use veridb_bench::{f2, scale_from_env, FigureTable, Scale};
use veridb_workloads::MicroWorkload;

fn main() {
    let scale = scale_from_env();
    prf_backend_ablation(scale);
    touched_pages_ablation(scale);
    compaction_ablation(scale);
    verifier_parallelism_ablation(scale);
    spill_ablation();
    obs_overhead_ablation();
    cell_cache_ablation();
}

fn micro(scale: Scale) -> MicroWorkload {
    match scale {
        Scale::Paper => MicroWorkload::default(),
        Scale::Small => MicroWorkload::scaled(20_000, 8_000),
    }
}

fn run_micro(cfg: VeriDbConfig, w: &MicroWorkload) -> f64 {
    let db = VeriDb::open(cfg).expect("open");
    db.sql("CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)")
        .expect("ddl");
    let table = db.table("kv").expect("table");
    w.load_table(&table).expect("load");
    let ops = w.ops();
    let start = Instant::now();
    for op in &ops {
        MicroWorkload::apply_table(&table, op).expect("op");
    }
    let per_op_us = start.elapsed().as_secs_f64() / ops.len() as f64 * 1e6;
    if db.config().verify_rsws {
        db.verify_now().expect("verify");
    }
    let _ = Arc::strong_count(&table);
    per_op_us
}

fn prf_backend_ablation(scale: Scale) {
    let w = micro(scale);
    let mut t = FigureTable::new(
        "Ablation 1: PRF backend (mean µs/op on the §6.1 mixed stream)",
        &["backend", "µs/op", "vs baseline"],
    );
    let mut base_cfg = VeriDbConfig::baseline();
    base_cfg.verify_every_ops = None;
    let base = run_micro(base_cfg, &w);
    t.row(vec!["no verification".into(), f2(base), "1.00x".into()]);
    for (name, backend) in [
        ("HMAC-SHA-256", PrfBackend::HmacSha256),
        ("SipHash-2-4", PrfBackend::SipHash),
    ] {
        let mut cfg = VeriDbConfig::rsws();
        cfg.verify_every_ops = None;
        cfg.prf = backend;
        let us = run_micro(cfg, &w);
        t.row(vec![name.into(), f2(us), format!("{:.2}x", us / base)]);
    }
    t.note("§6.1: RS/WS cost is PRF-dominated; a fast PRF (≈hardware hashing) shrinks it");
    t.print();
}

fn touched_pages_ablation(scale: Scale) {
    // Load a large table, then touch only a handful of keys and verify.
    let n: i64 = match scale {
        Scale::Paper => 500_000,
        Scale::Small => 50_000,
    };
    let mut t = FigureTable::new(
        "Ablation 2: touched-page tracking (verification pass after touching 10 keys)",
        &[
            "tracking",
            "pages processed",
            "pages re-read",
            "scan time (ms)",
        ],
    );
    for (name, tracking) in [("on (§4.3)", true), ("off (full scan)", false)] {
        let mut cfg = VeriDbConfig::rsws();
        cfg.verify_every_ops = None;
        cfg.track_touched_pages = tracking;
        let db = VeriDb::open(cfg).expect("open");
        db.sql("CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)")
            .expect("ddl");
        let table = db.table("kv").expect("table");
        MicroWorkload {
            initial_pairs: n,
            operations: 0,
            value_len: 120,
            seed: 3,
        }
        .load_table(&table)
        .expect("load");
        db.verify_now().expect("first pass");
        // Touch 10 keys, then measure the incremental pass.
        for k in 0..10 {
            table
                .get_by_pk(&veridb::Value::Int(k * (n / 10) + 1))
                .unwrap();
        }
        let start = Instant::now();
        let report = db.verify_now().expect("incremental pass");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        t.row(vec![
            name.into(),
            report.pages_processed.to_string(),
            report.pages_read.to_string(),
            f2(ms),
        ]);
        let _ = Arc::strong_count(&table);
    }
    t.note("cold pages carry their cached digest; only touched pages are re-read");
    t.print();
}

fn compaction_ablation(scale: Scale) {
    let n: i64 = match scale {
        Scale::Paper => 200_000,
        Scale::Small => 20_000,
    };
    let mut t = FigureTable::new(
        "Ablation 3: space reclamation (delete half the table)",
        &["strategy", "delete time total (ms)", "µs/delete"],
    );
    for (name, lazy) in [
        ("eager on delete", false),
        ("deferred to scan (§4.3)", true),
    ] {
        let mut cfg = VeriDbConfig::rsws();
        cfg.verify_every_ops = None;
        cfg.compact_during_verification = lazy;
        let db = VeriDb::open(cfg).expect("open");
        db.sql("CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)")
            .expect("ddl");
        let table = db.table("kv").expect("table");
        MicroWorkload {
            initial_pairs: n,
            operations: 0,
            value_len: 200,
            seed: 4,
        }
        .load_table(&table)
        .expect("load");
        let start = Instant::now();
        let mut deletes = 0u64;
        for k in (1..=n).step_by(2) {
            table.delete(&veridb::Value::Int(k)).expect("delete");
            deletes += 1;
        }
        let s = start.elapsed().as_secs_f64();
        db.verify_now().expect("verify");
        t.row(vec![name.into(), f2(s * 1e3), f2(s / deletes as f64 * 1e6)]);
        let _ = Arc::strong_count(&table);
    }
    t.note("§4.3: eager compaction re-reads/re-writes surviving records on every delete");
    t.print();
}

fn verifier_parallelism_ablation(scale: Scale) {
    let n: i64 = match scale {
        Scale::Paper => 300_000,
        Scale::Small => 40_000,
    };
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let mut cfg = VeriDbConfig::rsws();
    cfg.verify_every_ops = None;
    cfg.rsws_partitions = 16;
    cfg.track_touched_pages = false; // make every pass a full scan
    let db = VeriDb::open(cfg).expect("open");
    db.sql("CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)")
        .expect("ddl");
    let table = db.table("kv").expect("table");
    MicroWorkload {
        initial_pairs: n,
        operations: 0,
        value_len: 120,
        seed: 5,
    }
    .load_table(&table)
    .expect("load");
    let mut t = FigureTable::new(
        &format!(
            "Ablation 4: §3.3 multiple verifiers (full scan, {} CPU core(s))",
            cores
        ),
        &["verifier threads", "pass time (ms)"],
    );
    for threads in [1usize, 2, 4] {
        let start = Instant::now();
        db.verify_now_parallel(threads).expect("verify");
        t.row(vec![
            threads.to_string(),
            f2(start.elapsed().as_secs_f64() * 1e3),
        ]);
    }
    if cores < 2 {
        t.note("single-core container: parallel verifiers cannot speed up here");
    }
    t.print();
    let _ = Arc::strong_count(&table);
}

fn spill_ablation() {
    let mut cfg = VeriDbConfig::rsws();
    cfg.verify_every_ops = None;
    let db = VeriDb::open(cfg).expect("open");
    db.sql("CREATE TABLE l (id INT PRIMARY KEY, k INT)")
        .expect("ddl");
    db.sql("CREATE TABLE r (id INT PRIMARY KEY, k INT, pad TEXT)")
        .expect("ddl");
    for i in 0..200 {
        db.sql(&format!("INSERT INTO l VALUES ({i}, {})", i % 20))
            .expect("ins");
    }
    for i in 0..2_000 {
        db.sql(&format!(
            "INSERT INTO r VALUES ({i}, {}, 'pad-{i}')",
            i % 20
        ))
        .expect("ins");
    }
    let opts = PlanOptions {
        prefer_join: PreferredJoin::NestedLoop,
        ..Default::default()
    };
    let sql = "SELECT COUNT(*) FROM l, r WHERE l.k = r.k";
    let mut t = FigureTable::new(
        "Ablation 5: §5.4 intermediate-state spilling (materializing NLJ)",
        &["mode", "query time (ms)", "answer"],
    );
    for (name, threshold) in [
        ("in-enclave buffers", None),
        ("spill to verified storage", Some(4096usize)),
    ] {
        db.set_spill_threshold(threshold);
        let _ = db.sql_with(sql, &opts).expect("warmup");
        let start = Instant::now();
        let r = db.sql_with(sql, &opts).expect("query");
        t.row(vec![
            name.into(),
            f2(start.elapsed().as_secs_f64() * 1e3),
            r.rows[0][0].to_string(),
        ]);
    }
    db.set_spill_threshold(None);
    db.verify_now().expect("verify");
    t.note("spilled rows pay 2 PRF evals per re-read instead of ~40k-cycle EPC swaps");
    t.print();
}

/// Ablation 6: the `veridb-obs` hot-path cost — identical protected reads
/// with the metrics registry off vs on. The registry's hot-path budget is
/// a few relaxed atomic increments, so the "on" column must stay within
/// ~2% of "off".
fn obs_overhead_ablation() {
    use veridb_enclave::Enclave;
    use veridb_wrcm::{MemConfig, VerifiedMemory};

    let make = |metrics: bool| {
        let cfg = VeriDbConfig::default();
        VerifiedMemory::new(
            Enclave::create("obs-ablation", 1 << 26, [9u8; 32]),
            MemConfig {
                page_size: cfg.page_size,
                partitions: 16,
                verify_rsws: true,
                verify_metadata: false,
                verify_every_ops: None,
                track_touched_pages: true,
                compact_during_verification: true,
                prf: PrfBackend::HmacSha256,
                metrics,
                workers: 1,
                cell_cache_bytes: 0,
            },
        )
    };

    // Interleave short rounds of the two configurations and keep each
    // one's *minimum* round — scheduler and frequency noise on a shared
    // single-core box dwarfs the few-nanosecond signal, and the minimum
    // is the round least disturbed by it.
    const WARMUP: usize = 20_000;
    const ROUND_OPS: usize = 20_000;
    const ROUNDS: usize = 30;
    let setups: Vec<_> = [false, true]
        .into_iter()
        .map(|metrics| {
            let mem = make(metrics);
            let page = mem.allocate_page();
            let addr = mem.insert_in(page, &[0xAB; 500]).expect("insert");
            for _ in 0..WARMUP {
                std::hint::black_box(mem.read(addr).expect("read"));
            }
            (mem, addr)
        })
        .collect();
    let mut per_op_ns = [f64::INFINITY; 2];
    for _ in 0..ROUNDS {
        for (i, (mem, addr)) in setups.iter().enumerate() {
            let start = Instant::now();
            for _ in 0..ROUND_OPS {
                std::hint::black_box(mem.read(*addr).expect("read"));
            }
            let ns = start.elapsed().as_secs_f64() / ROUND_OPS as f64 * 1e9;
            per_op_ns[i] = per_op_ns[i].min(ns);
        }
    }

    let mut t = FigureTable::new(
        "Ablation 6: veridb-obs metrics switch (protected-read hot path)",
        &["metrics", "ns/read", "vs off"],
    );
    for (i, name) in ["off", "on"].into_iter().enumerate() {
        t.row(vec![
            name.into(),
            f2(per_op_ns[i]),
            format!("{:+.2}%", (per_op_ns[i] / per_op_ns[0] - 1.0) * 100.0),
        ]);
    }
    t.note("budget: the registry may add at most ~2% per protected read");
    t.print();
}

/// Ablation 7: the enclave-resident verified cell cache on the hot-key
/// protected-read path — identical hot-set reads with the cache disabled
/// (every read pays PRF + digest folds + page mutex) vs enabled (hits are
/// a shard lock and a copy). The DESIGN.md §12 target is ≥2× on hits.
fn cell_cache_ablation() {
    use veridb_enclave::Enclave;
    use veridb_wrcm::{MemConfig, VerifiedMemory};

    let make = |cell_cache_bytes: usize| {
        let cfg = VeriDbConfig::default();
        VerifiedMemory::new(
            Enclave::create("cache-ablation", 1 << 26, [17u8; 32]),
            MemConfig {
                page_size: cfg.page_size,
                partitions: 16,
                verify_rsws: true,
                verify_metadata: false,
                verify_every_ops: None,
                track_touched_pages: true,
                compact_during_verification: true,
                prf: PrfBackend::HmacSha256,
                metrics: false,
                workers: 1,
                cell_cache_bytes,
            },
        )
    };

    // Same interleaved-minimum discipline as Ablation 6: the cache-off
    // round is PRF-dominated, the cache-on round is lock+memcpy, and both
    // are noisy on a shared box.
    const HOT_KEYS: usize = 16;
    const WARMUP: usize = 10_000;
    const ROUND_OPS: usize = 20_000;
    const ROUNDS: usize = 30;
    let setups: Vec<_> = [0usize, 4 << 20]
        .into_iter()
        .map(|bytes| {
            let mem = make(bytes);
            let page = mem.allocate_page();
            let addrs: Vec<_> = (0..HOT_KEYS)
                .map(|_| mem.insert_in(page, &[0xCD; 200]).expect("insert"))
                .collect();
            for i in 0..WARMUP {
                std::hint::black_box(mem.read(addrs[i % HOT_KEYS]).expect("read"));
            }
            (mem, addrs)
        })
        .collect();
    let mut per_op_ns = [f64::INFINITY; 2];
    for _ in 0..ROUNDS {
        for (i, (mem, addrs)) in setups.iter().enumerate() {
            let start = Instant::now();
            for j in 0..ROUND_OPS {
                std::hint::black_box(mem.read(addrs[j % HOT_KEYS]).expect("read"));
            }
            let ns = start.elapsed().as_secs_f64() / ROUND_OPS as f64 * 1e9;
            per_op_ns[i] = per_op_ns[i].min(ns);
        }
    }
    for (mem, _) in &setups {
        mem.verify_now().expect("verify");
    }

    let mut t = FigureTable::new(
        "Ablation 7: enclave-resident cell cache (hot-key protected reads)",
        &["cell cache", "ns/read", "speedup"],
    );
    for (i, name) in ["off", "on (4 MiB)"].into_iter().enumerate() {
        t.row(vec![
            name.into(),
            f2(per_op_ns[i]),
            format!("{:.2}x", per_op_ns[0] / per_op_ns[i]),
        ]);
    }
    if let Some(cache) = setups[1].0.cell_cache() {
        let (h, m) = cache.hit_stats();
        t.note(&format!(
            "hot-set hit ratio {}% ({h} hits / {m} misses); acceptance floor: 2.00x",
            cache.hit_ratio_pct()
        ));
    }
    t.print();
}
