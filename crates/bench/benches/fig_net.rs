//! Network layer — concurrent remote clients against `veridb serve`.
//!
//! Starts one in-process reactor server over a TPC-H-loaded engine and
//! runs two sweeps through the full wire path (framing, CRC, attestation
//! handshake, portal MAC check, endorsement verification, `SeqIntervals`):
//!
//! 1. **Client sweep** — 1/4/16/64/256 concurrent
//!    [`veridb_net::RemoteClient`]s (1024 when `VERIDB_BENCH_1024` is
//!    set), each running the analytical mix (Q1, Q6, Q3) serially. The
//!    table reports client-observed latency (which, closed-loop, includes
//!    queueing for the shared engine) *and* the server-side per-query
//!    handling time (`net.wire_ns`), which must stay flat as connections
//!    scale — the reactor adds no per-connection overhead.
//! 2. **Pipelining sweep** — 16 clients at pipeline depth 1/4/16 via
//!    [`veridb_net::RemoteClient::query_pipelined`].
//!
//! Every remote result is asserted equivalent to the in-process path
//! before any number is reported, so the bench doubles as an end-to-end
//! correctness check; the run also asserts that no executor worker
//! panicked and that the admission queue drained (every admitted query
//! terminated).
//!
//! Written to `BENCH_net.json` for cross-PR tracking.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use veridb::{Value, VeriDb, VeriDbConfig};
use veridb_bench::{f1, scale_from_env, summarize, FigureTable, OpSummary, Scale};
use veridb_workloads::tpch::{self, TpchConfig, TpchData};

const CLIENT_COUNTS: [usize; 5] = [1, 4, 16, 64, 256];
const PIPELINE_DEPTHS: [usize; 3] = [1, 4, 16];
const PIPELINE_CLIENTS: usize = 16;
/// Mix rounds per client in the client sweep (halved past 64 clients to
/// bound wall time; the sample count stays large).
const ROUNDS: usize = 2;
/// Mix rounds per client in the pipelining sweep (12 queries each).
const PIPE_ROUNDS: usize = 4;

fn config(scale: Scale) -> TpchConfig {
    match scale {
        Scale::Paper => TpchConfig {
            lineitem_rows: 120_000,
            part_rows: 4_000,
            ..TpchConfig::default()
        },
        // Small scale keeps 256 concurrent clients well under a minute.
        Scale::Small => TpchConfig {
            lineitem_rows: 12_000,
            part_rows: 400,
            ..TpchConfig::default()
        },
    }
}

/// Same float-epsilon equivalence as fig12_scaling: partial aggregation
/// on the server may associate float sums differently per run.
fn rows_equivalent(a: &[veridb::Row], b: &[veridb::Row]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b).all(|(ra, rb)| {
        ra.values().len() == rb.values().len()
            && ra
                .values()
                .iter()
                .zip(rb.values())
                .all(|(x, y)| match (x, y) {
                    (Value::Float(fx), Value::Float(fy)) => {
                        let scale = fx.abs().max(fy.abs()).max(1.0);
                        (fx - fy).abs() <= 1e-9 * scale
                    }
                    _ => x == y,
                })
    })
}

fn counter(db: &VeriDb, name: &str) -> u64 {
    db.metrics()
        .counters()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| v)
        .unwrap_or(0)
}

struct Mix {
    cases: [(&'static str, &'static str); 3],
    expected: Vec<(&'static str, veridb::QueryResult)>,
}

fn check(mix: &Mix, i: usize, got: &veridb::QueryResult) {
    let (name, want) = &mix.expected[i % mix.cases.len()];
    assert_eq!(got.columns, want.columns, "{name} columns");
    assert!(
        rows_equivalent(&got.rows, &want.rows),
        "{name}: remote result must equal the in-process result"
    );
}

fn main() {
    let scale = scale_from_env();
    let cfg = config(scale);
    let mut counts: Vec<usize> = CLIENT_COUNTS.to_vec();
    if std::env::var("VERIDB_BENCH_1024").is_ok() {
        counts.push(1024);
    }
    println!(
        "Network sweep — lineitem: {} rows, clients {counts:?}, pipeline depths \
         {PIPELINE_DEPTHS:?} at {PIPELINE_CLIENTS} clients (scale {scale:?})",
        cfg.lineitem_rows,
    );
    let data = TpchData::generate(&cfg);

    let mut v_cfg = VeriDbConfig::rsws();
    v_cfg.verify_every_ops = None;
    // A window wide enough for pipelining clients.
    v_cfg.replay_window = 1 << 14;
    v_cfg.max_conns = 2048;
    let db = Arc::new(VeriDb::open(v_cfg).expect("open"));
    data.load(&db).expect("load");

    let cases: [(&str, &str); 3] = [("Q1", tpch::q1()), ("Q6", tpch::q6()), ("Q3", tpch::q3())];
    // Ground truth from the in-process path.
    let expected: Vec<(&str, veridb::QueryResult)> = cases
        .iter()
        .map(|(name, sql)| (*name, db.sql(sql).expect("in-process query")))
        .collect();
    let mix = Mix { cases, expected };

    let mut server = veridb_net::serve(Arc::clone(&db), "127.0.0.1:0").expect("serve");
    let addr = server.local_addr().to_string();

    let mut t = FigureTable::new(
        "Network layer: concurrent verifying clients vs one veridb serve \
         (client-observed latency is closed-loop: it includes queueing for \
         the shared engine; 'wire µs' is the server-side per-query handling \
         time, which must stay flat)",
        &[
            "clients",
            "queries",
            "p50 ms",
            "p95 ms",
            "queries/s",
            "wire µs/q",
        ],
    );
    let mut summaries: Vec<OpSummary> = Vec::new();
    for &n in &counts {
        let rounds = if n >= 256 { ROUNDS.div_ceil(2) } else { ROUNDS };
        let wire_before = db.metrics().net_wire_ns;
        // Connect (and attest) everyone first so the measured window is
        // query traffic, not a handshake storm.
        let mut clients: Vec<veridb_net::RemoteClient> = (0..n)
            .map(|i| {
                veridb_net::RemoteClient::connect_simulated(
                    &addr,
                    &format!("bench-{n}-{i}"),
                    "veridb",
                    Duration::from_secs(120),
                )
                .expect("connect")
            })
            .collect();
        let barrier = Barrier::new(n);
        let wall_start = Instant::now();
        let all_samples: Vec<Vec<f64>> = std::thread::scope(|s| {
            let handles: Vec<_> = clients
                .iter_mut()
                .map(|client| {
                    let mix = &mix;
                    let barrier = &barrier;
                    s.spawn(move || {
                        barrier.wait();
                        let mut samples = Vec::with_capacity(mix.cases.len() * rounds);
                        for r in 0..rounds {
                            for (c, (_, sql)) in mix.cases.iter().enumerate() {
                                let start = Instant::now();
                                let got = client.query(sql).expect("remote query");
                                samples.push(start.elapsed().as_secs_f64());
                                check(mix, r * mix.cases.len() + c, &got);
                            }
                        }
                        samples
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect()
        });
        let wall = wall_start.elapsed().as_secs_f64();
        for mut c in clients {
            c.close();
        }
        let wire = db.metrics().net_wire_ns.since(&wire_before);
        let samples: Vec<f64> = all_samples.into_iter().flatten().collect();
        let queries = samples.len();
        let summary = summarize(&format!("mix/clients={n}"), &samples, wall, queries);
        t.row(vec![
            n.to_string(),
            queries.to_string(),
            f1(summary.p50_us / 1e3),
            f1(summary.p95_us / 1e3),
            f1(summary.throughput_per_s),
            f1(wire.mean() / 1e3),
        ]);
        summaries.push(summary);
    }

    let mut tp = FigureTable::new(
        "Pipelining: 16 clients, N queries in flight per connection \
         (RESULTs delivered in order; Overloaded refusals resent)",
        &["depth", "queries", "p50 ms", "p95 ms", "queries/s"],
    );
    for &depth in &PIPELINE_DEPTHS {
        let wall_start = Instant::now();
        let per_client: Vec<(usize, f64)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..PIPELINE_CLIENTS)
                .map(|i| {
                    let addr = addr.clone();
                    let mix = &mix;
                    s.spawn(move || {
                        let mut client = veridb_net::RemoteClient::connect_simulated(
                            &addr,
                            &format!("pipe-{depth}-{i}"),
                            "veridb",
                            Duration::from_secs(120),
                        )
                        .expect("connect");
                        let sqls: Vec<&str> = (0..PIPE_ROUNDS)
                            .flat_map(|_| mix.cases.iter().map(|(_, sql)| *sql))
                            .collect();
                        let start = Instant::now();
                        let results = client.query_pipelined(&sqls, depth).expect("pipeline");
                        let elapsed = start.elapsed().as_secs_f64();
                        for (j, got) in results.iter().enumerate() {
                            check(mix, j, got);
                        }
                        client.close();
                        (results.len(), elapsed)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pipeline client"))
                .collect()
        });
        let wall = wall_start.elapsed().as_secs_f64();
        let queries: usize = per_client.iter().map(|(n, _)| n).sum();
        // Per-query latency in a pipeline is amortized: client wall time
        // over queries completed.
        let samples: Vec<f64> = per_client.iter().map(|(n, e)| e / *n as f64).collect();
        let summary = summarize(&format!("pipeline/depth={depth}"), &samples, wall, queries);
        tp.row(vec![
            depth.to_string(),
            queries.to_string(),
            f1(summary.p50_us / 1e3),
            f1(summary.p95_us / 1e3),
            f1(summary.throughput_per_s),
        ]);
        summaries.push(summary);
    }

    server.shutdown();
    db.verify_now().expect("post-run verification must pass");
    let overloaded = counter(&db, "net.overloaded");
    let panics = counter(&db, "net.worker_panics");
    let queued = counter(&db, "net.queued");
    assert_eq!(panics, 0, "no executor worker may panic during the sweep");
    assert_eq!(queued, 0, "every admitted query must have terminated");
    t.note("Every remote result was asserted equivalent to the in-process path.");
    t.note(
        "All queries travel the full wire path: framing + CRC, attestation, portal MACs, \
         SeqIntervals.",
    );
    t.note(&format!(
        "Overload refusals (each retried and eventually answered): {overloaded}; \
         worker panics: {panics}; queries left queued: {queued}."
    ));
    t.print();
    tp.print();
    veridb_bench::write_bench_summary("net", &summaries);
}
