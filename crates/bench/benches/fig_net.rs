//! Network layer — concurrent remote clients against `veridb serve`.
//!
//! Starts one in-process server over a TPC-H-loaded engine and sweeps
//! 1/4/16/64 concurrent [`veridb_net::RemoteClient`]s, each running the
//! analytical mix (Q1, Q6, Q3) through the full wire path: framing, CRC,
//! attestation handshake, portal MAC check, endorsement verification, and
//! the `SeqIntervals` rollback defense. Every remote result is asserted
//! equivalent to the in-process path before any number is reported, so the
//! bench doubles as an end-to-end correctness check.
//!
//! Reported per client count: per-query wire latency p50/p95 and aggregate
//! throughput; written to `BENCH_net.json` for cross-PR tracking.

use std::sync::Arc;
use std::time::{Duration, Instant};
use veridb::{Value, VeriDb, VeriDbConfig};
use veridb_bench::{f1, scale_from_env, summarize, FigureTable, Scale};
use veridb_workloads::tpch::{self, TpchConfig, TpchData};

const CLIENT_COUNTS: [usize; 4] = [1, 4, 16, 64];
/// Queries each client runs per mix entry.
const ROUNDS: usize = 2;

fn config(scale: Scale) -> TpchConfig {
    match scale {
        Scale::Paper => TpchConfig {
            lineitem_rows: 120_000,
            part_rows: 4_000,
            ..TpchConfig::default()
        },
        // Small scale keeps 64 concurrent clients well under a minute.
        Scale::Small => TpchConfig {
            lineitem_rows: 12_000,
            part_rows: 400,
            ..TpchConfig::default()
        },
    }
}

/// Same float-epsilon equivalence as fig12_scaling: partial aggregation
/// on the server may associate float sums differently per run.
fn rows_equivalent(a: &[veridb::Row], b: &[veridb::Row]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b).all(|(ra, rb)| {
        ra.values().len() == rb.values().len()
            && ra
                .values()
                .iter()
                .zip(rb.values())
                .all(|(x, y)| match (x, y) {
                    (Value::Float(fx), Value::Float(fy)) => {
                        let scale = fx.abs().max(fy.abs()).max(1.0);
                        (fx - fy).abs() <= 1e-9 * scale
                    }
                    _ => x == y,
                })
    })
}

fn main() {
    let scale = scale_from_env();
    let cfg = config(scale);
    println!(
        "Network sweep — lineitem: {} rows, clients {CLIENT_COUNTS:?}, {} round(s) \
         of Q1/Q6/Q3 each (scale {scale:?})",
        cfg.lineitem_rows, ROUNDS,
    );
    let data = TpchData::generate(&cfg);

    let mut v_cfg = VeriDbConfig::rsws();
    v_cfg.verify_every_ops = None;
    // A window wide enough for 64 pipelining clients.
    v_cfg.replay_window = 1 << 14;
    v_cfg.max_conns = 128;
    let db = Arc::new(VeriDb::open(v_cfg).expect("open"));
    data.load(&db).expect("load");

    let cases: [(&str, &str); 3] = [("Q1", tpch::q1()), ("Q6", tpch::q6()), ("Q3", tpch::q3())];
    // Ground truth from the in-process path.
    let expected: Vec<(&str, veridb::QueryResult)> = cases
        .iter()
        .map(|(name, sql)| (*name, db.sql(sql).expect("in-process query")))
        .collect();

    let mut server = veridb_net::serve(Arc::clone(&db), "127.0.0.1:0").expect("serve");
    let addr = server.local_addr().to_string();

    let mut t = FigureTable::new(
        "Network layer: concurrent verifying clients vs one veridb serve \
         (latency per query over the wire)",
        &["clients", "queries", "p50 ms", "p95 ms", "queries/s"],
    );
    let mut summaries = Vec::new();
    for &n in &CLIENT_COUNTS {
        let wall_start = Instant::now();
        let all_samples: Vec<Vec<f64>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|i| {
                    let addr = addr.clone();
                    let expected = &expected;
                    let cases = &cases;
                    s.spawn(move || {
                        let mut client = veridb_net::RemoteClient::connect_simulated(
                            &addr,
                            &format!("bench-{n}-{i}"),
                            "veridb",
                            Duration::from_secs(30),
                        )
                        .expect("connect");
                        let mut samples = Vec::with_capacity(cases.len() * ROUNDS);
                        for _ in 0..ROUNDS {
                            for ((name, sql), (_, want)) in cases.iter().zip(expected) {
                                let start = Instant::now();
                                let got = client.query(sql).expect("remote query");
                                samples.push(start.elapsed().as_secs_f64());
                                assert_eq!(got.columns, want.columns, "{name} columns");
                                assert!(
                                    rows_equivalent(&got.rows, &want.rows),
                                    "{name}: remote result must equal the in-process result"
                                );
                            }
                        }
                        client.close();
                        samples
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect()
        });
        let wall = wall_start.elapsed().as_secs_f64();
        let samples: Vec<f64> = all_samples.into_iter().flatten().collect();
        let queries = samples.len();
        let summary = summarize(&format!("mix/clients={n}"), &samples, wall, queries);
        t.row(vec![
            n.to_string(),
            queries.to_string(),
            f1(summary.p50_us / 1e3),
            f1(summary.p95_us / 1e3),
            f1(summary.throughput_per_s),
        ]);
        summaries.push(summary);
    }
    server.shutdown();
    db.verify_now().expect("post-run verification must pass");
    t.note("Every remote result was asserted equivalent to the in-process path.");
    t.note("All queries travel the full wire path: framing + CRC, attestation, portal MACs, SeqIntervals.");
    t.print();
    veridb_bench::write_bench_summary("net", &summaries);
}
