//! Shared plumbing for the VeriDB benchmark harness.
//!
//! Every figure of the paper's evaluation has one bench target in
//! `benches/`; each prints an aligned table with the measured series next
//! to the paper's reported series (digitized from the figures, so
//! approximate), and drops a machine-readable JSON file under
//! `target/veridb-bench/` for EXPERIMENTS.md.
//!
//! Scale control: set `VERIDB_BENCH_SCALE=paper` for the paper's full
//! workload sizes (minutes), or leave unset for laptop scale (seconds).
//! The chosen scale is printed with each table.

use std::time::Instant;

/// Workload scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-per-figure laptop scale (default).
    Small,
    /// The paper's workload sizes.
    Paper,
}

/// Read the scale from `VERIDB_BENCH_SCALE`.
pub fn scale_from_env() -> Scale {
    match std::env::var("VERIDB_BENCH_SCALE").as_deref() {
        Ok("paper") | Ok("PAPER") | Ok("full") => Scale::Paper,
        _ => Scale::Small,
    }
}

/// Time `f` once, in seconds.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Mean microseconds per call over individually timed invocations.
pub fn mean_us(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64 * 1e6
}

/// An aligned text table with a title and a footnote.
pub struct FigureTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl FigureTable {
    /// Start a table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        FigureTable {
            title: title.to_owned(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Add a data row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
    }

    /// Add a footnote line.
    pub fn note(&mut self, s: &str) {
        self.notes.push(s.to_owned());
    }

    /// Print the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("\n=== {} ===", self.title);
        for (i, h) in self.headers.iter().enumerate() {
            print!("{:<w$}  ", h, w = widths[i]);
        }
        println!();
        println!("{}", "-".repeat(line));
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                print!("{:<w$}  ", c, w = widths[i]);
            }
            println!();
        }
        for n in &self.notes {
            println!("  * {n}");
        }
    }
}

/// Write a JSON results blob under the workspace's
/// `target/veridb-bench/<name>.json`.
pub fn write_json(name: &str, value: &serde_json::Value) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/veridb-bench");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(s) = serde_json::to_string_pretty(value) {
        let _ = std::fs::write(&path, s);
        println!("  (results written to {})", path.display());
    }
}

/// One operation's latency/throughput summary for `BENCH_*.json`.
#[derive(Debug, Clone)]
pub struct OpSummary {
    /// Operation label, e.g. `"Q1/clients=16"`.
    pub op: String,
    /// Median latency in microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency in microseconds.
    pub p95_us: f64,
    /// Completed operations per second.
    pub throughput_per_s: f64,
    /// Throughput relative to the same op's 1-worker run, for scaling
    /// sweeps (`None` for ops without a 1-worker baseline).
    pub speedup_vs_1w: Option<f64>,
}

/// Percentile (0.0..=1.0) of a sample set, by nearest-rank on a sorted
/// copy. Returns 0 for an empty set.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

/// Build an [`OpSummary`] from per-operation latency samples in seconds.
pub fn summarize(op: &str, latencies_s: &[f64], wall_s: f64, ops: usize) -> OpSummary {
    OpSummary {
        op: op.to_owned(),
        p50_us: percentile(latencies_s, 0.50) * 1e6,
        p95_us: percentile(latencies_s, 0.95) * 1e6,
        throughput_per_s: if wall_s > 0.0 {
            ops as f64 / wall_s
        } else {
            0.0
        },
        speedup_vs_1w: None,
    }
}

/// Write a machine-readable bench summary to `BENCH_<name>.json` at the
/// repository root, so the perf trajectory is tracked across PRs (the
/// `target/veridb-bench/` blobs are richer but not version-controlled).
pub fn write_bench_summary(name: &str, ops: &[OpSummary]) {
    let entries: Vec<serde_json::Value> = ops
        .iter()
        .map(|o| {
            let mut v = serde_json::json!({
                "op": o.op.clone(),
                "p50_us": o.p50_us,
                "p95_us": o.p95_us,
                "throughput_per_s": o.throughput_per_s,
            });
            if let Some(s) = o.speedup_vs_1w {
                v["speedup_vs_1w"] = serde_json::json!(s);
            }
            v
        })
        .collect();
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("../../BENCH_{name}.json"));
    if let Ok(s) = serde_json::to_string_pretty(&serde_json::Value::Array(entries)) {
        let _ = std::fs::write(&path, s + "\n");
        println!("  (summary written to {})", path.display());
    }
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_does_not_panic() {
        let mut t = FigureTable::new("Test", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("note");
        t.print();
    }

    #[test]
    fn mean_us_math() {
        assert_eq!(mean_us(&[]), 0.0);
        assert!((mean_us(&[1e-6, 3e-6]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.95), 7.0);
        let s = [5.0, 1.0, 3.0, 2.0, 4.0]; // unsorted on purpose
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 0.5), 3.0);
        assert_eq!(percentile(&s, 1.0), 5.0);
    }

    #[test]
    fn summarize_computes_throughput() {
        let s = summarize("op", &[0.001, 0.002, 0.003], 2.0, 100);
        assert_eq!(s.op, "op");
        assert!((s.p50_us - 2000.0).abs() < 1e-6);
        assert!((s.throughput_per_s - 50.0).abs() < 1e-9);
        assert!(
            s.speedup_vs_1w.is_none(),
            "no baseline unless a sweep sets one"
        );
    }
}
