//! Integration tests for the verifiable table layer: CRUD, chain
//! maintenance, the paper's worked examples, verified scans, and attacks
//! through the untrusted index.

use std::ops::Bound;
use std::sync::Arc;
use veridb_common::{ColumnDef, ColumnType, Error, Row, Schema, Value, VeriDbConfig};
use veridb_enclave::Enclave;
use veridb_storage::index::IndexLie;
use veridb_storage::{Catalog, ChainIndex, IndexOracle, MaliciousIndex, Table};
use veridb_wrcm::VerifiedMemory;

fn memory() -> Arc<VerifiedMemory> {
    let enclave = Enclave::create("table-test", 1 << 22, [6u8; 32]);
    let mut cfg = VeriDbConfig::default();
    cfg.verify_every_ops = None; // verification driven manually in tests
    VerifiedMemory::from_config(enclave, &cfg)
}

fn int(v: i64) -> Value {
    Value::Int(v)
}

/// The quote relation of Figure 4: id (pk), count, price.
fn quote_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("id", ColumnType::Int),
        ColumnDef::new("count", ColumnType::Int),
        ColumnDef::new("price", ColumnType::Int),
    ])
    .unwrap()
}

fn quote_table(mem: &Arc<VerifiedMemory>) -> Arc<Table> {
    let t = Table::create(Arc::clone(mem), "quote", quote_schema()).unwrap();
    // Figure 4's contents: (id1..id4, count, price).
    for (id, count, price) in [(1, 100, 100), (2, 100, 200), (3, 500, 100), (4, 600, 100)] {
        t.insert(Row::new(vec![int(id), int(count), int(price)]))
            .unwrap();
    }
    t
}

#[test]
fn figure_4_point_lookups_with_evidence() {
    let mem = memory();
    let t = quote_table(&mem);

    // ⟨id1, id2, (100,$100)⟩ proves the existence of id1 (Example 4.3).
    let row = t.get_by_pk(&int(1)).unwrap().unwrap();
    assert_eq!(row.values(), &[int(1), int(100), int(100)]);

    // A query for id > id4 returns null with evidence ⟨id4, ⊤, …⟩.
    assert_eq!(t.get_by_pk(&int(99)).unwrap(), None);
    // A query below the minimum is proven absent by the sentinel ⟨⊥, id1⟩.
    assert_eq!(t.get_by_pk(&int(0)).unwrap(), None);
    // A gap inside the table.
    t.delete(&int(2)).unwrap();
    assert_eq!(t.get_by_pk(&int(2)).unwrap(), None);

    mem.verify_now().unwrap();
}

#[test]
fn figure_6_multi_column_chain_evolution() {
    // Two-chain relation; insert ⟨1, 4, d1⟩ then ⟨3, 2, d2⟩ and check the
    // chains evolve exactly as Figure 6 shows.
    let mem = memory();
    let schema = Schema::new(vec![
        ColumnDef::new("c1", ColumnType::Int),
        ColumnDef::chained("c2", ColumnType::Int),
        ColumnDef::new("data", ColumnType::Str),
    ])
    .unwrap();
    let t = Table::create(Arc::clone(&mem), "fig6", schema).unwrap();

    t.insert(Row::new(vec![int(1), int(4), Value::Str("data1".into())]))
        .unwrap();
    // Chain 1: ⊥ → 1 → ⊤, chain 2: ⊥ → 4 → ⊤.
    let c1: Vec<Row> = t.seq_scan().collect_rows().unwrap();
    assert_eq!(c1.len(), 1);

    t.insert(Row::new(vec![int(3), int(2), Value::Str("data2".into())]))
        .unwrap();
    // Chain 1 order: 1, 3. Chain 2 order: 2 (pk 3), 4 (pk 1).
    let by_c1: Vec<i64> = t
        .seq_scan()
        .collect_rows()
        .unwrap()
        .iter()
        .map(|r| r[0].as_i64().unwrap())
        .collect();
    assert_eq!(by_c1, vec![1, 3]);
    let by_c2: Vec<(i64, i64)> = t
        .range_scan(1, Bound::Unbounded, Bound::Unbounded)
        .collect_rows()
        .unwrap()
        .iter()
        .map(|r| (r[1].as_i64().unwrap(), r[0].as_i64().unwrap()))
        .collect();
    assert_eq!(by_c2, vec![(2, 3), (4, 1)]);

    mem.verify_now().unwrap();
}

#[test]
fn range_scan_bounds_and_evidence_records() {
    let mem = memory();
    let t = quote_table(&mem); // ids 1..4

    // Inclusive range hitting interior keys (Example 5.1's shape).
    let rows = t
        .range_scan(0, Bound::Included(int(2)), Bound::Included(int(3)))
        .collect_rows()
        .unwrap();
    let ids: Vec<i64> = rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    assert_eq!(ids, vec![2, 3]);

    // Exclusive bounds.
    let rows = t
        .range_scan(0, Bound::Excluded(int(1)), Bound::Excluded(int(4)))
        .collect_rows()
        .unwrap();
    let ids: Vec<i64> = rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    assert_eq!(ids, vec![2, 3]);

    // Range entirely below / above / between keys → verified empty.
    assert!(t
        .range_scan(0, Bound::Included(int(-10)), Bound::Included(int(0)))
        .collect_rows()
        .unwrap()
        .is_empty());
    assert!(t
        .range_scan(0, Bound::Included(int(100)), Bound::Included(int(200)))
        .collect_rows()
        .unwrap()
        .is_empty());

    // Unbounded = SeqScan: every record, in key order.
    let all = t.seq_scan().collect_rows().unwrap();
    assert_eq!(all.len(), 4);

    // A scan counts its evidence records: [2,3] needs floor(2)=2... plus
    // the stop happens via nKey(3)=4 > 3, so only the in-range records are
    // read — 2 records.
    let mut scan = t.range_scan(0, Bound::Included(int(2)), Bound::Included(int(3)));
    let mut n = 0;
    for r in scan.by_ref() {
        r.unwrap();
        n += 1;
    }
    assert_eq!(n, 2);
    assert_eq!(scan.records_read(), 2);

    mem.verify_now().unwrap();
}

#[test]
fn range_scan_left_evidence_record_consumed_not_emitted() {
    let mem = memory();
    let t = quote_table(&mem);
    // Range (1.5, 3.5] style: lower bound between keys → the floor record
    // (key 1) is evidence only.
    let mut scan = t.range_scan(0, Bound::Included(int(2)), Bound::Included(int(3)));
    // floor(2) == 2 exactly here; use a between-keys bound instead:
    drop(scan);
    t.delete(&int(2)).unwrap(); // keys now 1,3,4
    scan = t.range_scan(0, Bound::Included(int(2)), Bound::Included(int(3)));
    let rows: Vec<Row> = scan.by_ref().map(|r| r.unwrap()).collect();
    let ids: Vec<i64> = rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    assert_eq!(ids, vec![3]);
    // floor(2) = record 1 (evidence), then 3 (emitted); nKey(3)=4 > 3 stops.
    assert_eq!(scan.records_read(), 2);
    mem.verify_now().unwrap();
}

#[test]
fn secondary_chain_with_duplicate_values() {
    let mem = memory();
    let schema = Schema::new(vec![
        ColumnDef::new("id", ColumnType::Int),
        ColumnDef::chained("grp", ColumnType::Int),
        ColumnDef::new("payload", ColumnType::Str),
    ])
    .unwrap();
    let t = Table::create(Arc::clone(&mem), "dups", schema).unwrap();
    for (id, grp) in [(1, 10), (2, 20), (3, 10), (4, 10), (5, 30)] {
        t.insert(Row::new(vec![
            int(id),
            int(grp),
            Value::Str(format!("p{id}")),
        ]))
        .unwrap();
    }
    // Equality on the secondary chain returns all three grp=10 rows.
    let rows = t.scan_eq(1, &int(10)).collect_rows().unwrap();
    let mut ids: Vec<i64> = rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![1, 3, 4]);

    // Range [10, 20] picks up grp 10 and 20.
    let rows = t
        .range_scan(1, Bound::Included(int(10)), Bound::Included(int(20)))
        .collect_rows()
        .unwrap();
    assert_eq!(rows.len(), 4);

    // Verified-empty equality for a missing group.
    assert!(t.scan_eq(1, &int(99)).collect_rows().unwrap().is_empty());
    mem.verify_now().unwrap();
}

#[test]
fn duplicate_primary_key_rejected() {
    let mem = memory();
    let t = quote_table(&mem);
    let err = t
        .insert(Row::new(vec![int(1), int(0), int(0)]))
        .unwrap_err();
    assert!(matches!(err, Error::DuplicateKey(_)));
    mem.verify_now().unwrap();
}

#[test]
fn delete_missing_key_is_verified_absent() {
    let mem = memory();
    let t = quote_table(&mem);
    assert!(matches!(t.delete(&int(42)), Err(Error::KeyNotFound(_))));
    mem.verify_now().unwrap();
}

#[test]
fn update_in_place_and_key_changing() {
    let mem = memory();
    let t = quote_table(&mem);
    // In-place: no chained column changes.
    t.update(&int(3), Row::new(vec![int(3), int(555), int(101)]))
        .unwrap();
    assert_eq!(
        t.get_by_pk(&int(3)).unwrap().unwrap().values(),
        &[int(3), int(555), int(101)]
    );
    // Key-changing: pk 4 → 40 (delete + insert).
    t.update(&int(4), Row::new(vec![int(40), int(600), int(100)]))
        .unwrap();
    assert!(t.get_by_pk(&int(4)).unwrap().is_none());
    assert!(t.get_by_pk(&int(40)).unwrap().is_some());
    let ids: Vec<i64> = t
        .seq_scan()
        .collect_rows()
        .unwrap()
        .iter()
        .map(|r| r[0].as_i64().unwrap())
        .collect();
    assert_eq!(ids, vec![1, 2, 3, 40]);
    mem.verify_now().unwrap();
}

#[test]
fn update_with_closure() {
    let mem = memory();
    let t = quote_table(&mem);
    t.update_with(&int(1), |row| {
        let c = row[1].as_i64().unwrap();
        *row = Row::new(vec![row[0].clone(), int(c - 10), row[2].clone()]);
    })
    .unwrap();
    assert_eq!(t.get_by_pk(&int(1)).unwrap().unwrap()[1], int(90));
    mem.verify_now().unwrap();
}

#[test]
fn growing_updates_relocate_and_stay_verified() {
    let mem = memory();
    let schema = Schema::new(vec![
        ColumnDef::new("id", ColumnType::Int),
        ColumnDef::new("blob", ColumnType::Str),
    ])
    .unwrap();
    let t = Table::create(Arc::clone(&mem), "grow", schema).unwrap();
    for i in 0..50 {
        t.insert(Row::new(vec![int(i), Value::Str("tiny".into())]))
            .unwrap();
    }
    // Grow each row by ~50×, forcing relocations across pages.
    for i in 0..50 {
        t.update(&int(i), Row::new(vec![int(i), Value::Str("X".repeat(200))]))
            .unwrap();
    }
    for i in 0..50 {
        let row = t.get_by_pk(&int(i)).unwrap().unwrap();
        assert_eq!(row[1].as_str().unwrap().len(), 200);
    }
    let ids: Vec<i64> = t
        .seq_scan()
        .collect_rows()
        .unwrap()
        .iter()
        .map(|r| r[0].as_i64().unwrap())
        .collect();
    assert_eq!(ids, (0..50).collect::<Vec<_>>());
    mem.verify_now().unwrap();
}

#[test]
fn thousands_of_rows_span_pages_and_verify() {
    let mem = memory();
    let t = quote_table(&mem);
    for i in 5..2000 {
        t.insert(Row::new(vec![int(i), int(i % 7), int(i % 11)]))
            .unwrap();
    }
    assert_eq!(t.row_count(), 1999);
    assert!(mem.page_count() > 1, "rows must span multiple pages");
    let all = t.seq_scan().collect_rows().unwrap();
    assert_eq!(all.len(), 1999);
    // Spot-check ordering.
    assert!(all.windows(2).all(|w| w[0][0] < w[1][0]));
    mem.verify_now().unwrap();
}

// ---- attacks through the untrusted index --------------------------------

fn malicious_table(mem: &Arc<VerifiedMemory>) -> (Arc<Table>, Arc<MaliciousIndex>) {
    // Build a table whose primary index we control. The IndexOracle must be
    // shared, so wrap it in an Arc-backed shim.
    struct Shim(Arc<MaliciousIndex>);
    impl IndexOracle for Shim {
        fn find_floor(&self, k: &veridb_storage::ChainKey) -> Option<veridb_wrcm::CellAddr> {
            self.0.find_floor(k)
        }
        fn find_below(&self, k: &veridb_storage::ChainKey) -> Option<veridb_wrcm::CellAddr> {
            self.0.find_below(k)
        }
        fn find_exact(&self, k: &veridb_storage::ChainKey) -> Option<veridb_wrcm::CellAddr> {
            self.0.find_exact(k)
        }
        fn upsert(&self, k: veridb_storage::ChainKey, a: veridb_wrcm::CellAddr) {
            self.0.upsert(k, a)
        }
        fn remove(&self, k: &veridb_storage::ChainKey) {
            self.0.remove(k)
        }
        fn len(&self) -> usize {
            self.0.len()
        }
    }
    let mal = Arc::new(MaliciousIndex::new());
    let t = Table::create_with_indexes(
        Arc::clone(mem),
        "victim",
        quote_schema(),
        vec![Box::new(Shim(Arc::clone(&mal)))],
    )
    .unwrap();
    for (id, count, price) in [(1, 100, 100), (2, 100, 200), (3, 500, 100), (4, 600, 100)] {
        t.insert(Row::new(vec![int(id), int(count), int(price)]))
            .unwrap();
    }
    (t, mal)
}

#[test]
fn index_denying_existing_key_is_detected() {
    let mem = memory();
    let (t, mal) = malicious_table(&mem);
    mal.arm(IndexLie::DenyAll);
    let err = t.get_by_pk(&int(2)).unwrap_err();
    assert!(matches!(err, Error::TamperDetected(_)));
    mal.disarm();
    assert!(t.get_by_pk(&int(2)).unwrap().is_some());
}

#[test]
fn index_returning_wrong_record_is_detected() {
    let mem = memory();
    let (t, mal) = malicious_table(&mem);
    // Point the index at record id=4's address for every query.
    let addr4 = {
        mal.disarm();
        mal.find_exact(&veridb_storage::ChainKey::val(int(4)))
            .unwrap()
    };
    mal.arm(IndexLie::WrongRecord(addr4));
    // Asking for key 2 and getting record ⟨4, ⊤⟩ must be rejected.
    let err = t.get_by_pk(&int(2)).unwrap_err();
    assert!(matches!(err, Error::TamperDetected(_)));
}

#[test]
fn index_undershoot_hides_existing_key_and_is_detected() {
    let mem = memory();
    let (t, mal) = malicious_table(&mem);
    // The undershooting index returns record 1 as floor(2); record 1's
    // nKey is 2, so "key 2 absent" would require 1 < 2 < 2 — false. The
    // check catches the omission.
    mal.arm(IndexLie::Undershoot);
    let err = t.get_by_pk(&int(2)).unwrap_err();
    assert!(matches!(err, Error::TamperDetected(_)));
}

#[test]
fn range_scan_omission_via_denying_index_is_detected() {
    let mem = memory();
    let (t, mal) = malicious_table(&mem);
    mal.arm(IndexLie::DenyAll);
    let result: Result<Vec<Row>, Error> = t
        .range_scan(0, Bound::Included(int(1)), Bound::Included(int(4)))
        .collect();
    assert!(matches!(result, Err(Error::TamperDetected(_))));
}

// ---- concurrency ---------------------------------------------------------

#[test]
fn concurrent_readers_and_writers_stay_consistent() {
    let mem = memory();
    let t = quote_table(&mem);
    for i in 5..500 {
        t.insert(Row::new(vec![int(i), int(i), int(i)])).unwrap();
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut handles = Vec::new();
    // Two writer threads inserting disjoint key ranges + updating.
    for w in 0..2i64 {
        let t = Arc::clone(&t);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let base = 1000 + w * 10_000;
            let mut i = 0;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) && i < 300 {
                t.insert(Row::new(vec![int(base + i), int(i), int(i)]))
                    .unwrap();
                if i % 3 == 0 {
                    t.update_with(&int(base + i), |row| {
                        *row = Row::new(vec![row[0].clone(), int(-1), row[2].clone()]);
                    })
                    .unwrap();
                }
                i += 1;
            }
        }));
    }
    // Reader threads doing point gets and short scans.
    for r in 0..2u64 {
        let t = Arc::clone(&t);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut i = r as i64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) && i < 2000 {
                let _ = t.get_by_pk(&int(5 + (i % 400)));
                i += 13;
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    mem.verify_now().unwrap();
    assert!(mem.poisoned().is_none());
}

#[test]
fn catalog_end_to_end_with_verification() {
    let mem = memory();
    let catalog = Catalog::new(Arc::clone(&mem));
    let t = catalog.create_table("quote", quote_schema()).unwrap();
    t.insert(Row::new(vec![int(1), int(2), int(3)])).unwrap();
    assert_eq!(catalog.table("quote").unwrap().row_count(), 1);
    mem.verify_now().unwrap();
}

#[test]
fn honest_chain_index_basics() {
    // Regression guard for the floor semantics the whole layer rests on.
    let idx = ChainIndex::new();
    assert!(idx.is_empty());
    idx.upsert(
        veridb_storage::ChainKey::NegInf,
        veridb_wrcm::CellAddr { page: 1, slot: 0 },
    );
    assert_eq!(
        idx.find_floor(&veridb_storage::ChainKey::val(int(5))),
        Some(veridb_wrcm::CellAddr { page: 1, slot: 0 })
    );
    assert_eq!(idx.find_below(&veridb_storage::ChainKey::NegInf), None);
}

#[test]
fn bplus_indexed_table_behaves_identically() {
    let mem = memory();
    let t = Table::create_with_bplus(Arc::clone(&mem), "bp", quote_schema()).unwrap();
    for i in 0..500i64 {
        t.insert(Row::new(vec![int(i), int(i % 9), int(i % 5)]))
            .unwrap();
    }
    // Point, miss, range, delete, update — all verified through the B+ index.
    assert!(t.get_by_pk(&int(250)).unwrap().is_some());
    assert!(t.get_by_pk(&int(1000)).unwrap().is_none());
    let rows = t
        .range_scan(0, Bound::Included(int(100)), Bound::Excluded(int(110)))
        .collect_rows()
        .unwrap();
    assert_eq!(rows.len(), 10);
    t.delete(&int(250)).unwrap();
    assert!(t.get_by_pk(&int(250)).unwrap().is_none());
    t.update(&int(251), Row::new(vec![int(251), int(0), int(0)]))
        .unwrap();
    let all = t.seq_scan().collect_rows().unwrap();
    assert_eq!(all.len(), 499);
    assert!(all.windows(2).all(|w| w[0][0] < w[1][0]));
    mem.verify_now().unwrap();
}

// ---- batched scan fast path ----------------------------------------------

/// An honest index that refuses prefetch hints: `next_entries` stays the
/// trait default (empty), so every scan takes the per-record path.
struct NoPrefetch(ChainIndex);
impl IndexOracle for NoPrefetch {
    fn find_floor(&self, k: &veridb_storage::ChainKey) -> Option<veridb_wrcm::CellAddr> {
        self.0.find_floor(k)
    }
    fn find_below(&self, k: &veridb_storage::ChainKey) -> Option<veridb_wrcm::CellAddr> {
        self.0.find_below(k)
    }
    fn find_exact(&self, k: &veridb_storage::ChainKey) -> Option<veridb_wrcm::CellAddr> {
        self.0.find_exact(k)
    }
    fn upsert(&self, k: veridb_storage::ChainKey, a: veridb_wrcm::CellAddr) {
        self.0.upsert(k, a)
    }
    fn remove(&self, k: &veridb_storage::ChainKey) {
        self.0.remove(k)
    }
    fn len(&self) -> usize {
        self.0.len()
    }
}

#[test]
fn batched_scan_matches_per_record_scan() {
    let mem = memory();
    let fast = quote_table(&mem);
    let slow = Table::create_with_indexes(
        Arc::clone(&mem),
        "quote_slow",
        quote_schema(),
        vec![Box::new(NoPrefetch(ChainIndex::new()))],
    )
    .unwrap();
    // Mirror quote_table's seed rows so both tables hold identical data.
    for (id, count, price) in [(1, 100, 100), (2, 100, 200), (3, 500, 100), (4, 600, 100)] {
        slow.insert(Row::new(vec![int(id), int(count), int(price)]))
            .unwrap();
    }
    for i in 5..1200 {
        let row = Row::new(vec![int(i), int(i % 7), int(i % 11)]);
        fast.insert(row.clone()).unwrap();
        slow.insert(row).unwrap();
    }
    assert!(mem.page_count() > 1, "rows must span multiple pages");

    let mut s_fast = fast.seq_scan();
    let rows_fast: Vec<Row> = s_fast.by_ref().collect::<Result<_, _>>().unwrap();
    assert!(
        s_fast.batched_rounds() > 0,
        "prefetching index must engage the batch path"
    );
    let mut s_slow = slow.seq_scan();
    let rows_slow: Vec<Row> = s_slow.by_ref().collect::<Result<_, _>>().unwrap();
    assert_eq!(
        s_slow.batched_rounds(),
        0,
        "default next_entries must disable batching"
    );
    assert_eq!(rows_fast, rows_slow);
    assert_eq!(rows_fast.len(), 1199);

    // Bounded ranges agree too (evidence records trimmed identically).
    for (lo, hi) in [
        (Bound::Included(int(100)), Bound::Excluded(int(200))),
        (Bound::Excluded(int(7)), Bound::Included(int(7 + 40))),
        (Bound::Unbounded, Bound::Included(int(3))),
        (Bound::Included(int(5000)), Bound::Unbounded),
    ] {
        let a = fast
            .range_scan(0, lo.clone(), hi.clone())
            .collect_rows()
            .unwrap();
        let b = slow.range_scan(0, lo, hi).collect_rows().unwrap();
        assert_eq!(a, b);
    }
    mem.verify_now().unwrap();
}

/// A prefetcher that answers `next_entries` with honest keys but rotated
/// addresses — every hint points at the wrong record. The scan must fall
/// back to per-record resolution and still return only correct rows; an
/// advisory lie can never surface as data.
struct RotatedPrefetch(ChainIndex);
impl IndexOracle for RotatedPrefetch {
    fn find_floor(&self, k: &veridb_storage::ChainKey) -> Option<veridb_wrcm::CellAddr> {
        self.0.find_floor(k)
    }
    fn find_below(&self, k: &veridb_storage::ChainKey) -> Option<veridb_wrcm::CellAddr> {
        self.0.find_below(k)
    }
    fn find_exact(&self, k: &veridb_storage::ChainKey) -> Option<veridb_wrcm::CellAddr> {
        self.0.find_exact(k)
    }
    fn upsert(&self, k: veridb_storage::ChainKey, a: veridb_wrcm::CellAddr) {
        self.0.upsert(k, a)
    }
    fn remove(&self, k: &veridb_storage::ChainKey) {
        self.0.remove(k)
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn next_entries(
        &self,
        from: &veridb_storage::ChainKey,
        limit: usize,
    ) -> Vec<(veridb_storage::ChainKey, veridb_wrcm::CellAddr)> {
        let mut entries = self.0.next_entries(from, limit);
        if entries.len() > 1 {
            let addrs: Vec<_> = entries.iter().map(|(_, a)| *a).collect();
            let n = addrs.len();
            for (i, e) in entries.iter_mut().enumerate() {
                e.1 = addrs[(i + 1) % n];
            }
        }
        entries
    }
}

#[test]
fn lying_prefetch_hints_cannot_corrupt_scan_results() {
    let mem = memory();
    let t = Table::create_with_indexes(
        Arc::clone(&mem),
        "rotated",
        quote_schema(),
        vec![Box::new(RotatedPrefetch(ChainIndex::new()))],
    )
    .unwrap();
    for i in 0..300 {
        t.insert(Row::new(vec![int(i), int(i % 3), int(i % 5)]))
            .unwrap();
    }
    let rows = t.seq_scan().collect_rows().unwrap();
    let ids: Vec<i64> = rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    assert_eq!(ids, (0..300).collect::<Vec<_>>());
    mem.verify_now().unwrap();
}

#[test]
fn batched_scans_race_writers_without_false_alarms() {
    let mem = memory();
    let t = quote_table(&mem);
    for i in 5..600 {
        t.insert(Row::new(vec![int(i), int(i), int(i)])).unwrap();
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut handles = Vec::new();
    for w in 0..2i64 {
        let t = Arc::clone(&t);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let base = 10_000 + w * 10_000;
            let mut i = 0;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) && i < 200 {
                t.insert(Row::new(vec![int(base + i), int(i), int(i)]))
                    .unwrap();
                i += 1;
            }
        }));
    }
    // Scanners drive the batched path while the chain is being spliced:
    // stale prefetch hints must degrade to the fallback, never alarm.
    for _ in 0..2 {
        let t = Arc::clone(&t);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let rows = t.seq_scan().collect_rows().unwrap();
                assert!(rows.len() >= 599, "concurrent inserts only ever add rows");
            }
        }));
    }
    std::thread::sleep(std::time::Duration::from_millis(250));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    mem.verify_now().unwrap();
    assert!(mem.poisoned().is_none());
}

// ---- morsel splitting (parallel scan support) ----------------------------

/// A table large enough for `morsel_ranges` to actually split (the
/// splitter refuses to cut tables under 512 rows).
fn big_table(mem: &Arc<VerifiedMemory>, rows: i64) -> Arc<Table> {
    let t = Table::create(Arc::clone(mem), "big", quote_schema()).unwrap();
    for i in 0..rows {
        t.insert(Row::new(vec![int(i), int(i % 7), int(i % 11)]))
            .unwrap();
    }
    t
}

#[test]
fn morsel_ranges_tile_the_full_range() {
    let mem = memory();
    let t = big_table(&mem, 2_000);
    let ranges = t.morsel_ranges(0, &Bound::Unbounded, &Bound::Unbounded, 8);
    assert!(
        ranges.len() > 1,
        "2000 rows at target 8 must split (got {} range(s))",
        ranges.len()
    );
    // Tiling shape: opens unbounded, closes unbounded, and every interior
    // seam pairs Excluded(b) with Included(b) for the same boundary.
    assert!(matches!(ranges.first().unwrap().0, Bound::Unbounded));
    assert!(matches!(ranges.last().unwrap().1, Bound::Unbounded));
    for pair in ranges.windows(2) {
        match (&pair[0].1, &pair[1].0) {
            (Bound::Excluded(a), Bound::Included(b)) => assert_eq!(a, b),
            other => panic!("seam must be Excluded|Included, got {other:?}"),
        }
    }
    // Completeness: per-morsel verified scans, concatenated in morsel
    // order, must equal the serial verified scan exactly.
    let serial = t.seq_scan().collect_rows().unwrap();
    let mut tiled = Vec::new();
    for (lo, hi) in ranges {
        tiled.extend(t.range_scan(0, lo, hi).collect_rows().unwrap());
    }
    assert_eq!(tiled, serial);
    mem.verify_now().unwrap();
}

#[test]
fn morsel_ranges_respect_explicit_bounds() {
    let mem = memory();
    let t = big_table(&mem, 2_000);
    let lo = Bound::Included(int(200));
    let hi = Bound::Excluded(int(1_800));
    let ranges = t.morsel_ranges(0, &lo, &hi, 6);
    assert_eq!(ranges.first().unwrap().0, lo);
    assert_eq!(ranges.last().unwrap().1, hi);
    let serial = t
        .range_scan(0, lo.clone(), hi.clone())
        .collect_rows()
        .unwrap();
    let mut tiled = Vec::new();
    for (l, h) in ranges {
        tiled.extend(t.range_scan(0, l, h).collect_rows().unwrap());
    }
    assert_eq!(tiled, serial);
}

#[test]
fn morsel_ranges_small_table_stays_whole() {
    let mem = memory();
    let t = quote_table(&mem);
    let ranges = t.morsel_ranges(0, &Bound::Unbounded, &Bound::Unbounded, 8);
    assert_eq!(ranges.len(), 1);
    assert!(matches!(ranges[0], (Bound::Unbounded, Bound::Unbounded)));
}

#[test]
fn morsel_ranges_lying_index_cannot_break_completeness() {
    // An index that refuses to enumerate (returns nothing) degrades the
    // split to one whole-range morsel; the verified scan is unaffected.
    let mem = memory();
    let (t, malicious) = malicious_table(&mem);
    for i in 10..1_500 {
        t.insert(Row::new(vec![int(i), int(i), int(i)])).unwrap();
    }
    malicious.arm(IndexLie::DenyAll);
    let ranges = t.morsel_ranges(0, &Bound::Unbounded, &Bound::Unbounded, 8);
    malicious.disarm();
    assert_eq!(
        ranges.len(),
        1,
        "a silent index yields a single whole-range morsel"
    );
    let rows = {
        let (lo, hi) = ranges.into_iter().next().unwrap();
        t.range_scan(0, lo, hi).collect_rows().unwrap()
    };
    assert_eq!(rows.len(), t.row_count() as usize);
}
