//! Property-based model checking of the table layer: any sequence of
//! inserts/deletes/updates against a two-chain table matches an in-memory
//! model, every scan result is sorted and complete, and the memory always
//! passes verification afterwards.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;
use veridb_common::{ColumnDef, ColumnType, Row, Schema, Value, VeriDbConfig};
use veridb_enclave::Enclave;
use veridb_storage::Table;
use veridb_wrcm::VerifiedMemory;

#[derive(Debug, Clone)]
enum Op {
    Insert { pk: i64, grp: i64 },
    Delete { pk: i64 },
    Update { pk: i64, grp: i64 },
    Get { pk: i64 },
    Range { lo: i64, hi: i64 },
    RangeSecondary { lo: i64, hi: i64 },
    Verify,
}

fn arb_op() -> impl Strategy<Value = Op> {
    let key = -20i64..20;
    let grp = 0i64..6;
    prop_oneof![
        4 => (key.clone(), grp.clone()).prop_map(|(pk, grp)| Op::Insert { pk, grp }),
        2 => key.clone().prop_map(|pk| Op::Delete { pk }),
        2 => (key.clone(), grp).prop_map(|(pk, grp)| Op::Update { pk, grp }),
        3 => key.clone().prop_map(|pk| Op::Get { pk }),
        2 => (key.clone(), key.clone()).prop_map(|(a, b)| Op::Range { lo: a.min(b), hi: a.max(b) }),
        1 => (0i64..6, 0i64..6).prop_map(|(a, b)| Op::RangeSecondary { lo: a.min(b), hi: a.max(b) }),
        1 => Just(Op::Verify),
    ]
}

fn schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("pk", ColumnType::Int),
        ColumnDef::chained("grp", ColumnType::Int),
        ColumnDef::new("note", ColumnType::Str),
    ])
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]
    #[test]
    fn table_matches_model(ops in prop::collection::vec(arb_op(), 0..120)) {
        let enclave = Enclave::create("prop-table", 1 << 22, [8u8; 32]);
        let mut cfg = VeriDbConfig::default();
        cfg.verify_every_ops = None;
        cfg.page_size = 1024; // force page churn
        let mem = VerifiedMemory::from_config(enclave, &cfg);
        let table = Table::create(Arc::clone(&mem), "model", schema()).unwrap();

        // model: pk -> grp
        let mut model: BTreeMap<i64, i64> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Insert { pk, grp } => {
                    let row = Row::new(vec![
                        Value::Int(pk),
                        Value::Int(grp),
                        Value::Str(format!("n{pk}")),
                    ]);
                    let res = table.insert(row);
                    if let std::collections::btree_map::Entry::Vacant(e) = model.entry(pk) {
                        res.unwrap();
                        e.insert(grp);
                    } else {
                        prop_assert!(res.is_err(), "duplicate insert must fail");
                    }
                }
                Op::Delete { pk } => {
                    let res = table.delete(&Value::Int(pk));
                    if model.remove(&pk).is_some() {
                        res.unwrap();
                    } else {
                        prop_assert!(res.is_err());
                    }
                }
                Op::Update { pk, grp } => {
                    let row = Row::new(vec![
                        Value::Int(pk),
                        Value::Int(grp),
                        Value::Str(format!("u{pk}")),
                    ]);
                    let res = table.update(&Value::Int(pk), row);
                    if let std::collections::btree_map::Entry::Occupied(mut e) =
                        model.entry(pk)
                    {
                        res.unwrap();
                        e.insert(grp);
                    } else {
                        prop_assert!(res.is_err());
                    }
                }
                Op::Get { pk } => {
                    let got = table.get_by_pk(&Value::Int(pk)).unwrap();
                    match model.get(&pk) {
                        Some(&grp) => {
                            let row = got.expect("model says present");
                            prop_assert_eq!(row[1].as_i64().unwrap(), grp);
                        }
                        None => prop_assert!(got.is_none()),
                    }
                }
                Op::Range { lo, hi } => {
                    let rows = table
                        .range_scan(
                            0,
                            Bound::Included(Value::Int(lo)),
                            Bound::Included(Value::Int(hi)),
                        )
                        .collect_rows()
                        .unwrap();
                    let got: Vec<i64> =
                        rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
                    let want: Vec<i64> =
                        model.range(lo..=hi).map(|(&k, _)| k).collect();
                    prop_assert_eq!(got, want, "primary range [{},{}]", lo, hi);
                }
                Op::RangeSecondary { lo, hi } => {
                    let rows = table
                        .range_scan(
                            1,
                            Bound::Included(Value::Int(lo)),
                            Bound::Included(Value::Int(hi)),
                        )
                        .collect_rows()
                        .unwrap();
                    let mut got: Vec<(i64, i64)> = rows
                        .iter()
                        .map(|r| (r[1].as_i64().unwrap(), r[0].as_i64().unwrap()))
                        .collect();
                    let mut want: Vec<(i64, i64)> = model
                        .iter()
                        .filter(|(_, &g)| g >= lo && g <= hi)
                        .map(|(&k, &g)| (g, k))
                        .collect();
                    want.sort_unstable();
                    prop_assert!(
                        got.windows(2).all(|w| w[0] <= w[1]),
                        "secondary scan must be ordered"
                    );
                    got.sort_unstable();
                    prop_assert_eq!(got, want, "secondary range [{},{}]", lo, hi);
                }
                Op::Verify => {
                    mem.verify_now().unwrap();
                }
            }
        }
        // Final checks: row count, full contents, verification.
        prop_assert_eq!(table.row_count() as usize, model.len());
        let all: Vec<i64> = table
            .seq_scan()
            .collect_rows()
            .unwrap()
            .iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        let want: Vec<i64> = model.keys().copied().collect();
        prop_assert_eq!(all, want);
        mem.verify_now().unwrap();
        prop_assert!(mem.poisoned().is_none());
    }
}
