//! Bounded exponential backoff for benign-race retries.
//!
//! The implementation lives in [`veridb_common::backoff`] so that
//! `veridb-wrcm` (which must not depend on this crate) can share it; this
//! module re-exports it under the historical `storage::backoff` path for
//! the cursor and table retry loops.

pub use veridb_common::backoff::{Backoff, RETRY_ATTEMPTS};
