//! The verified range-scan cursor (§5.2 Range Scan, Figure 5).
//!
//! [`VerifiedScan`] walks a chain from the untrusted index's floor record
//! for the lower bound and verifies, incrementally, the three completeness
//! conditions of the paper:
//!
//! 1. the first record's key is `≤` the lower bound (left coverage),
//! 2. the walk only stops once the pending `nKey` exceeds the upper bound
//!    or reaches `⊤` (right coverage),
//! 3. each record's key equals its predecessor's `nKey` (gap-freedom).
//!
//! Any violation yields `Err(TamperDetected)` from the iterator. Records
//! outside the value bounds (the floor record, and the right-end witness)
//! are consumed for evidence but not emitted — exactly the `k2`/`k6`
//! records of the paper's Example 2.1/5.1.
//!
//! **Benign races**: a concurrent insert/delete can momentarily leave the
//! untrusted index out of sync with the chain (the cursor resolves an
//! `nKey` the splicer has not yet published, or one just removed). These
//! are indistinguishable from tampering *at that instant*, so the cursor
//! retries resolution a few times before raising the alarm; persistent
//! inconsistency is reported as tampering.

use crate::chain::ChainKey;
use crate::record::StoredRecord;
use crate::table::Table;
use std::ops::Bound;
use std::sync::Arc;
use veridb_common::{Error, Result, Row, Value};

/// An iterator of verified rows over one chain of one table.
pub struct VerifiedScan {
    table: Arc<Table>,
    chain: usize,
    lo: Bound<Value>,
    hi: Bound<Value>,
    /// Key the next record must carry (condition 3); `None` before start.
    expected: Option<ChainKey>,
    started: bool,
    done: bool,
    /// Records consumed (including evidence-only ones), for diagnostics.
    records_read: u64,
}

impl VerifiedScan {
    pub(crate) fn new(
        table: Arc<Table>,
        chain: usize,
        lo: Bound<Value>,
        hi: Bound<Value>,
    ) -> Self {
        VerifiedScan {
            table,
            chain,
            lo,
            hi,
            expected: None,
            started: false,
            done: false,
            records_read: 0,
        }
    }

    /// Number of records read from storage so far (evidence included).
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// Collect all remaining rows, failing on the first alarm.
    pub fn collect_rows(self) -> Result<Vec<Row>> {
        self.collect()
    }

    /// The chain-key query point for the lower bound: the scan starts at
    /// the floor of this key.
    fn lo_key(&self) -> ChainKey {
        match &self.lo {
            Bound::Unbounded => ChainKey::NegInf,
            Bound::Included(v) | Bound::Excluded(v) => {
                if self.chain == 0 {
                    ChainKey::val(v.clone())
                } else {
                    // Composite prefix (v) sorts below every (v, pk).
                    ChainKey::Val(crate::chain::CompositeKey::single(v.clone()))
                }
            }
        }
    }

    /// Does a record's column value fall inside the requested bounds?
    fn value_in_bounds(&self, v: &Value) -> bool {
        let lo_ok = match &self.lo {
            Bound::Unbounded => true,
            Bound::Included(l) => v >= l,
            Bound::Excluded(l) => v > l,
        };
        let hi_ok = match &self.hi {
            Bound::Unbounded => true,
            Bound::Included(h) => v <= h,
            Bound::Excluded(h) => v < h,
        };
        lo_ok && hi_ok
    }

    /// Is a pending chain key already past the upper bound? If so the walk
    /// may stop: the previous record's `nKey` (= this key) witnesses right
    /// coverage (condition 2).
    fn past_upper(&self, key: &ChainKey) -> bool {
        match key {
            ChainKey::PosInf => true,
            ChainKey::Val(k) => match &self.hi {
                Bound::Unbounded => false,
                Bound::Included(h) => k.head() > h,
                Bound::Excluded(h) => k.head() >= h,
            },
            _ => false,
        }
    }

    /// Resolve a chain key to its record via the untrusted index, with
    /// verification and benign-race retries.
    fn resolve(&mut self, key: &ChainKey) -> Result<StoredRecord> {
        let mut last_err = None;
        for attempt in 0..4 {
            if attempt > 0 {
                std::thread::yield_now();
            }
            let Some(addr) = self.table.index(self.chain).find_exact(key) else {
                last_err = Some(Error::TamperDetected(format!(
                    "range scan: chain {} is broken — the index cannot \
                     resolve nKey {key}; a record may have been omitted",
                    self.chain
                )));
                continue;
            };
            let rec = match self.table.read_record(addr) {
                Ok(r) => r,
                Err(Error::SlotNotFound { .. }) => {
                    last_err = Some(Error::TamperDetected(format!(
                        "range scan: index pointed {key} at a dead slot"
                    )));
                    continue;
                }
                Err(e) => return Err(e),
            };
            if rec.key(self.chain) != key {
                last_err = Some(Error::TamperDetected(format!(
                    "range scan: expected record keyed {key}, index returned \
                     one keyed {} (condition 3 violated)",
                    rec.key(self.chain)
                )));
                continue;
            }
            self.records_read += 1;
            return Ok(rec);
        }
        Err(last_err.expect("at least one attempt"))
    }

    /// Locate the starting record: the floor of the lower bound
    /// (condition 1).
    fn start(&mut self) -> Result<StoredRecord> {
        let q = self.lo_key();
        let mut last_err = None;
        for attempt in 0..4 {
            if attempt > 0 {
                std::thread::yield_now();
            }
            let Some(addr) = self.table.index(self.chain).find_floor(&q) else {
                last_err = Some(Error::TamperDetected(format!(
                    "range scan: index returned no floor for {q} (the ⊥ \
                     sentinel must always match)"
                )));
                continue;
            };
            let rec = match self.table.read_record(addr) {
                Ok(r) => r,
                Err(Error::SlotNotFound { .. }) => {
                    last_err = Some(Error::TamperDetected(
                        "range scan: floor candidate slot is dead".into(),
                    ));
                    continue;
                }
                Err(e) => return Err(e),
            };
            let key = rec.key(self.chain);
            if matches!(key, ChainKey::Absent) || key > &q {
                last_err = Some(Error::TamperDetected(format!(
                    "range scan: left end not covered — floor record keyed \
                     {key} exceeds the lower bound {q} (condition 1 violated)"
                )));
                continue;
            }
            self.records_read += 1;
            return Ok(rec);
        }
        Err(last_err.expect("at least one attempt"))
    }

    /// The record's column value, when it participates with a concrete key.
    fn record_value(&self, rec: &StoredRecord) -> Option<Value> {
        rec.key(self.chain).as_val().map(|k| k.head().clone())
    }
}

impl Iterator for VerifiedScan {
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        // Obtain the next record: either the starting floor or the chain
        // successor.
        loop {
            let rec = if !self.started {
                self.started = true;
                match self.start() {
                    Ok(r) => r,
                    Err(e) => {
                        self.done = true;
                        return Some(Err(e));
                    }
                }
            } else {
                let expected = self.expected.clone().expect("set after start");
                if self.past_upper(&expected) {
                    self.done = true;
                    return None;
                }
                match self.resolve(&expected) {
                    Ok(r) => r,
                    Err(e) => {
                        self.done = true;
                        return Some(Err(e));
                    }
                }
            };
            self.expected = Some(rec.nkey(self.chain).clone());
            if let Some(v) = self.record_value(&rec) {
                if self.value_in_bounds(&v) {
                    return Some(Ok(rec.row));
                }
            }
            // Evidence-only record (floor below the range, or a value
            // outside an excluded bound): keep walking.
            if self.past_upper(self.expected.as_ref().expect("just set")) {
                self.done = true;
                return None;
            }
        }
    }
}
