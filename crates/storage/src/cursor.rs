//! The verified range-scan cursor (§5.2 Range Scan, Figure 5).
//!
//! [`VerifiedScan`] walks a chain from the untrusted index's floor record
//! for the lower bound and verifies, incrementally, the three completeness
//! conditions of the paper:
//!
//! 1. the first record's key is `≤` the lower bound (left coverage),
//! 2. the walk only stops once the pending `nKey` exceeds the upper bound
//!    or reaches `⊤` (right coverage),
//! 3. each record's key equals its predecessor's `nKey` (gap-freedom).
//!
//! Any violation yields `Err(TamperDetected)` from the iterator. Records
//! outside the value bounds (the floor record, and the right-end witness)
//! are consumed for evidence but not emitted — exactly the `k2`/`k6`
//! records of the paper's Example 2.1/5.1.
//!
//! **Benign races**: a concurrent insert/delete can momentarily leave the
//! untrusted index out of sync with the chain (the cursor resolves an
//! `nKey` the splicer has not yet published, or one just removed). These
//! are indistinguishable from tampering *at that instant*, so the cursor
//! retries resolution a few times before raising the alarm; persistent
//! inconsistency is reported as tampering.

use crate::chain::ChainKey;
use crate::record::StoredRecord;
use crate::table::Table;
use std::collections::VecDeque;
use std::ops::Bound;
use std::sync::Arc;
use veridb_common::obs::Metrics;
use veridb_common::{Error, Result, Row, Value};
use veridb_wrcm::{DeltaHandle, ReadBatch, SlotId};

/// How many `(key, addr)` bindings the cursor prefetches from the
/// untrusted index per batched round.
const SCAN_BATCH: usize = 32;

/// An iterator of verified rows over one chain of one table.
pub struct VerifiedScan {
    table: Arc<Table>,
    chain: usize,
    lo: Bound<Value>,
    hi: Bound<Value>,
    /// Key the next record must carry (condition 3); `None` before start.
    expected: Option<ChainKey>,
    started: bool,
    done: bool,
    /// Records consumed (including evidence-only ones), for diagnostics.
    records_read: u64,
    /// Rows verified by the batched fast path, awaiting emission.
    ready: VecDeque<Row>,
    /// Reusable scratch for batched page reads (one flat buffer for the
    /// whole scan instead of a `Vec<u8>` per cell).
    scratch: ReadBatch,
    /// Rounds resolved through the batch path / through the per-record
    /// fallback (diagnostics for the batching benchmarks).
    batched_rounds: u64,
    /// Thread-local digest delta + timestamp block for the batched fast
    /// path, created lazily on the first batched round and merged back
    /// into partition state when the scan finishes (or is dropped). This
    /// is what keeps a worker's scan off the partition mutexes.
    delta: Option<DeltaHandle>,
}

impl VerifiedScan {
    pub(crate) fn new(table: Arc<Table>, chain: usize, lo: Bound<Value>, hi: Bound<Value>) -> Self {
        VerifiedScan {
            table,
            chain,
            lo,
            hi,
            expected: None,
            started: false,
            done: false,
            records_read: 0,
            ready: VecDeque::new(),
            scratch: ReadBatch::new(),
            batched_rounds: 0,
            delta: None,
        }
    }

    /// Number of records read from storage so far (evidence included).
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// Number of rounds served by the batched fast path (diagnostics).
    pub fn batched_rounds(&self) -> u64 {
        self.batched_rounds
    }

    fn met(&self) -> Option<&Metrics> {
        self.table.memory().metrics().map(|m| m.as_ref())
    }

    /// Collect all remaining rows, failing on the first alarm.
    pub fn collect_rows(self) -> Result<Vec<Row>> {
        self.collect()
    }

    /// The chain-key query point for the lower bound: the scan starts at
    /// the floor of this key.
    fn lo_key(&self) -> ChainKey {
        match &self.lo {
            Bound::Unbounded => ChainKey::NegInf,
            Bound::Included(v) | Bound::Excluded(v) => {
                if self.chain == 0 {
                    ChainKey::val(v.clone())
                } else {
                    // Composite prefix (v) sorts below every (v, pk).
                    ChainKey::Val(crate::chain::CompositeKey::single(v.clone()))
                }
            }
        }
    }

    /// Does a record's column value fall inside the requested bounds?
    fn value_in_bounds(&self, v: &Value) -> bool {
        let lo_ok = match &self.lo {
            Bound::Unbounded => true,
            Bound::Included(l) => v >= l,
            Bound::Excluded(l) => v > l,
        };
        let hi_ok = match &self.hi {
            Bound::Unbounded => true,
            Bound::Included(h) => v <= h,
            Bound::Excluded(h) => v < h,
        };
        lo_ok && hi_ok
    }

    /// Is a pending chain key already past the upper bound? If so the walk
    /// may stop: the previous record's `nKey` (= this key) witnesses right
    /// coverage (condition 2).
    fn past_upper(&self, key: &ChainKey) -> bool {
        match key {
            ChainKey::PosInf => true,
            ChainKey::Val(k) => match &self.hi {
                Bound::Unbounded => false,
                Bound::Included(h) => k.head() > h,
                Bound::Excluded(h) => k.head() >= h,
            },
            _ => false,
        }
    }

    /// Resolve a chain key to its record via the untrusted index, with
    /// verification and benign-race retries.
    fn resolve(&mut self, key: &ChainKey) -> Result<StoredRecord> {
        if let Some(m) = self.met() {
            m.scan_fallback_rounds.inc();
        }
        let mut last_err = None;
        let mut backoff = crate::backoff::Backoff::new();
        for attempt in 0..crate::backoff::RETRY_ATTEMPTS {
            if attempt > 0 {
                if let Some(m) = self.met() {
                    m.scan_benign_retries.inc();
                }
                backoff.wait();
            }
            let Some(addr) = self.table.index(self.chain).find_exact(key) else {
                last_err = Some(Error::TamperDetected(format!(
                    "range scan: chain {} is broken — the index cannot \
                     resolve nKey {key}; a record may have been omitted",
                    self.chain
                )));
                continue;
            };
            let rec = match self.table.read_record(addr) {
                Ok(r) => r,
                Err(Error::SlotNotFound { .. }) => {
                    last_err = Some(Error::TamperDetected(format!(
                        "range scan: index pointed {key} at a dead slot"
                    )));
                    continue;
                }
                Err(e) => return Err(e),
            };
            if rec.key(self.chain) != key {
                last_err = Some(Error::TamperDetected(format!(
                    "range scan: expected record keyed {key}, index returned \
                     one keyed {} (condition 3 violated)",
                    rec.key(self.chain)
                )));
                continue;
            }
            self.records_read += 1;
            return Ok(rec);
        }
        Err(last_err.expect("at least one attempt"))
    }

    /// Locate the starting record: the floor of the lower bound
    /// (condition 1).
    fn start(&mut self) -> Result<StoredRecord> {
        let q = self.lo_key();
        let mut last_err = None;
        let mut backoff = crate::backoff::Backoff::new();
        for attempt in 0..crate::backoff::RETRY_ATTEMPTS {
            if attempt > 0 {
                if let Some(m) = self.met() {
                    m.scan_benign_retries.inc();
                }
                backoff.wait();
            }
            let Some(addr) = self.table.index(self.chain).find_floor(&q) else {
                last_err = Some(Error::TamperDetected(format!(
                    "range scan: index returned no floor for {q} (the ⊥ \
                     sentinel must always match)"
                )));
                continue;
            };
            let rec = match self.table.read_record(addr) {
                Ok(r) => r,
                Err(Error::SlotNotFound { .. }) => {
                    last_err = Some(Error::TamperDetected(
                        "range scan: floor candidate slot is dead".into(),
                    ));
                    continue;
                }
                Err(e) => return Err(e),
            };
            let key = rec.key(self.chain);
            if matches!(key, ChainKey::Absent) || key > &q {
                last_err = Some(Error::TamperDetected(format!(
                    "range scan: left end not covered — floor record keyed \
                     {key} exceeds the lower bound {q} (condition 1 violated)"
                )));
                continue;
            }
            self.records_read += 1;
            return Ok(rec);
        }
        Err(last_err.expect("at least one attempt"))
    }

    /// The record's column value, when it participates with a concrete key.
    fn record_value(&self, rec: &StoredRecord) -> Option<Value> {
        rec.key(self.chain).as_val().map(|k| k.head().clone())
    }

    /// Batched fast path: ask the untrusted index for the next run of
    /// `(key, addr)` bindings, read the candidate cells page by page with
    /// one verified batch each ([`veridb_wrcm::VerifiedMemory::read_page_batch`]),
    /// then re-verify the chain conditions record by record. Soundness is
    /// unchanged: every emitted row still satisfies conditions 1–3 from
    /// the same `⟨key, nKey⟩` evidence, and the extra verified reads a
    /// stale hint causes are digest-neutral. Any divergence — a lying
    /// index, a concurrent splice, a dead slot — truncates the verified
    /// prefix without raising an alarm; the per-record path resumes from
    /// the last verified position and performs its own retry/alarm logic.
    fn try_fill_ready(&mut self, expected0: &ChainKey) -> Result<()> {
        let cands = self
            .table
            .index(self.chain)
            .next_entries(expected0, SCAN_BATCH);
        // The run is only usable if it starts exactly at the key the chain
        // evidence demands next.
        if cands.len() < 2 || &cands[0].0 != expected0 {
            return Ok(());
        }
        // Keys past the upper bound need not be read: the predecessor's
        // nKey witnesses right coverage (condition 2).
        let n = cands
            .iter()
            .position(|(k, _)| self.past_upper(k))
            .unwrap_or(cands.len());
        let cands = &cands[..n];
        if cands.len() < 2 {
            return Ok(());
        }

        // One verified batch read per distinct page, request order
        // preserved within each page.
        let mut recs: Vec<Option<StoredRecord>> = Vec::with_capacity(cands.len());
        recs.resize_with(cands.len(), || None);
        let mut by_page: Vec<(u64, Vec<usize>)> = Vec::new();
        for (i, (_, addr)) in cands.iter().enumerate() {
            match by_page.iter_mut().find(|(p, _)| *p == addr.page) {
                Some((_, idxs)) => idxs.push(i),
                None => by_page.push((addr.page, vec![i])),
            }
        }
        let mem = Arc::clone(self.table.memory());
        for (page, idxs) in &by_page {
            let slots: Vec<SlotId> = idxs.iter().map(|&i| cands[i].1.slot).collect();
            let delta = self.delta.get_or_insert_with(|| mem.delta_handle());
            if mem
                .read_page_batch_delta(*page, &slots, &mut self.scratch, delta)
                .is_err()
            {
                continue; // stale page hint: those candidates stay None
            }
            // Entries come back in request order with dead slots skipped;
            // align them against the request by slot id.
            let mut p = 0;
            for (&i, &slot) in idxs.iter().zip(&slots) {
                match self.scratch.get(p) {
                    Some((got, bytes)) if got == slot => {
                        p += 1;
                        // A decode failure here is indistinguishable from a
                        // concurrent splice reusing the slot mid-batch, so
                        // it must NOT alarm: leave the candidate None — the
                        // chain walk below truncates the verified prefix at
                        // it and the per-record path retries (and raises
                        // the alarm itself if the damage persists).
                        if let Ok(rec) = StoredRecord::decode(bytes) {
                            recs[i] = Some(rec);
                        }
                    }
                    _ => {} // dead slot: leave None for the fallback
                }
            }
        }

        // Walk the verified prefix: each record must carry the key the
        // previous record's nKey announced (condition 3).
        let mut expected = expected0.clone();
        let mut verified = 0u64;
        for (i, (key, _)) in cands.iter().enumerate() {
            if *key != expected {
                break; // index enumeration diverges from the chain
            }
            let Some(rec) = recs[i].take() else { break };
            if rec.key(self.chain) != &expected {
                break; // stale binding: record moved or was replaced
            }
            self.records_read += 1;
            verified += 1;
            expected = rec.nkey(self.chain).clone();
            self.expected = Some(expected.clone());
            if let Some(v) = self.record_value(&rec) {
                if self.value_in_bounds(&v) {
                    self.ready.push_back(rec.row);
                }
            }
            if self.past_upper(&expected) {
                break;
            }
        }
        if verified > 0 {
            self.batched_rounds += 1;
            if let Some(m) = self.met() {
                m.scan_batched_rounds.inc();
            }
        }
        Ok(())
    }

    /// End the scan: pending delta folds merge back into partition state
    /// now instead of waiting for the cursor itself to be dropped.
    fn finish(&mut self) {
        self.done = true;
        self.delta = None; // DeltaHandle::drop merges the remainder
    }
}

impl Iterator for VerifiedScan {
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            self.delta = None;
            return None;
        }
        // Obtain the next record: either the starting floor or the chain
        // successor — by the batched fast path when the index can feed it,
        // record by record otherwise.
        loop {
            if let Some(row) = self.ready.pop_front() {
                return Some(Ok(row));
            }
            let rec = if !self.started {
                self.started = true;
                match self.start() {
                    Ok(r) => r,
                    Err(e) => {
                        self.finish();
                        return Some(Err(e));
                    }
                }
            } else {
                let expected = self.expected.clone().expect("set after start");
                if self.past_upper(&expected) {
                    self.finish();
                    return None;
                }
                if let Err(e) = self.try_fill_ready(&expected) {
                    self.finish();
                    return Some(Err(e));
                }
                if !self.ready.is_empty() || self.expected.as_ref() != Some(&expected) {
                    // The batch produced rows and/or advanced the cursor
                    // (possibly over evidence-only records); re-enter.
                    continue;
                }
                match self.resolve(&expected) {
                    Ok(r) => r,
                    Err(e) => {
                        self.finish();
                        return Some(Err(e));
                    }
                }
            };
            self.expected = Some(rec.nkey(self.chain).clone());
            if let Some(v) = self.record_value(&rec) {
                if self.value_in_bounds(&v) {
                    return Some(Ok(rec.row));
                }
            }
            // Evidence-only record (floor below the range, or a value
            // outside an excluded bound): keep walking.
            if self.past_upper(self.expected.as_ref().expect("just set")) {
                self.finish();
                return None;
            }
        }
    }
}
