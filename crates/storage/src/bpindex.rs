//! A from-scratch B⁺-tree implementation of the untrusted index.
//!
//! The paper stores per-chain indexes in untrusted memory and lets the
//! host organize them however it likes (§5.2: "the index does not need to
//! be verifiable"). [`ChainIndex`](crate::index::ChainIndex) wraps a
//! standard-library `BTreeMap`; this module provides a real paged B⁺-tree
//! with node splits and linked leaves — the data structure a production
//! host would actually run — demonstrating that the verification story is
//! indifferent to the index implementation (the `IndexOracle` answers are
//! checked against chain evidence either way).
//!
//! Deletes are lazy (no rebalancing): tombstone-free removal from leaves
//! keeps the tree correct, merely unbalanced under heavy deletion, which
//! is a common production tradeoff and irrelevant to correctness here.

use crate::chain::ChainKey;
use crate::index::IndexOracle;
use parking_lot::RwLock;
use veridb_wrcm::CellAddr;

const ORDER: usize = 32; // max keys per node

#[derive(Debug)]
enum Node {
    Leaf {
        keys: Vec<ChainKey>,
        vals: Vec<CellAddr>,
        prev: Option<usize>,
        next: Option<usize>,
    },
    Internal {
        /// Separators: child `i` holds keys `< keys[i]`; child `i+1`
        /// holds keys `>= keys[i]`.
        keys: Vec<ChainKey>,
        children: Vec<usize>,
    },
}

#[derive(Debug)]
struct Bp {
    arena: Vec<Node>,
    root: usize,
    len: usize,
}

/// A B⁺-tree index over chain keys (untrusted, like every index here).
#[derive(Debug)]
pub struct BPlusIndex {
    inner: RwLock<Bp>,
}

impl Default for BPlusIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl BPlusIndex {
    /// Empty index.
    pub fn new() -> Self {
        BPlusIndex {
            inner: RwLock::new(Bp {
                arena: vec![Node::Leaf {
                    keys: Vec::new(),
                    vals: Vec::new(),
                    prev: None,
                    next: None,
                }],
                root: 0,
                len: 0,
            }),
        }
    }

    /// Tree height (diagnostics).
    pub fn height(&self) -> usize {
        let t = self.inner.read();
        let mut h = 1;
        let mut n = t.root;
        loop {
            match &t.arena[n] {
                Node::Leaf { .. } => return h,
                Node::Internal { children, .. } => {
                    n = children[0];
                    h += 1;
                }
            }
        }
    }
}

impl Bp {
    /// Leaf that should contain `key`, with the path of (node, child idx).
    fn descend(&self, key: &ChainKey) -> (usize, Vec<(usize, usize)>) {
        let mut path = Vec::new();
        let mut n = self.root;
        loop {
            match &self.arena[n] {
                Node::Leaf { .. } => return (n, path),
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| key >= k);
                    path.push((n, idx));
                    n = children[idx];
                }
            }
        }
    }

    fn split_leaf(&mut self, leaf: usize) -> (ChainKey, usize) {
        let new_id = self.arena.len();
        let (sep, new_node, old_next) = {
            let Node::Leaf {
                keys, vals, next, ..
            } = &mut self.arena[leaf]
            else {
                unreachable!()
            };
            let mid = keys.len() / 2;
            let rk: Vec<ChainKey> = keys.split_off(mid);
            let rv: Vec<CellAddr> = vals.split_off(mid);
            let sep = rk[0].clone();
            let old_next = *next;
            *next = Some(new_id);
            (
                sep,
                Node::Leaf {
                    keys: rk,
                    vals: rv,
                    prev: Some(leaf),
                    next: old_next,
                },
                old_next,
            )
        };
        self.arena.push(new_node);
        if let Some(nn) = old_next {
            if let Node::Leaf { prev, .. } = &mut self.arena[nn] {
                *prev = Some(new_id);
            }
        }
        (sep, new_id)
    }

    fn split_internal(&mut self, node: usize) -> (ChainKey, usize) {
        let new_id = self.arena.len();
        let (sep, new_node) = {
            let Node::Internal { keys, children } = &mut self.arena[node] else {
                unreachable!()
            };
            let mid = keys.len() / 2;
            let sep = keys[mid].clone();
            let rk: Vec<ChainKey> = keys.split_off(mid + 1);
            keys.pop(); // the separator moves up
            let rc: Vec<usize> = children.split_off(mid + 1);
            (
                sep,
                Node::Internal {
                    keys: rk,
                    children: rc,
                },
            )
        };
        self.arena.push(new_node);
        (sep, new_id)
    }

    fn insert(&mut self, key: ChainKey, val: CellAddr) {
        let (leaf, path) = self.descend(&key);
        {
            let Node::Leaf { keys, vals, .. } = &mut self.arena[leaf] else {
                unreachable!()
            };
            match keys.binary_search(&key) {
                Ok(i) => {
                    vals[i] = val; // upsert
                    return;
                }
                Err(i) => {
                    keys.insert(i, key);
                    vals.insert(i, val);
                    self.len += 1;
                }
            }
        }
        // Split upward along the path.
        let mut child = leaf;
        let mut overflow: Option<(ChainKey, usize)> = {
            let full = match &self.arena[leaf] {
                Node::Leaf { keys, .. } => keys.len() > ORDER,
                _ => unreachable!(),
            };
            full.then(|| self.split_leaf(leaf))
        };
        for &(parent, idx) in path.iter().rev() {
            let Some((sep, right)) = overflow.take() else {
                break;
            };
            {
                let Node::Internal { keys, children } = &mut self.arena[parent] else {
                    unreachable!()
                };
                keys.insert(idx, sep);
                children.insert(idx + 1, right);
            }
            child = parent;
            let full = match &self.arena[parent] {
                Node::Internal { children, .. } => children.len() > ORDER + 1,
                _ => unreachable!(),
            };
            overflow = full.then(|| self.split_internal(parent));
        }
        if let Some((sep, right)) = overflow {
            // The root itself split.
            let left = child;
            self.arena.push(Node::Internal {
                keys: vec![sep],
                children: vec![left, right],
            });
            self.root = self.arena.len() - 1;
        }
    }

    fn remove(&mut self, key: &ChainKey) {
        let (leaf, _) = self.descend(key);
        let Node::Leaf { keys, vals, .. } = &mut self.arena[leaf] else {
            unreachable!()
        };
        if let Ok(i) = keys.binary_search(key) {
            keys.remove(i);
            vals.remove(i);
            self.len -= 1;
        }
    }

    fn find_exact(&self, key: &ChainKey) -> Option<CellAddr> {
        let (leaf, _) = self.descend(key);
        let Node::Leaf { keys, vals, .. } = &self.arena[leaf] else {
            unreachable!()
        };
        keys.binary_search(key).ok().map(|i| vals[i])
    }

    /// Up to `limit` entries with key `>= from`, ascending, following the
    /// linked leaves.
    fn entries_from(&self, from: &ChainKey, limit: usize) -> Vec<(ChainKey, CellAddr)> {
        let mut out = Vec::with_capacity(limit);
        let (mut leaf, _) = self.descend(from);
        loop {
            let Node::Leaf {
                keys, vals, next, ..
            } = &self.arena[leaf]
            else {
                unreachable!()
            };
            for (k, v) in keys.iter().zip(vals) {
                if out.len() >= limit {
                    return out;
                }
                if k >= from {
                    out.push((k.clone(), *v));
                }
            }
            match next {
                Some(n) => leaf = *n,
                None => return out,
            }
        }
    }

    /// Largest entry `<= key` (or `< key` when `strict`).
    fn find_at_most(&self, key: &ChainKey, strict: bool) -> Option<CellAddr> {
        let (mut leaf, _) = self.descend(key);
        loop {
            let Node::Leaf {
                keys, vals, prev, ..
            } = &self.arena[leaf]
            else {
                unreachable!()
            };
            let idx = if strict {
                keys.partition_point(|k| k < key)
            } else {
                keys.partition_point(|k| k <= key)
            };
            if idx > 0 {
                return Some(vals[idx - 1]);
            }
            // Everything in this leaf is >= (or >) key: step left.
            match prev {
                Some(p) => leaf = *p,
                None => return None,
            }
        }
    }
}

impl IndexOracle for BPlusIndex {
    fn find_floor(&self, key: &ChainKey) -> Option<CellAddr> {
        self.inner.read().find_at_most(key, false)
    }

    fn find_below(&self, key: &ChainKey) -> Option<CellAddr> {
        self.inner.read().find_at_most(key, true)
    }

    fn find_exact(&self, key: &ChainKey) -> Option<CellAddr> {
        self.inner.read().find_exact(key)
    }

    fn upsert(&self, key: ChainKey, addr: CellAddr) {
        self.inner.write().insert(key, addr);
    }

    fn remove(&self, key: &ChainKey) {
        self.inner.write().remove(key);
    }

    fn len(&self) -> usize {
        self.inner.read().len
    }

    fn next_entries(&self, from: &ChainKey, limit: usize) -> Vec<(ChainKey, CellAddr)> {
        self.inner.read().entries_from(from, limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridb_common::Value;

    fn k(v: i64) -> ChainKey {
        ChainKey::val(Value::Int(v))
    }

    fn addr(n: u64) -> CellAddr {
        CellAddr {
            page: n,
            slot: (n % 7) as u16,
        }
    }

    #[test]
    fn basic_crud_and_lookups() {
        let idx = BPlusIndex::new();
        assert!(idx.is_empty());
        idx.upsert(ChainKey::NegInf, addr(0));
        for i in 0..200 {
            idx.upsert(k(i * 2), addr(i as u64 + 1));
        }
        assert_eq!(idx.len(), 201);
        assert!(idx.height() > 1, "200 keys must split the root");
        assert_eq!(idx.find_exact(&k(100)), Some(addr(51)));
        assert_eq!(idx.find_exact(&k(101)), None);
        assert_eq!(idx.find_floor(&k(101)), Some(addr(51)));
        assert_eq!(idx.find_floor(&k(100)), Some(addr(51)));
        assert_eq!(idx.find_below(&k(100)), Some(addr(50)));
        assert_eq!(idx.find_floor(&k(-5)), Some(addr(0)), "sentinel floor");
        assert_eq!(idx.find_below(&ChainKey::NegInf), None);
        idx.remove(&k(100));
        assert_eq!(idx.find_exact(&k(100)), None);
        assert_eq!(idx.find_floor(&k(100)), Some(addr(50)));
        assert_eq!(idx.len(), 200);
    }

    #[test]
    fn upsert_overwrites() {
        let idx = BPlusIndex::new();
        idx.upsert(k(1), addr(1));
        idx.upsert(k(1), addr(99));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.find_exact(&k(1)), Some(addr(99)));
    }

    #[test]
    fn matches_chain_index_on_random_workload() {
        use crate::index::ChainIndex;
        let bp = BPlusIndex::new();
        let bt = ChainIndex::new();
        let mut state = 0x1234_5678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..5_000 {
            let r = next();
            let key = k((r % 997) as i64);
            match r % 10 {
                0..=5 => {
                    let a = addr(r % 1000);
                    bp.upsert(key.clone(), a);
                    bt.upsert(key, a);
                }
                6..=7 => {
                    bp.remove(&key);
                    bt.remove(&key);
                }
                _ => {
                    assert_eq!(bp.find_exact(&key), bt.find_exact(&key));
                    assert_eq!(bp.find_floor(&key), bt.find_floor(&key));
                    assert_eq!(bp.find_below(&key), bt.find_below(&key));
                }
            }
        }
        assert_eq!(bp.len(), bt.len());
    }
}
