//! The table catalog.
//!
//! Maps table names to [`Table`]s. The catalog itself is enclave-resident
//! state (schemas are part of what the query compiler must trust, §3.3),
//! so it lives behind the verified memory's enclave and is only mutated
//! through the protected DDL path.

use crate::index::IndexOracle;
use crate::table::Table;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use veridb_common::{Error, Result, Schema};
use veridb_wrcm::VerifiedMemory;

/// A name → table registry bound to one verified memory.
pub struct Catalog {
    mem: Arc<VerifiedMemory>,
    tables: RwLock<HashMap<String, Arc<Table>>>,
}

impl Catalog {
    /// Empty catalog over `mem`.
    pub fn new(mem: Arc<VerifiedMemory>) -> Self {
        Catalog {
            mem,
            tables: RwLock::new(HashMap::new()),
        }
    }

    /// The verified memory backing this catalog's tables.
    pub fn memory(&self) -> &Arc<VerifiedMemory> {
        &self.mem
    }

    /// Create a table. Fails if the name is taken.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<Arc<Table>> {
        let lname = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&lname) {
            return Err(Error::TableExists(name.to_owned()));
        }
        let table = Table::create(Arc::clone(&self.mem), &lname, schema)?;
        tables.insert(lname, Arc::clone(&table));
        Ok(table)
    }

    /// Create a table with caller-provided (possibly malicious, for attack
    /// tests) index oracles.
    pub fn create_table_with_indexes(
        &self,
        name: &str,
        schema: Schema,
        indexes: Vec<Box<dyn IndexOracle>>,
    ) -> Result<Arc<Table>> {
        let lname = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&lname) {
            return Err(Error::TableExists(name.to_owned()));
        }
        let table = Table::create_with_indexes(Arc::clone(&self.mem), &lname, schema, indexes)?;
        tables.insert(lname, Arc::clone(&table));
        Ok(table)
    }

    /// Look up a table by (case-insensitive) name.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| Error::TableNotFound(name.to_owned()))
    }

    /// All table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Drop a table (its pages remain registered with the memory; record
    /// cells are deleted so digests stay balanced).
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let lname = name.to_ascii_lowercase();
        let table = self
            .tables
            .write()
            .remove(&lname)
            .ok_or_else(|| Error::TableNotFound(name.to_owned()))?;
        // Delete every row through the verified path so RS/WS stay
        // balanced; the sentinels stay behind as tombstoned history.
        let rows: Vec<_> = table.seq_scan().collect_rows()?;
        let pk_col = table.schema().primary_key();
        for row in rows {
            table.delete(&row[pk_col])?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Catalog")
            .field("tables", &self.table_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridb_common::{ColumnDef, ColumnType, Row, Value, VeriDbConfig};
    use veridb_enclave::Enclave;

    fn catalog() -> Catalog {
        let enclave = Enclave::create("catalog-test", 1 << 22, [5u8; 32]);
        let mem = VerifiedMemory::from_config(enclave, &VeriDbConfig::default());
        Catalog::new(mem)
    }

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("id", ColumnType::Int),
            ColumnDef::new("name", ColumnType::Str),
        ])
        .unwrap()
    }

    #[test]
    fn create_lookup_and_duplicate() {
        let c = catalog();
        c.create_table("users", schema()).unwrap();
        assert!(c.table("users").is_ok());
        assert!(c.table("USERS").is_ok(), "names are case-insensitive");
        assert!(matches!(
            c.create_table("Users", schema()),
            Err(Error::TableExists(_))
        ));
        assert!(matches!(c.table("ghost"), Err(Error::TableNotFound(_))));
        assert_eq!(c.table_names(), vec!["users".to_string()]);
    }

    #[test]
    fn drop_table_deletes_rows_and_verifies() {
        let c = catalog();
        let t = c.create_table("t", schema()).unwrap();
        for i in 0..10 {
            t.insert(Row::new(vec![Value::Int(i), Value::Str(format!("u{i}"))]))
                .unwrap();
        }
        c.drop_table("t").unwrap();
        assert!(c.table("t").is_err());
        c.memory().verify_now().unwrap();
    }
}
