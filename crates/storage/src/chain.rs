//! Chain keys: the ordered key space of a `⟨key, nKey⟩` chain.
//!
//! A chain's key space is the column's value domain extended with the two
//! sentinels `⊥` (below everything) and `⊤` (above everything) from
//! Definition 4.2. Secondary chains additionally need *unique* keys even
//! when column values repeat — the paper's chains assume distinct keys —
//! so a secondary chain key is the composite `(column value, primary key)`
//! ordered lexicographically. A range predicate `[lo, hi]` on the column
//! translates to the composite range `[(lo), ((hi, ⊤))]` using the
//! prefix-is-smaller comparison implemented here.

use std::cmp::Ordering;
use veridb_common::codec::Reader;
use veridb_common::{Error, Result, Value};

/// A (possibly composite) concrete chain key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CompositeKey(pub Vec<Value>);

impl CompositeKey {
    /// Single-component key.
    pub fn single(v: Value) -> Self {
        CompositeKey(vec![v])
    }

    /// Two-component key (secondary chains: `(column value, primary key)`).
    pub fn pair(v: Value, pk: Value) -> Self {
        CompositeKey(vec![v, pk])
    }

    /// The leading component (the column value).
    pub fn head(&self) -> &Value {
        &self.0[0]
    }
}

impl PartialOrd for CompositeKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CompositeKey {
    /// Lexicographic, with a strict prefix ordering *before* any extension:
    /// `(5) < (5, anything)`. This makes `(lo)` a lower bound for every
    /// record whose column value is `lo`.
    fn cmp(&self, other: &Self) -> Ordering {
        for (a, b) in self.0.iter().zip(other.0.iter()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        self.0.len().cmp(&other.0.len())
    }
}

impl std::fmt::Display for CompositeKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.len() == 1 {
            write!(f, "{}", self.0[0])
        } else {
            write!(f, "(")?;
            for (i, v) in self.0.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, ")")
        }
    }
}

/// A point in a chain's extended key space.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ChainKey {
    /// This record does not participate in the chain (the `−` dashes of
    /// Figure 6: a sentinel of one chain is absent from the others).
    Absent,
    /// `⊥`: below every concrete key.
    NegInf,
    /// A concrete key.
    Val(CompositeKey),
    /// `⊤`: above every concrete key.
    PosInf,
}

impl ChainKey {
    /// A single-value key.
    pub fn val(v: Value) -> Self {
        ChainKey::Val(CompositeKey::single(v))
    }

    /// A `(column value, primary key)` composite.
    pub fn pair(v: Value, pk: Value) -> Self {
        ChainKey::Val(CompositeKey::pair(v, pk))
    }

    /// The concrete composite, if any.
    pub fn as_val(&self) -> Option<&CompositeKey> {
        match self {
            ChainKey::Val(k) => Some(k),
            _ => None,
        }
    }

    /// True for `⊥`.
    pub fn is_neg_inf(&self) -> bool {
        matches!(self, ChainKey::NegInf)
    }

    /// True for `⊤`.
    pub fn is_pos_inf(&self) -> bool {
        matches!(self, ChainKey::PosInf)
    }

    /// True for a concrete key.
    pub fn is_val(&self) -> bool {
        matches!(self, ChainKey::Val(_))
    }

    fn rank(&self) -> u8 {
        match self {
            ChainKey::Absent => 0, // never ordered against others in practice
            ChainKey::NegInf => 1,
            ChainKey::Val(_) => 2,
            ChainKey::PosInf => 3,
        }
    }

    /// Canonical encoding.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ChainKey::Absent => buf.push(0),
            ChainKey::NegInf => buf.push(1),
            ChainKey::Val(k) => {
                buf.push(2);
                buf.push(k.0.len() as u8);
                for v in &k.0 {
                    v.encode(buf);
                }
            }
            ChainKey::PosInf => buf.push(3),
        }
    }

    /// Decode one chain key.
    pub fn decode(r: &mut Reader<'_>) -> Result<ChainKey> {
        match r.get_u8()? {
            0 => Ok(ChainKey::Absent),
            1 => Ok(ChainKey::NegInf),
            2 => {
                let n = r.get_u8()? as usize;
                if n == 0 || n > 8 {
                    return Err(Error::Codec(format!("bad composite arity {n}")));
                }
                let mut vs = Vec::with_capacity(n);
                for _ in 0..n {
                    vs.push(Value::decode(r)?);
                }
                Ok(ChainKey::Val(CompositeKey(vs)))
            }
            3 => Ok(ChainKey::PosInf),
            t => Err(Error::Codec(format!("unknown chain key tag {t}"))),
        }
    }
}

impl PartialOrd for ChainKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ChainKey {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (ChainKey::Val(a), ChainKey::Val(b)) => a.cmp(b),
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl std::fmt::Display for ChainKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainKey::Absent => write!(f, "−"),
            ChainKey::NegInf => write!(f, "⊥"),
            ChainKey::Val(k) => write!(f, "{k}"),
            ChainKey::PosInf => write!(f, "⊤"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinel_ordering() {
        let k = ChainKey::val(Value::Int(0));
        assert!(ChainKey::NegInf < k);
        assert!(k < ChainKey::PosInf);
        assert!(ChainKey::NegInf < ChainKey::PosInf);
    }

    #[test]
    fn prefix_sorts_before_extension() {
        let lo = CompositeKey::single(Value::Int(5));
        let rec = CompositeKey::pair(Value::Int(5), Value::Int(1));
        assert!(lo < rec);
        let hi = CompositeKey::pair(Value::Int(5), Value::Int(i64::MAX));
        assert!(rec < hi);
        // and a smaller column value sorts wholly below
        let below = CompositeKey::pair(Value::Int(4), Value::Int(999));
        assert!(below < lo);
    }

    #[test]
    fn encode_decode_round_trip() {
        let keys = vec![
            ChainKey::Absent,
            ChainKey::NegInf,
            ChainKey::PosInf,
            ChainKey::val(Value::Int(42)),
            ChainKey::pair(Value::Str("abc".into()), Value::Int(7)),
        ];
        for k in keys {
            let mut buf = Vec::new();
            k.encode(&mut buf);
            let mut r = Reader::new(&buf);
            assert_eq!(ChainKey::decode(&mut r).unwrap(), k);
        }
    }

    #[test]
    fn decode_rejects_bad_arity_and_tag() {
        let mut r = Reader::new(&[2u8, 0]);
        assert!(ChainKey::decode(&mut r).is_err());
        let mut r = Reader::new(&[9u8]);
        assert!(ChainKey::decode(&mut r).is_err());
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(ChainKey::NegInf.to_string(), "⊥");
        assert_eq!(ChainKey::PosInf.to_string(), "⊤");
        assert_eq!(ChainKey::Absent.to_string(), "−");
        assert_eq!(ChainKey::val(Value::Int(3)).to_string(), "3");
    }
}
