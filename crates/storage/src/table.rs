//! Verified relational tables over write-read consistent memory.
//!
//! A [`Table`] owns:
//!
//! - a set of untrusted pages in the [`VerifiedMemory`] holding its
//!   [`StoredRecord`]s,
//! - one untrusted [`IndexOracle`] per chained column, mapping chain keys
//!   to `(page, slot)` addresses,
//! - the chain bookkeeping of Definitions 4.2/5.2: per-chain sentinels and
//!   the `nKey` splicing performed by every insert and delete (Figure 6's
//!   worked example is a unit test below).
//!
//! Writers (insert/delete/update) are serialized per table by a structural
//! lock, so chain splices are atomic with respect to each other; readers
//! never take it — their safety comes from the evidence checks, with a
//! small retry loop absorbing the benign races documented on
//! [`crate::cursor::VerifiedScan`].

use crate::chain::ChainKey;
use crate::cursor::VerifiedScan;
use crate::evidence::{check_point, PointResult};
use crate::index::{ChainIndex, IndexOracle};
use crate::record::StoredRecord;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use veridb_common::{Error, Result, Row, Schema, Value};
use veridb_wrcm::{CellAddr, VerifiedMemory};

/// A verified relational table.
pub struct Table {
    name: String,
    schema: Schema,
    /// Schema column index of each chain (chain 0 is the primary key).
    chain_cols: Vec<usize>,
    mem: Arc<VerifiedMemory>,
    /// One untrusted index per chain.
    indexes: Vec<Box<dyn IndexOracle>>,
    /// Pages owned by this table (untrusted allocation hint).
    pages: Mutex<Vec<u64>>,
    /// Serializes structural writes (chain splices).
    write_lock: Mutex<()>,
    row_count: AtomicU64,
}

impl Table {
    /// Create a table with honest untrusted indexes.
    pub fn create(mem: Arc<VerifiedMemory>, name: &str, schema: Schema) -> Result<Arc<Table>> {
        let chains = schema.chained_columns();
        let indexes = chains
            .iter()
            .map(|_| Box::new(ChainIndex::new()) as Box<dyn IndexOracle>)
            .collect();
        Self::create_with_indexes(mem, name, schema, indexes)
    }

    /// Create a table whose untrusted indexes are from-scratch B⁺-trees
    /// ([`crate::bpindex::BPlusIndex`]) instead of `BTreeMap`s. The
    /// verification story is identical — the oracle is untrusted either way.
    pub fn create_with_bplus(
        mem: Arc<VerifiedMemory>,
        name: &str,
        schema: Schema,
    ) -> Result<Arc<Table>> {
        let chains = schema.chained_columns();
        let indexes = chains
            .iter()
            .map(|_| Box::new(crate::bpindex::BPlusIndex::new()) as Box<dyn IndexOracle>)
            .collect();
        Self::create_with_indexes(mem, name, schema, indexes)
    }

    /// Create a table with caller-provided index oracles (attack tests
    /// inject [`crate::index::MaliciousIndex`] here).
    pub fn create_with_indexes(
        mem: Arc<VerifiedMemory>,
        name: &str,
        schema: Schema,
        indexes: Vec<Box<dyn IndexOracle>>,
    ) -> Result<Arc<Table>> {
        let chain_cols = schema.chained_columns();
        if indexes.len() != chain_cols.len() {
            return Err(Error::Config(format!(
                "{} indexes supplied for {} chains",
                indexes.len(),
                chain_cols.len()
            )));
        }
        let table = Table {
            name: name.to_owned(),
            schema,
            chain_cols,
            mem,
            indexes,
            pages: Mutex::new(Vec::new()),
            write_lock: Mutex::new(()),
            row_count: AtomicU64::new(0),
        };
        // Materialize the per-chain sentinels ⟨⊥, ⊤, −⟩ (Figure 6a).
        for chain in 0..table.chain_cols.len() {
            let sentinel = StoredRecord::sentinel(chain, table.chain_cols.len());
            let addr = table.alloc_record(&sentinel.encode_to_vec())?;
            table.indexes[chain].upsert(ChainKey::NegInf, addr);
        }
        Ok(Arc::new(table))
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live rows.
    pub fn row_count(&self) -> u64 {
        self.row_count.load(Ordering::Relaxed)
    }

    /// Number of chains (≥ 1; chain 0 is the primary key).
    pub fn chain_count(&self) -> usize {
        self.chain_cols.len()
    }

    /// The chain over schema column `col`, if one exists.
    pub fn chain_for_column(&self, col: usize) -> Option<usize> {
        self.chain_cols.iter().position(|&c| c == col)
    }

    /// Schema column carrying chain `chain`.
    pub fn column_of_chain(&self, chain: usize) -> usize {
        self.chain_cols[chain]
    }

    /// The verified memory this table lives in.
    pub fn memory(&self) -> &Arc<VerifiedMemory> {
        &self.mem
    }

    /// The untrusted index of a chain (used by cursors).
    pub(crate) fn index(&self, chain: usize) -> &dyn IndexOracle {
        self.indexes[chain].as_ref()
    }

    /// Pages owned by the table (diagnostics / benches).
    pub fn page_ids(&self) -> Vec<u64> {
        self.pages.lock().clone()
    }

    // ---- record plumbing ---------------------------------------------------

    /// The chain key of `row` in chain `chain`.
    pub fn chain_key(&self, chain: usize, row: &Row) -> ChainKey {
        let col = self.chain_cols[chain];
        let v = row[col].clone();
        if chain == 0 {
            ChainKey::val(v)
        } else {
            let pk = row[self.chain_cols[0]].clone();
            ChainKey::pair(v, pk)
        }
    }

    /// Allocate space for an encoded record, growing the page set on
    /// demand. Tries the most recently used pages first.
    fn alloc_record(&self, bytes: &[u8]) -> Result<CellAddr> {
        let mut pages = self.pages.lock();
        for &pid in pages.iter().rev().take(4) {
            match self.mem.insert_in(pid, bytes) {
                Ok(addr) => return Ok(addr),
                Err(Error::PageFull { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
        let pid = self.mem.allocate_page();
        pages.push(pid);
        self.mem.insert_in(pid, bytes)
    }

    /// Read and decode the record at `addr` through the verified memory.
    ///
    /// A decode failure is classified as tampering: the enclave only ever
    /// writes well-formed records, so malformed bytes on the verified read
    /// path mean the host modified memory (the deferred scan will confirm
    /// with `VerificationFailed`, but the alarm is raisable immediately).
    pub(crate) fn read_record(&self, addr: CellAddr) -> Result<StoredRecord> {
        let bytes = self.mem.read(addr)?;
        StoredRecord::decode(&bytes)
            .map_err(|e| Error::TamperDetected(format!("malformed record at {addr}: {e}")))
    }

    /// Rewrite a record in place; relocate (and re-index all its chain
    /// keys) if its page cannot hold the grown encoding.
    fn rewrite_record(&self, addr: CellAddr, rec: &StoredRecord) -> Result<CellAddr> {
        let bytes = rec.encode_to_vec();
        match self.mem.write(addr, &bytes) {
            Ok(()) => Ok(addr),
            Err(Error::PageFull { .. }) => {
                let new_addr = self.alloc_record(&bytes)?;
                self.mem.delete(addr)?;
                for (chain, (key, _)) in rec.chains.iter().enumerate() {
                    if !matches!(key, ChainKey::Absent) {
                        self.indexes[chain].upsert(key.clone(), new_addr);
                    }
                }
                Ok(new_addr)
            }
            Err(e) => Err(e),
        }
    }

    // ---- write path ----------------------------------------------------------

    /// Insert a row (Algorithm 3's `Insert`, generalized to k chains):
    /// locates each chain's predecessor, verifies no duplicate, writes the
    /// new record, then splices every predecessor's `nKey`.
    pub fn insert(&self, row: Row) -> Result<CellAddr> {
        let row = Row::new(self.schema.check_row(row.into_values())?);
        let _g = self.write_lock.lock();
        self.insert_locked(row)
    }

    fn insert_locked(&self, row: Row) -> Result<CellAddr> {
        let keys: Vec<ChainKey> = (0..self.chain_cols.len())
            .map(|c| self.chain_key(c, &row))
            .collect();

        // 1. Find and read every chain's predecessor, grouping chains that
        //    share a predecessor record so each record is rewritten once.
        let mut pred_addrs: Vec<CellAddr> = Vec::with_capacity(keys.len());
        let mut groups: HashMap<CellAddr, Vec<usize>> = HashMap::new();
        for (chain, key) in keys.iter().enumerate() {
            let addr = self.indexes[chain].find_floor(key).ok_or_else(|| {
                Error::TamperDetected(format!(
                    "index of chain {chain} returned no candidate for {key} \
                     (the ⊥ sentinel must always match)"
                ))
            })?;
            pred_addrs.push(addr);
            groups.entry(addr).or_default().push(chain);
        }

        let mut preds: HashMap<CellAddr, StoredRecord> = HashMap::new();
        let mut nkeys: Vec<Option<ChainKey>> = vec![None; keys.len()];
        for (&addr, chains) in &groups {
            let rec = self.read_record(addr)?;
            for &chain in chains {
                let key = &keys[chain];
                let pk = rec.key(chain);
                let pnk = rec.nkey(chain);
                if pk == key || pnk == key {
                    return Err(Error::DuplicateKey(format!(
                        "{} (chain {chain} of table {})",
                        key, self.name
                    )));
                }
                if !(pk < key && key < pnk) {
                    return Err(Error::TamperDetected(format!(
                        "index of chain {chain} returned predecessor \
                         (key={pk}, nKey={pnk}) which does not bracket {key}"
                    )));
                }
                nkeys[chain] = Some(pnk.clone());
            }
            preds.insert(addr, rec);
        }

        // 2. Write the new record with nKey = predecessor's old nKey.
        let chains: Vec<(ChainKey, ChainKey)> = keys
            .iter()
            .cloned()
            .zip(nkeys.into_iter().map(|n| n.expect("filled above")))
            .collect();
        let rec = StoredRecord::new(chains, row);
        let addr = self.alloc_record(&rec.encode_to_vec())?;

        // 3. Publish the index entries before splicing so concurrent scans
        //    can always resolve a spliced-in nKey.
        for (chain, key) in keys.iter().enumerate() {
            self.indexes[chain].upsert(key.clone(), addr);
        }

        // 4. Splice each predecessor's nKey to the new key.
        for (pred_addr, chains) in groups {
            let rec = preds.get_mut(&pred_addr).expect("read above");
            for chain in chains {
                rec.set_nkey(chain, keys[chain].clone());
            }
            self.rewrite_record(pred_addr, rec)?;
        }

        self.row_count.fetch_add(1, Ordering::Relaxed);
        Ok(addr)
    }

    /// Delete the row with primary key `pk`. Returns the deleted row, or
    /// `KeyNotFound` (with verified absence) when no such row exists.
    pub fn delete(&self, pk: &Value) -> Result<Row> {
        let _g = self.write_lock.lock();
        self.delete_locked(pk)
    }

    fn delete_locked(&self, pk: &Value) -> Result<Row> {
        let key0 = ChainKey::val(pk.clone());
        let addr = match self.indexes[0].find_exact(&key0) {
            Some(a) => a,
            None => {
                // Verify the absence before reporting KeyNotFound.
                self.get_point(0, &key0)?;
                return Err(Error::KeyNotFound(pk.to_string()));
            }
        };
        let rec = self.read_record(addr)?;
        if rec.key(0) != &key0 {
            return Err(Error::TamperDetected(format!(
                "primary index points {key0} at a record keyed {}",
                rec.key(0)
            )));
        }

        // Find each chain's strict predecessor and splice it past us.
        let mut groups: HashMap<CellAddr, Vec<usize>> = HashMap::new();
        for chain in 0..self.chain_cols.len() {
            let key = rec.key(chain);
            let pred = self.indexes[chain].find_below(key).ok_or_else(|| {
                Error::TamperDetected(format!(
                    "index of chain {chain} has no predecessor for {key}"
                ))
            })?;
            groups.entry(pred).or_default().push(chain);
        }
        for (pred_addr, chains) in groups {
            let mut pred = self.read_record(pred_addr)?;
            for chain in chains {
                if pred.nkey(chain) != rec.key(chain) {
                    return Err(Error::TamperDetected(format!(
                        "chain {chain} predecessor's nKey {} does not point \
                         at the deleted key {}",
                        pred.nkey(chain),
                        rec.key(chain)
                    )));
                }
                pred.set_nkey(chain, rec.nkey(chain).clone());
            }
            self.rewrite_record(pred_addr, &pred)?;
        }
        for (chain, (key, _)) in rec.chains.iter().enumerate() {
            self.indexes[chain].remove(key);
        }
        self.mem.delete(addr)?;
        self.row_count.fetch_sub(1, Ordering::Relaxed);
        Ok(rec.row)
    }

    /// Update the row with primary key `pk` to `new_row`. If no chained
    /// column changes, this is an in-place data write; otherwise it is a
    /// delete followed by an insert (§4.2's `Update` semantics).
    pub fn update(&self, pk: &Value, new_row: Row) -> Result<()> {
        let new_row = Row::new(self.schema.check_row(new_row.into_values())?);
        let _g = self.write_lock.lock();
        let key0 = ChainKey::val(pk.clone());
        let addr = self.indexes[0]
            .find_exact(&key0)
            .ok_or_else(|| Error::KeyNotFound(pk.to_string()))?;
        let mut rec = self.read_record(addr)?;
        if rec.key(0) != &key0 {
            return Err(Error::TamperDetected(format!(
                "primary index points {key0} at a record keyed {}",
                rec.key(0)
            )));
        }
        let keys_unchanged =
            (0..self.chain_cols.len()).all(|c| &self.chain_key(c, &new_row) == rec.key(c));
        if keys_unchanged {
            rec.row = new_row;
            self.rewrite_record(addr, &rec)?;
            Ok(())
        } else {
            self.delete_locked(pk)?;
            self.insert_locked(new_row)?;
            Ok(())
        }
    }

    /// Read-modify-write helper: applies `f` to the current row and stores
    /// the result (in place when no chain key changes).
    pub fn update_with(&self, pk: &Value, f: impl FnOnce(&mut Row)) -> Result<()> {
        let _g = self.write_lock.lock();
        let key0 = ChainKey::val(pk.clone());
        let addr = self.indexes[0]
            .find_exact(&key0)
            .ok_or_else(|| Error::KeyNotFound(pk.to_string()))?;
        let mut rec = self.read_record(addr)?;
        if rec.key(0) != &key0 {
            return Err(Error::TamperDetected(format!(
                "primary index points {key0} at a record keyed {}",
                rec.key(0)
            )));
        }
        let mut row = rec.row.clone();
        f(&mut row);
        let row = Row::new(self.schema.check_row(row.into_values())?);
        let keys_unchanged =
            (0..self.chain_cols.len()).all(|c| &self.chain_key(c, &row) == rec.key(c));
        if keys_unchanged {
            rec.row = row;
            self.rewrite_record(addr, &rec)?;
            Ok(())
        } else {
            self.delete_locked(pk)?;
            self.insert_locked(row)?;
            Ok(())
        }
    }

    // ---- verified read path ---------------------------------------------------

    /// Verified point lookup on any chain key (§5.2 Index Search). Returns
    /// the row with its proving record, or a verified absence.
    pub(crate) fn get_point(&self, chain: usize, q: &ChainKey) -> Result<PointResult> {
        // Benign races with concurrent splices can momentarily misroute the
        // untrusted index; retry with bounded backoff before declaring
        // tampering.
        let mut last_err = None;
        let mut backoff = crate::backoff::Backoff::new();
        for attempt in 0..crate::backoff::RETRY_ATTEMPTS {
            if attempt > 0 {
                backoff.wait();
            }
            let Some(addr) = self.indexes[chain].find_floor(q) else {
                last_err = Some(Error::TamperDetected(format!(
                    "index of chain {chain} returned no candidate for {q}"
                )));
                continue;
            };
            let rec = match self.read_record(addr) {
                Ok(r) => r,
                Err(Error::SlotNotFound { .. }) => {
                    last_err = Some(Error::TamperDetected(format!(
                        "index of chain {chain} pointed {q} at a dead slot"
                    )));
                    continue;
                }
                Err(e) => return Err(e),
            };
            match check_point(chain, q, rec) {
                Ok(res) => return Ok(res),
                Err(e) => {
                    last_err = Some(e);
                    continue;
                }
            }
        }
        Err(last_err.expect("at least one attempt"))
    }

    /// Verified primary-key lookup. `Ok(Some(row))` and `Ok(None)` are both
    /// *verified* answers; errors are alarms.
    pub fn get_by_pk(&self, pk: &Value) -> Result<Option<Row>> {
        let q = ChainKey::val(pk.clone());
        Ok(self.get_point(0, &q)?.row().cloned())
    }

    /// Verified primary-key lookup returning the evidence too.
    pub fn get_by_pk_with_evidence(&self, pk: &Value) -> Result<PointResult> {
        self.get_point(0, &ChainKey::val(pk.clone()))
    }

    /// Verified range scan on the chain over schema column
    /// `self.column_of_chain(chain)` (§5.2 Range Scan). Bounds are on the
    /// column's values.
    pub fn range_scan(
        self: &Arc<Self>,
        chain: usize,
        lo: Bound<Value>,
        hi: Bound<Value>,
    ) -> VerifiedScan {
        VerifiedScan::new(Arc::clone(self), chain, lo, hi)
    }

    /// Verified full scan in primary-key order (a range scan over
    /// `(⊥, ⊤)`, as the paper's Example 5.4 treats SeqScan).
    pub fn seq_scan(self: &Arc<Self>) -> VerifiedScan {
        VerifiedScan::new(Arc::clone(self), 0, Bound::Unbounded, Bound::Unbounded)
    }

    /// Verified equality lookup on a secondary chain (all rows whose
    /// column equals `v`), implemented as the composite range
    /// `[(v), (v, ⊤))`.
    pub fn scan_eq(self: &Arc<Self>, chain: usize, v: &Value) -> VerifiedScan {
        VerifiedScan::new(
            Arc::clone(self),
            chain,
            Bound::Included(v.clone()),
            Bound::Included(v.clone()),
        )
    }

    /// Split the value range `[lo, hi]` of a chain into up to `target`
    /// contiguous sub-ranges ("morsels") that tile it exactly, by sampling
    /// split points from the untrusted index.
    ///
    /// Each morsel is later scanned by its own [`VerifiedScan`], which
    /// independently verifies conditions 1–3 over its sub-range; since the
    /// sub-ranges tile `[lo, hi]`, whole-range completeness follows without
    /// trusting the split points. A lying or stale index can only skew the
    /// split (hurting load balance, never correctness), and the enumeration
    /// walk is bounded so an adversarial oracle cannot trap the splitter in
    /// an infinite key stream.
    ///
    /// Boundaries are distinct column *values* strictly inside the range,
    /// so on secondary chains all duplicates of one value land in the same
    /// morsel and every row lands in exactly one.
    pub fn morsel_ranges(
        &self,
        chain: usize,
        lo: &Bound<Value>,
        hi: &Bound<Value>,
        target: usize,
    ) -> Vec<(Bound<Value>, Bound<Value>)> {
        const MIN_MORSEL_ROWS: usize = 256;
        const ENUM_CHUNK: usize = 256;
        let whole = vec![(lo.clone(), hi.clone())];
        let rows = self.row_count() as usize;
        if target <= 1 || rows < 2 * MIN_MORSEL_ROWS {
            return whole;
        }
        let stride = (rows / target).max(MIN_MORSEL_ROWS);

        let gt_lo = |v: &Value| match lo {
            Bound::Unbounded => true,
            Bound::Included(l) | Bound::Excluded(l) => v > l,
        };
        let lt_hi = |v: &Value| match hi {
            Bound::Unbounded => true,
            Bound::Included(h) | Bound::Excluded(h) => v < h,
        };

        let mut from = match lo {
            Bound::Unbounded => ChainKey::NegInf,
            // The single-value composite (v) sorts below every (v, pk), so
            // this resumes from the first entry of `v` on any chain.
            Bound::Included(v) | Bound::Excluded(v) => ChainKey::val(v.clone()),
        };
        let mut boundaries: Vec<Value> = Vec::new();
        let mut since_boundary = 0usize;
        let mut walked = 0usize;
        // Bound the walk: an honest index yields at most `rows` live keys;
        // tolerate some churn, then stop trusting the enumeration.
        let budget = rows.saturating_mul(2) + 1024;
        'walk: loop {
            let batch = self.indexes[chain].next_entries(&from, ENUM_CHUNK);
            if batch.is_empty() {
                break;
            }
            let batch_len = batch.len();
            for (key, _) in batch {
                // `next_entries` is inclusive of `from`: skip the resume key.
                if key <= from {
                    continue;
                }
                walked += 1;
                from = key.clone();
                let Some(composite) = key.as_val() else {
                    continue;
                };
                let head = composite.head();
                if !lt_hi(head) {
                    break 'walk; // past the upper bound: done sampling
                }
                since_boundary += 1;
                if since_boundary >= stride
                    && gt_lo(head)
                    && boundaries.last().map(|b| head > b).unwrap_or(true)
                {
                    boundaries.push(head.clone());
                    since_boundary = 0;
                }
                if walked >= budget {
                    break 'walk;
                }
            }
            if batch_len < ENUM_CHUNK {
                break;
            }
        }
        if boundaries.is_empty() {
            return whole;
        }
        let mut ranges = Vec::with_capacity(boundaries.len() + 1);
        let mut cur_lo = lo.clone();
        for b in boundaries {
            ranges.push((cur_lo, Bound::Excluded(b.clone())));
            cur_lo = Bound::Included(b);
        }
        ranges.push((cur_lo, hi.clone()));
        ranges
    }
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("name", &self.name)
            .field("rows", &self.row_count())
            .field("chains", &self.chain_cols)
            .finish()
    }
}
