//! The extended storage record `⟨key₁, nKey₁, …, key_k, nKey_k, data⟩`
//! (Definitions 4.2 and 5.2).
//!
//! A [`StoredRecord`] is what actually lives in a verified-memory cell.
//! Ordinary records carry one `(key, nKey)` pair per chained column plus
//! the full row; sentinel records carry `(⊥, min)` in exactly one chain
//! and `Absent` in the others, with an empty row.

use crate::chain::ChainKey;
use veridb_common::codec::Reader;
use veridb_common::{Error, Result, Row};

/// One storage-layer record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredRecord {
    /// `(key, nKey)` per chain, in chain order.
    pub chains: Vec<(ChainKey, ChainKey)>,
    /// The aggregated data (the full row for ordinary records; empty for
    /// sentinels).
    pub row: Row,
}

impl StoredRecord {
    /// An ordinary record participating in every chain.
    pub fn new(chains: Vec<(ChainKey, ChainKey)>, row: Row) -> Self {
        StoredRecord { chains, row }
    }

    /// The sentinel record of chain `chain` (out of `chain_count`):
    /// `⟨…, ⊥, ⊤, …⟩` with `Absent` elsewhere and no data. Its `nKey`
    /// tracks the minimum key of the chain as inserts happen.
    pub fn sentinel(chain: usize, chain_count: usize) -> Self {
        let chains = (0..chain_count)
            .map(|i| {
                if i == chain {
                    (ChainKey::NegInf, ChainKey::PosInf)
                } else {
                    (ChainKey::Absent, ChainKey::Absent)
                }
            })
            .collect();
        StoredRecord {
            chains,
            row: Row::default(),
        }
    }

    /// Whether this record is a sentinel (participates via `⊥`).
    pub fn is_sentinel(&self) -> bool {
        self.chains.iter().any(|(k, _)| k.is_neg_inf())
    }

    /// The key of chain `i`.
    pub fn key(&self, i: usize) -> &ChainKey {
        &self.chains[i].0
    }

    /// The nKey of chain `i`.
    pub fn nkey(&self, i: usize) -> &ChainKey {
        &self.chains[i].1
    }

    /// Replace chain `i`'s nKey (the splice performed by insert/delete).
    pub fn set_nkey(&mut self, i: usize, nkey: ChainKey) {
        self.chains[i].1 = nkey;
    }

    /// Canonical encoding.
    pub fn encode_to_vec(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32 + self.row.len() * 12);
        buf.push(self.chains.len() as u8);
        for (k, nk) in &self.chains {
            k.encode(&mut buf);
            nk.encode(&mut buf);
        }
        self.row.encode(&mut buf);
        buf
    }

    /// Decode a record; the bytes come from untrusted memory (via a
    /// verified read), so decoding is fully defensive.
    pub fn decode(bytes: &[u8]) -> Result<StoredRecord> {
        let mut r = Reader::new(bytes);
        let n = r.get_u8()? as usize;
        if n == 0 || n > 32 {
            return Err(Error::Codec(format!("bad chain count {n}")));
        }
        let mut chains = Vec::with_capacity(n);
        for _ in 0..n {
            let k = ChainKey::decode(&mut r)?;
            let nk = ChainKey::decode(&mut r)?;
            chains.push((k, nk));
        }
        let row = Row::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(Error::Codec(format!(
                "{} trailing bytes after record",
                r.remaining()
            )));
        }
        Ok(StoredRecord { chains, row })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridb_common::Value;

    #[test]
    fn round_trip_ordinary_record() {
        let rec = StoredRecord::new(
            vec![
                (ChainKey::val(Value::Int(1)), ChainKey::val(Value::Int(4))),
                (
                    ChainKey::pair(Value::Int(100), Value::Int(1)),
                    ChainKey::PosInf,
                ),
            ],
            Row::new(vec![Value::Int(1), Value::Int(100), Value::Float(9.5)]),
        );
        let bytes = rec.encode_to_vec();
        assert_eq!(StoredRecord::decode(&bytes).unwrap(), rec);
    }

    #[test]
    fn sentinel_shape_matches_figure_6() {
        // Figure 6(a): two sentinel records for a two-chain relation.
        let s0 = StoredRecord::sentinel(0, 2);
        assert_eq!(s0.key(0), &ChainKey::NegInf);
        assert_eq!(s0.nkey(0), &ChainKey::PosInf);
        assert_eq!(s0.key(1), &ChainKey::Absent);
        assert!(s0.is_sentinel());
        assert!(s0.row.is_empty());

        let s1 = StoredRecord::sentinel(1, 2);
        assert_eq!(s1.key(0), &ChainKey::Absent);
        assert_eq!(s1.key(1), &ChainKey::NegInf);
    }

    #[test]
    fn splice_nkey() {
        let mut s = StoredRecord::sentinel(0, 1);
        s.set_nkey(0, ChainKey::val(Value::Int(10)));
        assert_eq!(s.nkey(0), &ChainKey::val(Value::Int(10)));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(StoredRecord::decode(&[]).is_err());
        assert!(StoredRecord::decode(&[0]).is_err()); // zero chains
        assert!(StoredRecord::decode(&[99]).is_err()); // absurd chain count
        let rec = StoredRecord::sentinel(0, 1);
        let mut bytes = rec.encode_to_vec();
        bytes.push(0xFF); // trailing garbage
        assert!(StoredRecord::decode(&bytes).is_err());
        let bytes2 = rec.encode_to_vec();
        assert!(StoredRecord::decode(&bytes2[..bytes2.len() - 1]).is_err());
    }
}
