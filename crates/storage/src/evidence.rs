//! Evidence objects and the §5.2 verification conditions.
//!
//! Every access-method answer carries the record(s) that prove it. The
//! check functions here are the exact conditions from the paper:
//!
//! **Index search** for key `q` against evidence record `⟨k, nk, data⟩`:
//!   1. `k = q` — the record *is* the match; or
//!   2. `k < q < nk` — the record proves `q` is absent;
//!
//! otherwise the untrusted host/index misbehaved.
//!
//! **Range scan** for `[a, b]` against records `r₁ … r_m`:
//!   1. `r₁.key ≤ a` (coverage of the left end),
//!   2. `r_m.nKey > b` (coverage of the right end; the paper's Figure 5
//!      states `nKey of the last record ≥ b` with the walk stopping at the
//!      first record `≥ b` — with our half-open composite bounds the
//!      strict form is the correct one),
//!   3. `rᵢ.key = rᵢ₋₁.nKey` for every adjacent pair (gap-freedom).
//!
//! The range conditions are enforced incrementally by
//! [`crate::cursor::VerifiedScan`]; the point condition lives here.

use crate::chain::ChainKey;
use crate::record::StoredRecord;
use veridb_common::{Error, Result, Row};

/// The evidence for a point lookup: the single proving record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointEvidence {
    /// Which chain the lookup used.
    pub chain: usize,
    /// The record read from verified memory.
    pub record: StoredRecord,
}

/// Outcome of a verified point lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PointResult {
    /// The key exists; here is its row, with evidence.
    Found(Row, PointEvidence),
    /// The key does not exist; the evidence record's `(key, nKey)` gap
    /// proves it.
    Absent(PointEvidence),
}

impl PointResult {
    /// The row, if found.
    pub fn row(&self) -> Option<&Row> {
        match self {
            PointResult::Found(r, _) => Some(r),
            PointResult::Absent(_) => None,
        }
    }

    /// The evidence record.
    pub fn evidence(&self) -> &PointEvidence {
        match self {
            PointResult::Found(_, e) | PointResult::Absent(e) => e,
        }
    }
}

/// Apply the index-search verification conditions (§5.2) to a candidate
/// record for query key `q` on chain `chain`.
pub fn check_point(chain: usize, q: &ChainKey, record: StoredRecord) -> Result<PointResult> {
    if chain >= record.chains.len() {
        return Err(Error::TamperDetected(format!(
            "evidence record has {} chains, lookup used chain {chain}",
            record.chains.len()
        )));
    }
    let key = record.key(chain).clone();
    let nkey = record.nkey(chain).clone();
    if key == ChainKey::Absent {
        return Err(Error::TamperDetected(
            "evidence record does not participate in the queried chain".into(),
        ));
    }
    if &key == q {
        let row = record.row.clone();
        return Ok(PointResult::Found(row, PointEvidence { chain, record }));
    }
    if key < *q && *q < nkey {
        return Ok(PointResult::Absent(PointEvidence { chain, record }));
    }
    Err(Error::TamperDetected(format!(
        "index returned record with (key={key}, nKey={nkey}) which neither \
         matches nor brackets the queried key {q}"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridb_common::Value;

    fn record(k: i64, nk: i64) -> StoredRecord {
        StoredRecord::new(
            vec![(ChainKey::val(Value::Int(k)), ChainKey::val(Value::Int(nk)))],
            Row::new(vec![Value::Int(k), Value::Str("data".into())]),
        )
    }

    #[test]
    fn exact_match_is_found() {
        let r = check_point(0, &ChainKey::val(Value::Int(10)), record(10, 20)).unwrap();
        assert!(matches!(r, PointResult::Found(_, _)));
        assert_eq!(r.row().unwrap()[0], Value::Int(10));
    }

    #[test]
    fn gap_proves_absence() {
        let r = check_point(0, &ChainKey::val(Value::Int(15)), record(10, 20)).unwrap();
        assert!(matches!(r, PointResult::Absent(_)));
        assert!(r.row().is_none());
    }

    #[test]
    fn sentinel_gap_proves_absence_below_minimum() {
        // ⟨⊥, 10⟩ proves nothing exists below 10 (Example 4.3's shape).
        let s = StoredRecord::new(
            vec![(ChainKey::NegInf, ChainKey::val(Value::Int(10)))],
            Row::default(),
        );
        let r = check_point(0, &ChainKey::val(Value::Int(5)), s).unwrap();
        assert!(matches!(r, PointResult::Absent(_)));
    }

    #[test]
    fn top_gap_proves_absence_above_maximum() {
        // ⟨id4, ⊤, …⟩ proves keys above id4 are absent (Example 4.3).
        let top = StoredRecord::new(
            vec![(ChainKey::val(Value::Int(40)), ChainKey::PosInf)],
            Row::new(vec![Value::Int(40)]),
        );
        let r = check_point(0, &ChainKey::val(Value::Int(99)), top).unwrap();
        assert!(matches!(r, PointResult::Absent(_)));
    }

    #[test]
    fn wrong_record_is_tamper() {
        // Record ⟨10, 20⟩ can prove nothing about key 25.
        let err = check_point(0, &ChainKey::val(Value::Int(25)), record(10, 20)).unwrap_err();
        assert!(matches!(err, Error::TamperDetected(_)));
        // Nor about key 5 (query below the record's key).
        let err = check_point(0, &ChainKey::val(Value::Int(5)), record(10, 20)).unwrap_err();
        assert!(matches!(err, Error::TamperDetected(_)));
    }

    #[test]
    fn absent_chain_participation_is_tamper() {
        let s = StoredRecord::new(vec![(ChainKey::Absent, ChainKey::Absent)], Row::default());
        assert!(check_point(0, &ChainKey::val(Value::Int(1)), s).is_err());
    }

    #[test]
    fn chain_index_out_of_range_is_tamper() {
        assert!(check_point(3, &ChainKey::val(Value::Int(1)), record(1, 2)).is_err());
    }
}
