//! VeriDB's page-structured verifiable storage layer (§4 of the paper).
//!
//! Built on top of the write-read consistent memory of `veridb-wrcm`, this
//! crate stores relational tables such that **the presence or absence of
//! any queried record is proved by a single record** (Definition 4.2):
//!
//! - Every record of a relation is stored as
//!   `⟨key₁, nKey₁, …, key_k, nKey_k, data⟩` where `nKeyᵢ` is the smallest
//!   key greater than `keyᵢ` in chain `i` (Definition 5.2 generalizes to
//!   one chain per indexed column).
//! - Each chain carries a sentinel record `⟨⊥, min(keys), −⟩` so that the
//!   emptiness of a prefix is also provable.
//! - The record `⟨k₁, k₂, data⟩` itself proves the existence of `k₁` and
//!   the absence of every key in `(k₁, k₂)` — because it was read from
//!   write-read consistent memory, the host cannot forge it.
//!
//! Point lookups and range scans return rows together with the evidence
//! checks of §5.2 already applied; any inconsistency (an untrusted index
//! pointing at the wrong record, an omitted row, a broken chain) surfaces
//! as [`veridb_common::Error::TamperDetected`].
//!
//! The physical placement of records (which page, which slot) and the
//! per-chain indexes mapping keys to `(page, slot)` are **untrusted**: a
//! lying index can cause spurious errors but never an accepted wrong
//! answer.

pub mod backoff;
pub mod bpindex;
pub mod catalog;
pub mod chain;
pub mod cursor;
pub mod evidence;
pub mod index;
pub mod record;
pub mod table;

pub use backoff::Backoff;
pub use bpindex::BPlusIndex;
pub use catalog::Catalog;
pub use chain::{ChainKey, CompositeKey};
pub use cursor::VerifiedScan;
pub use evidence::{PointEvidence, PointResult};
pub use index::{ChainIndex, IndexOracle, MaliciousIndex};
pub use record::StoredRecord;
pub use table::Table;
