//! Untrusted per-chain indexes.
//!
//! The paper stores indexes in untrusted memory and stresses that they
//! "do not need to be verifiable" (§5.2): the index is only an *oracle*
//! proposing where a record might live; every answer is checked against
//! the `⟨key, nKey⟩` evidence read from verified memory. A lying index can
//! cause a detected tamper alarm or a spurious miss, never a wrong
//! accepted result.
//!
//! [`ChainIndex`] is the honest implementation (a `BTreeMap` under a
//! read-write lock). [`MaliciousIndex`] wraps any oracle and misbehaves on
//! demand, for the attack tests that prove the access-method checks catch
//! it.

use crate::chain::ChainKey;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, Ordering};
use veridb_wrcm::CellAddr;

/// The oracle interface the access methods consult.
pub trait IndexOracle: Send + Sync {
    /// Address of the record with the largest chain key `<= key`
    /// (the paper's "largest key not exceeding a"). The chain sentinel
    /// guarantees such a record exists for any key `>= ⊥`.
    fn find_floor(&self, key: &ChainKey) -> Option<CellAddr>;

    /// Address of the record with the largest chain key strictly `< key`
    /// (the predecessor used by delete's splice).
    fn find_below(&self, key: &ChainKey) -> Option<CellAddr>;

    /// Address of the record with exactly this chain key.
    fn find_exact(&self, key: &ChainKey) -> Option<CellAddr>;

    /// Record (or update) a key → address binding.
    fn upsert(&self, key: ChainKey, addr: CellAddr);

    /// Remove a binding.
    fn remove(&self, key: &ChainKey);

    /// Number of bindings.
    fn len(&self) -> usize;

    /// True when no bindings exist.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Prefetch hint for batched scans: up to `limit` `(key, address)`
    /// bindings in ascending key order, starting at the smallest key
    /// `>= from`. Purely advisory — the scan re-verifies every answer
    /// against the `⟨key, nKey⟩` chain evidence, so a lying or stale reply
    /// can only force the per-record fallback path, never a wrong accepted
    /// result. The default returns nothing, which disables batching for
    /// oracles that cannot enumerate in order.
    fn next_entries(&self, from: &ChainKey, limit: usize) -> Vec<(ChainKey, CellAddr)> {
        let _ = (from, limit);
        Vec::new()
    }
}

/// Honest untrusted index: an ordered map from chain key to cell address.
#[derive(Debug, Default)]
pub struct ChainIndex {
    map: RwLock<BTreeMap<ChainKey, CellAddr>>,
}

impl ChainIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }
}

impl IndexOracle for ChainIndex {
    fn find_floor(&self, key: &ChainKey) -> Option<CellAddr> {
        self.map
            .read()
            .range((Bound::Unbounded, Bound::Included(key.clone())))
            .next_back()
            .map(|(_, &a)| a)
    }

    fn find_below(&self, key: &ChainKey) -> Option<CellAddr> {
        self.map
            .read()
            .range((Bound::Unbounded, Bound::Excluded(key.clone())))
            .next_back()
            .map(|(_, &a)| a)
    }

    fn find_exact(&self, key: &ChainKey) -> Option<CellAddr> {
        self.map.read().get(key).copied()
    }

    fn upsert(&self, key: ChainKey, addr: CellAddr) {
        self.map.write().insert(key, addr);
    }

    fn remove(&self, key: &ChainKey) {
        self.map.write().remove(key);
    }

    fn len(&self) -> usize {
        self.map.read().len()
    }

    fn next_entries(&self, from: &ChainKey, limit: usize) -> Vec<(ChainKey, CellAddr)> {
        self.map
            .read()
            .range((Bound::Included(from.clone()), Bound::Unbounded))
            .take(limit)
            .map(|(k, &a)| (k.clone(), a))
            .collect()
    }
}

/// Which lie a [`MaliciousIndex`] tells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexLie {
    /// Answer lookups with the address of a *different* (valid) record.
    WrongRecord(CellAddr),
    /// Pretend keys do not exist (return `None` for everything).
    DenyAll,
    /// For floor queries, return a record strictly *below* the true floor,
    /// trying to make a point search skip the real match.
    Undershoot,
}

/// An adversarial index wrapper for attack tests.
pub struct MaliciousIndex {
    inner: ChainIndex,
    lie: RwLock<Option<IndexLie>>,
    active: AtomicBool,
}

impl MaliciousIndex {
    /// Wrap a fresh honest index; behaves honestly until armed.
    pub fn new() -> Self {
        MaliciousIndex {
            inner: ChainIndex::new(),
            lie: RwLock::new(None),
            active: AtomicBool::new(false),
        }
    }

    /// Arm the given lie.
    pub fn arm(&self, lie: IndexLie) {
        *self.lie.write() = Some(lie);
        self.active.store(true, Ordering::Relaxed);
    }

    /// Disarm; behave honestly again.
    pub fn disarm(&self) {
        self.active.store(false, Ordering::Relaxed);
    }
}

impl Default for MaliciousIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl IndexOracle for MaliciousIndex {
    fn find_floor(&self, key: &ChainKey) -> Option<CellAddr> {
        if self.active.load(Ordering::Relaxed) {
            match *self.lie.read() {
                Some(IndexLie::WrongRecord(addr)) => return Some(addr),
                Some(IndexLie::DenyAll) => return None,
                Some(IndexLie::Undershoot) => {
                    // Return the floor of the floor's predecessor if any.
                    let m = self.inner.map.read();
                    let mut it = m.range((Bound::Unbounded, Bound::Included(key.clone())));
                    let _true_floor = it.next_back();
                    if let Some((_, &a)) = it.next_back() {
                        return Some(a);
                    }
                    return _true_floor.map(|(_, &a)| a);
                }
                None => {}
            }
        }
        self.inner.find_floor(key)
    }

    fn find_below(&self, key: &ChainKey) -> Option<CellAddr> {
        if self.active.load(Ordering::Relaxed) {
            match *self.lie.read() {
                Some(IndexLie::WrongRecord(addr)) => return Some(addr),
                Some(IndexLie::DenyAll) => return None,
                _ => {}
            }
        }
        self.inner.find_below(key)
    }

    fn find_exact(&self, key: &ChainKey) -> Option<CellAddr> {
        if self.active.load(Ordering::Relaxed) {
            match *self.lie.read() {
                Some(IndexLie::WrongRecord(addr)) => return Some(addr),
                Some(IndexLie::DenyAll) => return None,
                _ => {}
            }
        }
        self.inner.find_exact(key)
    }

    fn upsert(&self, key: ChainKey, addr: CellAddr) {
        self.inner.upsert(key, addr);
    }

    fn remove(&self, key: &ChainKey) {
        self.inner.remove(key);
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn next_entries(&self, from: &ChainKey, limit: usize) -> Vec<(ChainKey, CellAddr)> {
        if self.active.load(Ordering::Relaxed) {
            // Refuse to prefetch while armed: the scan then exercises the
            // per-record resolve path, where the armed lie is told (and
            // caught) exactly as the attack tests expect.
            return Vec::new();
        }
        self.inner.next_entries(from, limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridb_common::Value;

    fn addr(page: u64, slot: u16) -> CellAddr {
        CellAddr { page, slot }
    }

    fn k(v: i64) -> ChainKey {
        ChainKey::val(Value::Int(v))
    }

    #[test]
    fn floor_and_exact_lookups() {
        let idx = ChainIndex::new();
        idx.upsert(ChainKey::NegInf, addr(1, 0));
        idx.upsert(k(10), addr(1, 1));
        idx.upsert(k(20), addr(1, 2));

        assert_eq!(idx.find_floor(&k(5)), Some(addr(1, 0)));
        assert_eq!(idx.find_floor(&k(10)), Some(addr(1, 1)));
        assert_eq!(idx.find_floor(&k(15)), Some(addr(1, 1)));
        assert_eq!(idx.find_floor(&k(99)), Some(addr(1, 2)));
        assert_eq!(idx.find_exact(&k(20)), Some(addr(1, 2)));
        assert_eq!(idx.find_exact(&k(15)), None);
        assert_eq!(idx.find_floor(&ChainKey::PosInf), Some(addr(1, 2)));
    }

    #[test]
    fn remove_and_len() {
        let idx = ChainIndex::new();
        idx.upsert(k(1), addr(1, 1));
        idx.upsert(k(2), addr(1, 2));
        assert_eq!(idx.len(), 2);
        idx.remove(&k(1));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.find_exact(&k(1)), None);
    }

    #[test]
    fn malicious_index_lies_then_recovers() {
        let idx = MaliciousIndex::new();
        idx.upsert(ChainKey::NegInf, addr(1, 0));
        idx.upsert(k(10), addr(1, 1));
        idx.upsert(k(20), addr(1, 2));

        idx.arm(IndexLie::WrongRecord(addr(9, 9)));
        assert_eq!(idx.find_exact(&k(10)), Some(addr(9, 9)));

        idx.arm(IndexLie::DenyAll);
        assert_eq!(idx.find_floor(&k(10)), None);

        idx.arm(IndexLie::Undershoot);
        assert_eq!(idx.find_floor(&k(20)), Some(addr(1, 1)));

        idx.disarm();
        assert_eq!(idx.find_exact(&k(10)), Some(addr(1, 1)));
    }
}
