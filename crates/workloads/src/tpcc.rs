//! From-scratch TPC-C workload for the paper's Figure 13 experiment.
//!
//! The paper measures "VeriDB's average throughput on a 20-warehouse
//! configuration when varying the number of clients and the number of
//! ReadSets/WriteSets". This module provides:
//!
//! - the TPC-C schema (single-column synthetic primary keys composed from
//!   the TPC-C composite keys, since this engine chains on one column),
//! - a seeded loader at configurable scale,
//! - NewOrder and Payment transaction implementations against the
//!   programmatic table API (an even mix, standing in for the TPC-C
//!   deck — the contention pattern, which is what Figure 13 studies, is
//!   driven by the warehouse/district hot rows either way),
//! - a multi-threaded driver reporting throughput.
//!
//! Transactions are sequences of individually atomic verified operations;
//! like the paper's prototype, the isolation story is per-operation (the
//! storage layer's page/RSWS locking), not full serializability — the
//! experiment targets storage-layer lock contention.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use veridb::VeriDb;
use veridb_common::{Result, Row, Value};
use veridb_storage::Table;

/// Scale configuration (defaults follow the paper's 20 warehouses, with
/// per-district population scaled to laptop size).
#[derive(Debug, Clone)]
pub struct TpccConfig {
    /// Number of warehouses (paper: 20).
    pub warehouses: i64,
    /// Districts per warehouse (TPC-C: 10).
    pub districts_per_warehouse: i64,
    /// Customers per district (TPC-C: 3000; scaled down).
    pub customers_per_district: i64,
    /// Items (TPC-C: 100 000; scaled down). Stock = warehouses × items.
    pub items: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpccConfig {
    fn default() -> Self {
        TpccConfig {
            warehouses: 20,
            districts_per_warehouse: 10,
            customers_per_district: 30,
            items: 1_000,
            seed: 5701,
        }
    }
}

impl TpccConfig {
    /// A tiny configuration for tests.
    pub fn tiny() -> Self {
        TpccConfig {
            warehouses: 2,
            districts_per_warehouse: 2,
            customers_per_district: 5,
            items: 50,
            seed: 3,
        }
    }
}

/// Composite-key helpers (single-column synthetic keys).
fn d_key(w: i64, d: i64) -> i64 {
    w * 100 + d
}
fn c_key(w: i64, d: i64, c: i64) -> i64 {
    d_key(w, d) * 100_000 + c
}
fn s_key(w: i64, i: i64) -> i64 {
    w * 1_000_000 + i
}

/// Throughput measurement result.
#[derive(Debug, Clone, Copy)]
pub struct TpccStats {
    /// Committed transactions.
    pub committed: u64,
    /// Wall-clock seconds.
    pub elapsed_secs: f64,
}

impl TpccStats {
    /// Transactions per second.
    pub fn tps(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            0.0
        } else {
            self.committed as f64 / self.elapsed_secs
        }
    }
}

/// Loaded TPC-C tables plus the transaction logic.
pub struct TpccDriver {
    cfg: TpccConfig,
    warehouse: Arc<Table>,
    district: Arc<Table>,
    customer: Arc<Table>,
    item: Arc<Table>,
    stock: Arc<Table>,
    orders: Arc<Table>,
    order_line: Arc<Table>,
    new_order: Arc<Table>,
    history: Arc<Table>,
    next_order_key: AtomicI64,
    next_ol_key: AtomicI64,
    next_history_key: AtomicI64,
}

impl TpccDriver {
    /// Create the schema and load initial data into `db`.
    pub fn load(db: &VeriDb, cfg: TpccConfig) -> Result<TpccDriver> {
        for ddl in [
            "CREATE TABLE warehouse (w_id INT PRIMARY KEY, w_tax FLOAT, w_ytd FLOAT)",
            "CREATE TABLE district (d_key INT PRIMARY KEY, d_w_id INT, d_id INT, \
             d_tax FLOAT, d_ytd FLOAT, d_next_o_id INT)",
            "CREATE TABLE customer (c_key INT PRIMARY KEY, c_w_id INT, c_d_id INT, \
             c_id INT, c_balance FLOAT, c_ytd_payment FLOAT, c_payment_cnt INT)",
            "CREATE TABLE item (i_id INT PRIMARY KEY, i_price FLOAT, i_name TEXT)",
            "CREATE TABLE stock (s_key INT PRIMARY KEY, s_w_id INT, s_i_id INT, \
             s_quantity INT, s_ytd INT, s_order_cnt INT)",
            "CREATE TABLE orders (o_key INT PRIMARY KEY, o_dkey INT CHAINED, \
             o_ckey INT CHAINED, o_w_id INT, o_d_id INT, o_id INT, o_c_id INT, \
             o_ol_cnt INT, o_carrier INT)",
            "CREATE TABLE order_line (ol_key INT PRIMARY KEY, ol_o_key INT CHAINED, \
             ol_i_id INT, ol_qty INT, ol_amount FLOAT)",
            "CREATE TABLE new_order (no_key INT PRIMARY KEY, no_dkey INT CHAINED)",
            "CREATE TABLE history (h_key INT PRIMARY KEY, h_c_key INT, h_amount FLOAT)",
        ] {
            db.sql(ddl)?;
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let warehouse = db.table("warehouse")?;
        for w in 1..=cfg.warehouses {
            warehouse.insert(Row::new(vec![
                Value::Int(w),
                Value::Float(rng.gen_range(0.0..0.2)),
                Value::Float(300_000.0),
            ]))?;
        }
        let district = db.table("district")?;
        for w in 1..=cfg.warehouses {
            for d in 1..=cfg.districts_per_warehouse {
                district.insert(Row::new(vec![
                    Value::Int(d_key(w, d)),
                    Value::Int(w),
                    Value::Int(d),
                    Value::Float(rng.gen_range(0.0..0.2)),
                    Value::Float(30_000.0),
                    Value::Int(3_001),
                ]))?;
            }
        }
        let customer = db.table("customer")?;
        for w in 1..=cfg.warehouses {
            for d in 1..=cfg.districts_per_warehouse {
                for c in 1..=cfg.customers_per_district {
                    customer.insert(Row::new(vec![
                        Value::Int(c_key(w, d, c)),
                        Value::Int(w),
                        Value::Int(d),
                        Value::Int(c),
                        Value::Float(-10.0),
                        Value::Float(10.0),
                        Value::Int(1),
                    ]))?;
                }
            }
        }
        let item = db.table("item")?;
        for i in 1..=cfg.items {
            item.insert(Row::new(vec![
                Value::Int(i),
                Value::Float(rng.gen_range(1.0..100.0)),
                Value::Str(format!("item-{i}")),
            ]))?;
        }
        let stock = db.table("stock")?;
        for w in 1..=cfg.warehouses {
            for i in 1..=cfg.items {
                stock.insert(Row::new(vec![
                    Value::Int(s_key(w, i)),
                    Value::Int(w),
                    Value::Int(i),
                    Value::Int(rng.gen_range(10..=100)),
                    Value::Int(0),
                    Value::Int(0),
                ]))?;
            }
        }
        Ok(TpccDriver {
            cfg,
            warehouse,
            district,
            customer,
            item,
            stock,
            orders: db.table("orders")?,
            order_line: db.table("order_line")?,
            new_order: db.table("new_order")?,
            history: db.table("history")?,
            next_order_key: AtomicI64::new(1),
            next_ol_key: AtomicI64::new(1),
            next_history_key: AtomicI64::new(1),
        })
    }

    /// The configuration the driver was loaded with.
    pub fn config(&self) -> &TpccConfig {
        &self.cfg
    }

    /// Execute one NewOrder transaction.
    pub fn new_order(&self, rng: &mut StdRng) -> Result<()> {
        let w = rng.gen_range(1..=self.cfg.warehouses);
        let d = rng.gen_range(1..=self.cfg.districts_per_warehouse);
        let c = rng.gen_range(1..=self.cfg.customers_per_district);

        // Warehouse tax (read).
        let _wrow = self
            .warehouse
            .get_by_pk(&Value::Int(w))?
            .ok_or_else(|| veridb_common::Error::KeyNotFound(format!("w{w}")))?;

        // District: read tax + next order id, increment atomically.
        let mut o_id = 0i64;
        self.district.update_with(&Value::Int(d_key(w, d)), |row| {
            o_id = row[5].as_i64().unwrap_or(0);
            let mut vals = row.values().to_vec();
            vals[5] = Value::Int(o_id + 1);
            *row = Row::new(vals);
        })?;

        // Customer read.
        let _crow = self.customer.get_by_pk(&Value::Int(c_key(w, d, c)))?;

        // Order + new-order inserts.
        let ol_cnt = rng.gen_range(5..=15i64);
        let o_key = self.next_order_key.fetch_add(1, Ordering::Relaxed);
        self.orders.insert(Row::new(vec![
            Value::Int(o_key),
            Value::Int(d_key(w, d)),
            Value::Int(c_key(w, d, c)),
            Value::Int(w),
            Value::Int(d),
            Value::Int(o_id),
            Value::Int(c),
            Value::Int(ol_cnt),
            Value::Int(0), // o_carrier: 0 = undelivered
        ]))?;
        self.new_order
            .insert(Row::new(vec![Value::Int(o_key), Value::Int(d_key(w, d))]))?;

        // Order lines: read item, update stock, insert line.
        for _ in 0..ol_cnt {
            let i_id = rng.gen_range(1..=self.cfg.items);
            let qty = rng.gen_range(1..=10i64);
            let irow = self
                .item
                .get_by_pk(&Value::Int(i_id))?
                .ok_or_else(|| veridb_common::Error::KeyNotFound(format!("i{i_id}")))?;
            let price = irow[1].as_f64()?;
            self.stock.update_with(&Value::Int(s_key(w, i_id)), |row| {
                let mut vals = row.values().to_vec();
                let q = vals[3].as_i64().unwrap_or(0);
                vals[3] = Value::Int(if q - qty < 10 { q - qty + 91 } else { q - qty });
                vals[4] = Value::Int(vals[4].as_i64().unwrap_or(0) + qty);
                vals[5] = Value::Int(vals[5].as_i64().unwrap_or(0) + 1);
                *row = Row::new(vals);
            })?;
            let ol_key = self.next_ol_key.fetch_add(1, Ordering::Relaxed);
            self.order_line.insert(Row::new(vec![
                Value::Int(ol_key),
                Value::Int(o_key),
                Value::Int(i_id),
                Value::Int(qty),
                Value::Float(price * qty as f64),
            ]))?;
        }
        Ok(())
    }

    /// Execute one Payment transaction.
    pub fn payment(&self, rng: &mut StdRng) -> Result<()> {
        let w = rng.gen_range(1..=self.cfg.warehouses);
        let d = rng.gen_range(1..=self.cfg.districts_per_warehouse);
        let c = rng.gen_range(1..=self.cfg.customers_per_district);
        let amount = rng.gen_range(1.0..5_000.0f64);

        self.warehouse.update_with(&Value::Int(w), |row| {
            let mut vals = row.values().to_vec();
            vals[2] = Value::Float(vals[2].as_f64().unwrap_or(0.0) + amount);
            *row = Row::new(vals);
        })?;
        self.district.update_with(&Value::Int(d_key(w, d)), |row| {
            let mut vals = row.values().to_vec();
            vals[4] = Value::Float(vals[4].as_f64().unwrap_or(0.0) + amount);
            *row = Row::new(vals);
        })?;
        let ck = c_key(w, d, c);
        self.customer.update_with(&Value::Int(ck), |row| {
            let mut vals = row.values().to_vec();
            vals[4] = Value::Float(vals[4].as_f64().unwrap_or(0.0) - amount);
            vals[5] = Value::Float(vals[5].as_f64().unwrap_or(0.0) + amount);
            vals[6] = Value::Int(vals[6].as_i64().unwrap_or(0) + 1);
            *row = Row::new(vals);
        })?;
        let h_key = self.next_history_key.fetch_add(1, Ordering::Relaxed);
        self.history.insert(Row::new(vec![
            Value::Int(h_key),
            Value::Int(ck),
            Value::Float(amount),
        ]))?;
        Ok(())
    }

    /// Execute one OrderStatus transaction: a customer's most recent
    /// order and its lines (read-only; uses the o_ckey secondary chain).
    pub fn order_status(&self, rng: &mut StdRng) -> Result<()> {
        let w = rng.gen_range(1..=self.cfg.warehouses);
        let d = rng.gen_range(1..=self.cfg.districts_per_warehouse);
        let c = rng.gen_range(1..=self.cfg.customers_per_district);
        let ck = c_key(w, d, c);
        let _crow = self.customer.get_by_pk(&Value::Int(ck))?;
        // Most recent order: max o_id among the customer's orders.
        let mut last: Option<(i64, i64)> = None; // (o_id, o_key)
        for row in self.orders.scan_eq(2, &Value::Int(ck)) {
            let row = row?;
            let o_id = row[5].as_i64()?;
            let o_key = row[0].as_i64()?;
            if last.map(|(b, _)| o_id > b).unwrap_or(true) {
                last = Some((o_id, o_key));
            }
        }
        if let Some((_, o_key)) = last {
            // Fetch its lines through the ol_o_key chain.
            for row in self.order_line.scan_eq(1, &Value::Int(o_key)) {
                let _ = row?;
            }
        }
        Ok(())
    }

    /// Execute one Delivery transaction: deliver the oldest undelivered
    /// order of a district (consume its new_order entry, stamp a carrier,
    /// credit the customer with the order total).
    pub fn delivery(&self, rng: &mut StdRng) -> Result<()> {
        let w = rng.gen_range(1..=self.cfg.warehouses);
        let d = rng.gen_range(1..=self.cfg.districts_per_warehouse);
        let dk = d_key(w, d);
        // Oldest pending order = smallest no_key for this district.
        let mut oldest: Option<i64> = None;
        for row in self.new_order.scan_eq(1, &Value::Int(dk)) {
            let row = row?;
            let k = row[0].as_i64()?;
            if oldest.map(|b| k < b).unwrap_or(true) {
                oldest = Some(k);
            }
        }
        let Some(o_key) = oldest else { return Ok(()) }; // nothing pending
                                                         // Two clients can race to the same oldest order; the loser's
                                                         // delete reports KeyNotFound because the winner already consumed
                                                         // the new_order entry. That is a benign serialization of two
                                                         // deliveries (the order *was* delivered), not a failed
                                                         // transaction — only that error is absorbed, anything else (e.g.
                                                         // a verification alarm) still propagates.
        match self.new_order.delete(&Value::Int(o_key)) {
            Ok(_) => {}
            Err(veridb_common::Error::KeyNotFound(_)) => return Ok(()),
            Err(e) => return Err(e),
        }
        // Stamp the carrier and find the customer.
        let carrier = rng.gen_range(1..=10i64);
        let mut ckey = 0i64;
        self.orders.update_with(&Value::Int(o_key), |row| {
            ckey = row[2].as_i64().unwrap_or(0);
            let mut vals = row.values().to_vec();
            vals[8] = Value::Int(carrier);
            *row = Row::new(vals);
        })?;
        // Sum the order's lines and credit the customer.
        let mut total = 0.0;
        for row in self.order_line.scan_eq(1, &Value::Int(o_key)) {
            total += row?[4].as_f64()?;
        }
        self.customer.update_with(&Value::Int(ckey), |row| {
            let mut vals = row.values().to_vec();
            vals[4] = Value::Float(vals[4].as_f64().unwrap_or(0.0) + total);
            *row = Row::new(vals);
        })?;
        Ok(())
    }

    /// Execute one StockLevel transaction: count items under a threshold
    /// among the district's 20 most recent orders (read-only).
    pub fn stock_level(&self, rng: &mut StdRng) -> Result<()> {
        let w = rng.gen_range(1..=self.cfg.warehouses);
        let d = rng.gen_range(1..=self.cfg.districts_per_warehouse);
        let threshold = rng.gen_range(10..=20i64);
        let dk = d_key(w, d);
        let drow = self
            .district
            .get_by_pk(&Value::Int(dk))?
            .ok_or_else(|| veridb_common::Error::KeyNotFound(format!("d{dk}")))?;
        let next_o_id = drow[5].as_i64()?;
        // Orders of this district with o_id in the last-20 window.
        let mut low_items = std::collections::HashSet::new();
        for row in self.orders.scan_eq(1, &Value::Int(dk)) {
            let row = row?;
            if row[5].as_i64()? < next_o_id - 20 {
                continue;
            }
            let o_key = row[0].as_i64()?;
            for line in self.order_line.scan_eq(1, &Value::Int(o_key)) {
                let i_id = line?[2].as_i64()?;
                if let Some(srow) = self.stock.get_by_pk(&Value::Int(s_key(w, i_id)))? {
                    if srow[3].as_i64()? < threshold {
                        low_items.insert(i_id);
                    }
                }
            }
        }
        std::hint::black_box(low_items.len());
        Ok(())
    }

    /// One transaction of the standard TPC-C mix: 45% NewOrder,
    /// 43% Payment, 4% OrderStatus, 4% Delivery, 4% StockLevel.
    pub fn one_transaction(&self, rng: &mut StdRng) -> Result<()> {
        match rng.gen_range(0..100u8) {
            0..=44 => self.new_order(rng),
            45..=87 => self.payment(rng),
            88..=91 => self.order_status(rng),
            92..=95 => self.delivery(rng),
            _ => self.stock_level(rng),
        }
    }

    /// Run `clients` threads, each executing `txns_per_client`
    /// transactions. Returns aggregate throughput.
    pub fn run_clients(self: &Arc<Self>, clients: usize, txns_per_client: u64) -> TpccStats {
        let committed = Arc::new(AtomicU64::new(0));
        let start = Instant::now();
        let mut handles = Vec::with_capacity(clients);
        for t in 0..clients {
            let driver = Arc::clone(self);
            let committed = Arc::clone(&committed);
            handles.push(std::thread::spawn(move || {
                let mut rng =
                    StdRng::seed_from_u64(driver.cfg.seed ^ ((t as u64 + 1) * 0x9E3779B9));
                for _ in 0..txns_per_client {
                    if driver.one_transaction(&mut rng).is_ok() {
                        committed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("client thread");
        }
        TpccStats {
            committed: committed.load(Ordering::Relaxed),
            elapsed_secs: start.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridb_common::VeriDbConfig;

    fn db(partitions: usize) -> VeriDb {
        let mut cfg = VeriDbConfig::default();
        cfg.verify_every_ops = None;
        cfg.rsws_partitions = partitions;
        VeriDb::open(cfg).unwrap()
    }

    #[test]
    fn load_and_single_transactions() {
        let db = db(4);
        let driver = TpccDriver::load(&db, TpccConfig::tiny()).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            driver.new_order(&mut rng).unwrap();
            driver.payment(&mut rng).unwrap();
        }
        // Orders and lines accumulated.
        assert_eq!(driver.orders.row_count(), 20);
        assert!(driver.order_line.row_count() >= 20 * 5);
        assert_eq!(driver.history.row_count(), 20);
        db.verify_now().unwrap();
    }

    #[test]
    fn district_order_ids_are_unique_under_concurrency() {
        let db = db(8);
        let driver = Arc::new(TpccDriver::load(&db, TpccConfig::tiny()).unwrap());
        let stats = driver.run_clients(4, 25);
        assert_eq!(stats.committed, 100);
        // Every (w, d, o_id) must be unique.
        let rows = db
            .sql("SELECT o_w_id, o_d_id, o_id FROM orders")
            .unwrap()
            .rows;
        let mut seen = std::collections::HashSet::new();
        for r in &rows {
            let key = (
                r[0].as_i64().unwrap(),
                r[1].as_i64().unwrap(),
                r[2].as_i64().unwrap(),
            );
            assert!(seen.insert(key), "duplicate order id {key:?}");
        }
        db.verify_now().unwrap();
        assert!(db.poisoned().is_none());
    }

    #[test]
    fn order_status_delivery_stock_level_run_and_verify() {
        let db = db(4);
        let driver = TpccDriver::load(&db, TpccConfig::tiny()).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..30 {
            driver.new_order(&mut rng).unwrap();
        }
        let pending_before = driver.new_order.row_count();
        assert_eq!(pending_before, 30);
        for _ in 0..10 {
            driver.order_status(&mut rng).unwrap();
            driver.delivery(&mut rng).unwrap();
            driver.stock_level(&mut rng).unwrap();
        }
        // Deliveries consumed pending orders (some districts may have been
        // empty when drawn, so <=).
        let pending_after = driver.new_order.row_count();
        assert!(pending_after < pending_before);
        // Delivered orders carry a carrier stamp.
        let delivered = db
            .sql("SELECT COUNT(*) FROM orders WHERE o_carrier > 0")
            .unwrap()
            .rows[0][0]
            .as_i64()
            .unwrap();
        assert_eq!(delivered as u64, pending_before - pending_after);
        db.verify_now().unwrap();
    }

    #[test]
    fn full_mix_under_concurrency_verifies() {
        let db = db(8);
        let driver = Arc::new(TpccDriver::load(&db, TpccConfig::tiny()).unwrap());
        let stats = driver.run_clients(3, 60);
        assert_eq!(stats.committed, 180);
        db.verify_now().unwrap();
        assert!(db.poisoned().is_none());
    }

    #[test]
    fn payments_preserve_money_invariant() {
        let db = db(4);
        let driver = TpccDriver::load(&db, TpccConfig::tiny()).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            driver.payment(&mut rng).unwrap();
        }
        // Sum of history amounts equals total warehouse ytd growth.
        let hist: f64 = db.sql("SELECT SUM(h_amount) FROM history").unwrap().rows[0][0]
            .as_f64()
            .unwrap();
        let wh: f64 = db.sql("SELECT SUM(w_ytd) FROM warehouse").unwrap().rows[0][0]
            .as_f64()
            .unwrap();
        let base = 300_000.0 * driver.config().warehouses as f64;
        assert!(
            (wh - base - hist).abs() < 1e-6 * hist.max(1.0),
            "warehouse ytd {wh} vs base {base} + payments {hist}"
        );
        db.verify_now().unwrap();
    }
}
