//! Workload generators for the VeriDB evaluation (§6).
//!
//! Three workloads, matching the paper's three benchmark sections:
//!
//! - [`micro`] — the §6.1 micro-benchmark: a key-value-shaped table with
//!   4-byte integer keys and 500-byte string values, loaded with N initial
//!   pairs and driven by an even mix of Get/Insert/Delete/Update
//!   operations. Also drives the MB-Tree baseline for §6.2 / Figure 11.
//! - [`tpch`] — a from-scratch TPC-H generator for the tables and queries
//!   the paper evaluates (`lineitem`, `part`; Q1, Q6, Q19), §6.3 /
//!   Figure 12. Column domains and distributions follow the TPC-H
//!   specification; scale factors are reduced to laptop size.
//! - [`tpcc`] — a from-scratch TPC-C schema, loader, and NewOrder/Payment
//!   transaction driver for the §6.3 / Figure 13 throughput experiment.
//!
//! Everything is seeded and deterministic so benchmark runs are
//! reproducible.

pub mod micro;
pub mod tpcc;
pub mod tpch;

pub use micro::{MicroOp, MicroWorkload};
pub use tpcc::{TpccConfig, TpccDriver, TpccStats};
pub use tpch::{TpchConfig, TpchData};
