//! From-scratch TPC-H generator for the paper's Figure 12 experiment.
//!
//! The paper evaluates queries #1, #6 and #19, which touch exactly two
//! tables: `lineitem` and `part`. This module generates those tables with
//! the TPC-H specification's column domains and (simplified) value
//! distributions, at a configurable scale factor, and carries the three
//! query texts adapted to this engine's SQL subset:
//!
//! - `lineitem` gets a synthetic single-column primary key (`l_id`) since
//!   this engine's tables key on one column; the TPC-H composite key
//!   `(l_orderkey, l_linenumber)` is not used by Q1/Q6/Q19.
//! - Q19's three disjunctive branches each repeat the
//!   `p_partkey = l_partkey` equi-join condition, which the planner hoists
//!   (exactly the structure the paper exploits when comparing MergeJoin vs
//!   NestedLoopJoin plans for this query).
//!
//! At SF = 1 TPC-H's `lineitem` holds ~6 M rows; the default here is
//! laptop-scale and the benches state their SF in their output.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use veridb::VeriDb;
use veridb_common::{Result, Value};

/// TPC-H date helpers (days since 1970-01-01).
pub fn date(s: &str) -> i64 {
    match Value::parse_date(s).expect("valid literal") {
        Value::Date(d) => d as i64,
        _ => unreachable!(),
    }
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// Rows in `lineitem` (TPC-H SF1 ≈ 6 000 000; pick laptop scale).
    pub lineitem_rows: usize,
    /// Rows in `part` (TPC-H SF1 = 200 000; keep the 30:1 ratio roughly).
    pub part_rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            lineitem_rows: 60_000,
            part_rows: 2_000,
            seed: 19940101,
        }
    }
}

impl TpchConfig {
    /// A very small configuration for tests.
    pub fn tiny() -> Self {
        TpchConfig {
            lineitem_rows: 2_000,
            part_rows: 100,
            seed: 7,
        }
    }
}

/// In-memory generated rows, so tests can compute expected answers
/// independently of the engine.
#[derive(Debug, Clone)]
pub struct LineItem {
    /// Synthetic primary key.
    pub id: i64,
    /// Foreign key into `orders`.
    pub orderkey: i64,
    /// Foreign key into `part`.
    pub partkey: i64,
    /// Quantity, 1–50.
    pub quantity: f64,
    /// Extended price.
    pub extendedprice: f64,
    /// Discount, 0.00–0.10.
    pub discount: f64,
    /// Tax, 0.00–0.08.
    pub tax: f64,
    /// Return flag: `R`, `A`, or `N`.
    pub returnflag: String,
    /// Line status: `O` or `F`.
    pub linestatus: String,
    /// Ship date, days since epoch (1992-01-02 .. 1998-12-01).
    pub shipdate: i64,
    /// Ship instruction (4 values).
    pub shipinstruct: String,
    /// Ship mode (7 values).
    pub shipmode: String,
}

/// A generated `part` row.
#[derive(Debug, Clone)]
pub struct Part {
    /// Primary key.
    pub partkey: i64,
    /// `Brand#MN`, M,N ∈ 1..5.
    pub brand: String,
    /// Container (5 × 8 combinations).
    pub container: String,
    /// Size, 1–50.
    pub size: i64,
}

/// A generated `orders` row (used by the extra Q3 experiment).
#[derive(Debug, Clone)]
pub struct Order {
    /// Primary key.
    pub orderkey: i64,
    /// Foreign key into `customer`.
    pub custkey: i64,
    /// Order date, days since epoch.
    pub orderdate: i64,
    /// Ship priority (0 or 1).
    pub shippriority: i64,
}

/// A generated `customer` row.
#[derive(Debug, Clone)]
pub struct Customer {
    /// Primary key.
    pub custkey: i64,
    /// Market segment (5 values).
    pub mktsegment: String,
}

/// The generated dataset.
#[derive(Debug, Clone)]
pub struct TpchData {
    /// `lineitem` rows.
    pub lineitem: Vec<LineItem>,
    /// `part` rows.
    pub part: Vec<Part>,
    /// `orders` rows (≈ lineitem/4).
    pub orders: Vec<Order>,
    /// `customer` rows (≈ orders/10).
    pub customer: Vec<Customer>,
}

const SHIPINSTRUCT: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];
const SHIPMODE: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const CONTAINER_1: [&str; 5] = ["SM", "MED", "LG", "JUMBO", "WRAP"];
const CONTAINER_2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];
const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];

impl TpchData {
    /// Generate the dataset.
    pub fn generate(cfg: &TpchConfig) -> TpchData {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let start = date("1992-01-02");
        let end = date("1998-12-01");
        let current = date("1995-06-17"); // TPC-H currentdate anchor

        let part: Vec<Part> = (1..=cfg.part_rows as i64)
            .map(|partkey| Part {
                partkey,
                brand: format!("Brand#{}{}", rng.gen_range(1..=5u8), rng.gen_range(1..=5u8)),
                container: format!(
                    "{} {}",
                    CONTAINER_1[rng.gen_range(0..CONTAINER_1.len())],
                    CONTAINER_2[rng.gen_range(0..CONTAINER_2.len())]
                ),
                size: rng.gen_range(1..=50),
            })
            .collect();

        let n_orders = (cfg.lineitem_rows / 4).max(1) as i64;
        let n_customers = (n_orders / 10).max(1);
        let customer: Vec<Customer> = (1..=n_customers)
            .map(|custkey| Customer {
                custkey,
                mktsegment: SEGMENTS[rng.gen_range(0..SEGMENTS.len())].to_string(),
            })
            .collect();
        let orders: Vec<Order> = (1..=n_orders)
            .map(|orderkey| Order {
                orderkey,
                custkey: rng.gen_range(1..=n_customers),
                orderdate: rng.gen_range(start..=end - 151),
                shippriority: 0,
            })
            .collect();

        let lineitem: Vec<LineItem> = (1..=cfg.lineitem_rows as i64)
            .map(|id| {
                let quantity = rng.gen_range(1..=50) as f64;
                let orderkey = rng.gen_range(1..=n_orders);
                let partkey = rng.gen_range(1..=cfg.part_rows as i64);
                // retailprice-style formula, scaled by quantity.
                let price_per_unit = 900.0 + (partkey % 1000) as f64 / 10.0;
                let extendedprice = (quantity * price_per_unit * 100.0).round() / 100.0;
                let shipdate = rng.gen_range(start..=end);
                // Flags follow the spec's rule: shipped before the
                // current date → returnflag R/A, linestatus F; else N/O.
                let (returnflag, linestatus) = if shipdate <= current {
                    (
                        if rng.gen_bool(0.5) { "R" } else { "A" }.to_string(),
                        "F".to_string(),
                    )
                } else {
                    ("N".to_string(), "O".to_string())
                };
                LineItem {
                    id,
                    orderkey,
                    partkey,
                    quantity,
                    extendedprice,
                    discount: rng.gen_range(0..=10) as f64 / 100.0,
                    tax: rng.gen_range(0..=8) as f64 / 100.0,
                    returnflag,
                    linestatus,
                    shipdate,
                    shipinstruct: SHIPINSTRUCT[rng.gen_range(0..SHIPINSTRUCT.len())].to_string(),
                    shipmode: SHIPMODE[rng.gen_range(0..SHIPMODE.len())].to_string(),
                }
            })
            .collect();

        TpchData {
            lineitem,
            part,
            orders,
            customer,
        }
    }

    /// DDL for the four tables. `l_shipdate` carries a chain so Q1/Q6's
    /// date range predicates become verified range scans when selective;
    /// `o_orderdate` likewise for Q3.
    pub fn ddl() -> [&'static str; 4] {
        [
            "CREATE TABLE lineitem (
                l_id INT PRIMARY KEY,
                l_orderkey INT,
                l_partkey INT,
                l_quantity FLOAT,
                l_extendedprice FLOAT,
                l_discount FLOAT,
                l_tax FLOAT,
                l_returnflag TEXT,
                l_linestatus TEXT,
                l_shipdate DATE CHAINED,
                l_shipinstruct TEXT,
                l_shipmode TEXT
            )",
            "CREATE TABLE part (
                p_partkey INT PRIMARY KEY,
                p_brand TEXT,
                p_container TEXT,
                p_size INT
            )",
            "CREATE TABLE orders (
                o_orderkey INT PRIMARY KEY,
                o_custkey INT,
                o_orderdate DATE CHAINED,
                o_shippriority INT
            )",
            "CREATE TABLE customer (
                c_custkey INT PRIMARY KEY,
                c_mktsegment TEXT
            )",
        ]
    }

    /// Load the dataset into a database through the programmatic table
    /// API (bulk path; the SQL INSERT path works too but parses per row).
    pub fn load(&self, db: &VeriDb) -> Result<()> {
        for ddl in Self::ddl() {
            db.sql(ddl)?;
        }
        let li = db.table("lineitem")?;
        for l in &self.lineitem {
            li.insert(veridb_common::Row::new(vec![
                Value::Int(l.id),
                Value::Int(l.orderkey),
                Value::Int(l.partkey),
                Value::Float(l.quantity),
                Value::Float(l.extendedprice),
                Value::Float(l.discount),
                Value::Float(l.tax),
                Value::Str(l.returnflag.clone()),
                Value::Str(l.linestatus.clone()),
                Value::Date(l.shipdate as i32),
                Value::Str(l.shipinstruct.clone()),
                Value::Str(l.shipmode.clone()),
            ]))?;
        }
        let p = db.table("part")?;
        for r in &self.part {
            p.insert(veridb_common::Row::new(vec![
                Value::Int(r.partkey),
                Value::Str(r.brand.clone()),
                Value::Str(r.container.clone()),
                Value::Int(r.size),
            ]))?;
        }
        let o = db.table("orders")?;
        for r in &self.orders {
            o.insert(veridb_common::Row::new(vec![
                Value::Int(r.orderkey),
                Value::Int(r.custkey),
                Value::Date(r.orderdate as i32),
                Value::Int(r.shippriority),
            ]))?;
        }
        let c = db.table("customer")?;
        for r in &self.customer {
            c.insert(veridb_common::Row::new(vec![
                Value::Int(r.custkey),
                Value::Str(r.mktsegment.clone()),
            ]))?;
        }
        Ok(())
    }
}

/// TPC-H Query 1 (pricing summary report), adapted to the engine's SQL.
pub fn q1() -> &'static str {
    "SELECT l_returnflag, l_linestatus, \
       SUM(l_quantity) AS sum_qty, \
       SUM(l_extendedprice) AS sum_base_price, \
       SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, \
       SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge, \
       AVG(l_quantity) AS avg_qty, \
       AVG(l_extendedprice) AS avg_price, \
       AVG(l_discount) AS avg_disc, \
       COUNT(*) AS count_order \
     FROM lineitem \
     WHERE l_shipdate <= DATE '1998-09-02' \
     GROUP BY l_returnflag, l_linestatus \
     ORDER BY l_returnflag, l_linestatus"
}

/// TPC-H Query 6 (forecasting revenue change).
pub fn q6() -> &'static str {
    "SELECT SUM(l_extendedprice * l_discount) AS revenue \
     FROM lineitem \
     WHERE l_shipdate >= DATE '1994-01-01' \
       AND l_shipdate < DATE '1995-01-01' \
       AND l_discount BETWEEN 0.05 AND 0.07 \
       AND l_quantity < 24"
}

/// TPC-H Query 19 (discounted revenue): a disjunction of three
/// brand/container/quantity branches, each repeating the join condition.
pub fn q19() -> &'static str {
    "SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue \
     FROM lineitem, part \
     WHERE \
       (p_partkey = l_partkey \
        AND p_brand = 'Brand#12' \
        AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG') \
        AND l_quantity >= 1 AND l_quantity <= 11 \
        AND p_size BETWEEN 1 AND 5 \
        AND l_shipmode IN ('AIR', 'REG AIR') \
        AND l_shipinstruct = 'DELIVER IN PERSON') \
       OR \
       (p_partkey = l_partkey \
        AND p_brand = 'Brand#23' \
        AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK') \
        AND l_quantity >= 10 AND l_quantity <= 20 \
        AND p_size BETWEEN 1 AND 10 \
        AND l_shipmode IN ('AIR', 'REG AIR') \
        AND l_shipinstruct = 'DELIVER IN PERSON') \
       OR \
       (p_partkey = l_partkey \
        AND p_brand = 'Brand#34' \
        AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG') \
        AND l_quantity >= 20 AND l_quantity <= 30 \
        AND p_size BETWEEN 1 AND 15 \
        AND l_shipmode IN ('AIR', 'REG AIR') \
        AND l_shipinstruct = 'DELIVER IN PERSON')"
}

/// TPC-H Query 3 (shipping priority) — beyond the paper's evaluated set;
/// included to exercise a 3-way join with grouping, ordering and LIMIT.
pub fn q3() -> &'static str {
    "SELECT l_orderkey, \
       SUM(l_extendedprice * (1 - l_discount)) AS revenue, \
       o_orderdate, o_shippriority \
     FROM customer, orders, lineitem \
     WHERE c_mktsegment = 'BUILDING' \
       AND c_custkey = o_custkey \
       AND l_orderkey = o_orderkey \
       AND o_orderdate < DATE '1995-03-15' \
       AND l_shipdate > DATE '1995-03-15' \
     GROUP BY l_orderkey, o_orderdate, o_shippriority \
     ORDER BY revenue DESC, o_orderdate \
     LIMIT 10"
}

/// Reference implementation of Q3: the top-10 `(orderkey, revenue)` rows.
pub fn q3_expected(data: &TpchData) -> Vec<(i64, f64)> {
    use std::collections::HashMap;
    let cutoff = date("1995-03-15");
    let building: std::collections::HashSet<i64> = data
        .customer
        .iter()
        .filter(|c| c.mktsegment == "BUILDING")
        .map(|c| c.custkey)
        .collect();
    let orders: HashMap<i64, &Order> = data
        .orders
        .iter()
        .filter(|o| o.orderdate < cutoff && building.contains(&o.custkey))
        .map(|o| (o.orderkey, o))
        .collect();
    let mut rev: HashMap<i64, f64> = HashMap::new();
    for l in &data.lineitem {
        if l.shipdate > cutoff && orders.contains_key(&l.orderkey) {
            *rev.entry(l.orderkey).or_default() += l.extendedprice * (1.0 - l.discount);
        }
    }
    let mut out: Vec<(i64, f64)> = rev.into_iter().collect();
    out.sort_by(|a, b| {
        b.1.total_cmp(&a.1)
            .then(orders[&a.0].orderdate.cmp(&orders[&b.0].orderdate))
            .then(a.0.cmp(&b.0))
    });
    out.truncate(10);
    out
}

/// Reference (engine-independent) implementation of Q6 over the generated
/// rows, used to validate the engine's answer in tests and benches.
pub fn q6_expected(data: &TpchData) -> f64 {
    let lo = date("1994-01-01");
    let hi = date("1995-01-01");
    data.lineitem
        .iter()
        .filter(|l| {
            l.shipdate >= lo
                && l.shipdate < hi
                && l.discount >= 0.05 - 1e-9
                && l.discount <= 0.07 + 1e-9
                && l.quantity < 24.0
        })
        .map(|l| l.extendedprice * l.discount)
        .sum()
}

/// Reference implementation of Q19.
pub fn q19_expected(data: &TpchData) -> f64 {
    use std::collections::HashMap;
    let parts: HashMap<i64, &Part> = data.part.iter().map(|p| (p.partkey, p)).collect();
    let branch = |l: &LineItem,
                  p: &Part,
                  brand: &str,
                  containers: &[&str],
                  qlo: f64,
                  qhi: f64,
                  smax: i64| {
        p.brand == brand
            && containers.contains(&p.container.as_str())
            && l.quantity >= qlo
            && l.quantity <= qhi
            && p.size >= 1
            && p.size <= smax
            && (l.shipmode == "AIR" || l.shipmode == "REG AIR")
            && l.shipinstruct == "DELIVER IN PERSON"
    };
    data.lineitem
        .iter()
        .filter_map(|l| {
            let p = parts.get(&l.partkey)?;
            let hit = branch(
                l,
                p,
                "Brand#12",
                &["SM CASE", "SM BOX", "SM PACK", "SM PKG"],
                1.0,
                11.0,
                5,
            ) || branch(
                l,
                p,
                "Brand#23",
                &["MED BAG", "MED BOX", "MED PKG", "MED PACK"],
                10.0,
                20.0,
                10,
            ) || branch(
                l,
                p,
                "Brand#34",
                &["LG CASE", "LG BOX", "LG PACK", "LG PKG"],
                20.0,
                30.0,
                15,
            );
            hit.then_some(l.extendedprice * (1.0 - l.discount))
        })
        .sum()
}

/// Q1 reference aggregates per `(returnflag, linestatus)` group:
/// `(sum_qty, sum_base, sum_disc, sum_charge, count)`.
pub type Q1Groups = std::collections::BTreeMap<(String, String), (f64, f64, f64, f64, i64)>;

/// Reference implementation of Q1.
pub fn q1_expected(data: &TpchData) -> Q1Groups {
    let cutoff = date("1998-09-02");
    let mut out = Q1Groups::new();
    for l in &data.lineitem {
        if l.shipdate > cutoff {
            continue;
        }
        let e = out
            .entry((l.returnflag.clone(), l.linestatus.clone()))
            .or_insert((0.0, 0.0, 0.0, 0.0, 0));
        e.0 += l.quantity;
        e.1 += l.extendedprice;
        e.2 += l.extendedprice * (1.0 - l.discount);
        e.3 += l.extendedprice * (1.0 - l.discount) * (1.0 + l.tax);
        e.4 += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridb_common::VeriDbConfig;

    fn db() -> VeriDb {
        let mut cfg = VeriDbConfig::default();
        cfg.verify_every_ops = None;
        VeriDb::open(cfg).unwrap()
    }

    #[test]
    fn generator_is_deterministic_and_in_domain() {
        let cfg = TpchConfig::tiny();
        let a = TpchData::generate(&cfg);
        let b = TpchData::generate(&cfg);
        assert_eq!(a.lineitem.len(), b.lineitem.len());
        assert_eq!(a.lineitem[17].extendedprice, b.lineitem[17].extendedprice);
        for l in &a.lineitem {
            assert!((1.0..=50.0).contains(&l.quantity));
            assert!((0.0..=0.10).contains(&l.discount));
            assert!((0.0..=0.08).contains(&l.tax));
            assert!(matches!(l.returnflag.as_str(), "R" | "A" | "N"));
            assert!(matches!(l.linestatus.as_str(), "O" | "F"));
            assert!(l.partkey >= 1 && l.partkey <= cfg.part_rows as i64);
        }
        for p in &a.part {
            assert!(p.brand.starts_with("Brand#"));
            assert!((1..=50).contains(&p.size));
        }
    }

    #[test]
    fn returnflag_follows_shipdate_rule() {
        let data = TpchData::generate(&TpchConfig::tiny());
        let current = date("1995-06-17");
        for l in &data.lineitem {
            if l.shipdate <= current {
                assert_eq!(l.linestatus, "F");
            } else {
                assert_eq!(l.returnflag, "N");
                assert_eq!(l.linestatus, "O");
            }
        }
    }

    #[test]
    fn q6_engine_matches_reference() {
        let data = TpchData::generate(&TpchConfig::tiny());
        let db = db();
        data.load(&db).unwrap();
        let r = db.sql(q6()).unwrap();
        let got = match &r.rows[0][0] {
            Value::Float(f) => *f,
            Value::Null => 0.0,
            v => panic!("unexpected {v}"),
        };
        let want = q6_expected(&data);
        assert!(
            (got - want).abs() < 1e-6 * want.abs().max(1.0),
            "engine {got} vs reference {want}"
        );
        db.verify_now().unwrap();
    }

    #[test]
    fn q1_engine_matches_reference() {
        let data = TpchData::generate(&TpchConfig::tiny());
        let db = db();
        data.load(&db).unwrap();
        let r = db.sql(q1()).unwrap();
        let want = q1_expected(&data);
        assert_eq!(r.rows.len(), want.len());
        for row in &r.rows {
            let key = (
                row[0].as_str().unwrap().to_string(),
                row[1].as_str().unwrap().to_string(),
            );
            let exp = &want[&key];
            let sum_qty = row[2].as_f64().unwrap();
            let count = row[9].as_i64().unwrap();
            assert!((sum_qty - exp.0).abs() < 1e-6);
            assert_eq!(count, exp.4);
            let sum_charge = row[5].as_f64().unwrap();
            assert!((sum_charge - exp.3).abs() < 1e-6 * exp.3.abs().max(1.0));
        }
    }

    #[test]
    fn q3_engine_matches_reference() {
        let data = TpchData::generate(&TpchConfig::tiny());
        let db = db();
        data.load(&db).unwrap();
        let r = db.sql(q3()).unwrap();
        let want = q3_expected(&data);
        assert_eq!(r.rows.len(), want.len().min(10));
        for (row, (okey, rev)) in r.rows.iter().zip(&want) {
            assert_eq!(row[0].as_i64().unwrap(), *okey);
            let got = row[1].as_f64().unwrap();
            assert!(
                (got - rev).abs() < 1e-6 * rev.abs().max(1.0),
                "order {okey}: engine {got} vs reference {rev}"
            );
        }
        db.verify_now().unwrap();
    }

    #[test]
    fn q19_engine_matches_reference_under_both_join_plans() {
        let data = TpchData::generate(&TpchConfig::tiny());
        let db = db();
        data.load(&db).unwrap();
        let want = q19_expected(&data);
        for prefer in [
            veridb::PreferredJoin::Merge,
            veridb::PreferredJoin::NestedLoop,
            veridb::PreferredJoin::Auto,
        ] {
            let r = db
                .sql_with(
                    q19(),
                    &veridb::PlanOptions {
                        prefer_join: prefer,
                        ..Default::default()
                    },
                )
                .unwrap();
            let got = match &r.rows[0][0] {
                Value::Float(f) => *f,
                Value::Null => 0.0,
                v => panic!("unexpected {v}"),
            };
            assert!(
                (got - want).abs() < 1e-6 * want.abs().max(1.0),
                "{prefer:?}: engine {got} vs reference {want}"
            );
        }
    }
}
