//! The §6.1 micro-benchmark workload.
//!
//! "We use 4-byte integers as keys and 500-byte strings as values. The
//! initial database consists of N key-value pairs, where the keys are in
//! the range of 1…N and the values are generated randomly. … 10 thousand
//! operations in total, where the number of four kinds of operations are
//! approximately the same."
//!
//! The op stream is generated against a model so Inserts always use fresh
//! keys and Deletes always hit live keys, keeping every operation
//! meaningful. The same stream can drive a VeriDB [`Table`] or the
//! MB-Tree baseline, which is how Figure 11 compares them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use veridb_common::{ColumnDef, ColumnType, Result, Row, Value};
use veridb_mbtree::MbTree;
use veridb_storage::Table;

/// One operation of the mixed stream.
#[derive(Debug, Clone, PartialEq)]
pub enum MicroOp {
    /// Point read of a live key.
    Get(i64),
    /// Insert of a fresh key with a value.
    Insert(i64, String),
    /// Delete of a live key.
    Delete(i64),
    /// In-place value update of a live key.
    Update(i64, String),
}

/// Workload parameters (defaults follow the paper: N = 1M, 10k ops,
/// 500-byte values — scale N down for laptop runs).
#[derive(Debug, Clone)]
pub struct MicroWorkload {
    /// Initial key-value pairs (keys 1..=N).
    pub initial_pairs: i64,
    /// Operations in the mixed stream.
    pub operations: usize,
    /// Value length in bytes.
    pub value_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MicroWorkload {
    fn default() -> Self {
        MicroWorkload {
            initial_pairs: 1_000_000,
            operations: 10_000,
            value_len: 500,
            seed: 42,
        }
    }
}

impl MicroWorkload {
    /// A laptop-scale variant preserving the op mix.
    pub fn scaled(initial_pairs: i64, operations: usize) -> Self {
        MicroWorkload {
            initial_pairs,
            operations,
            ..Self::default()
        }
    }

    /// The table schema: `(k INT PRIMARY KEY, v TEXT)`.
    pub fn schema() -> veridb_common::Schema {
        veridb_common::Schema::new(vec![
            ColumnDef::new("k", ColumnType::Int),
            ColumnDef::new("v", ColumnType::Str),
        ])
        .expect("static schema")
    }

    fn value(&self, rng: &mut StdRng) -> String {
        let mut s = String::with_capacity(self.value_len);
        for _ in 0..self.value_len {
            s.push((b'a' + rng.gen_range(0..26u8)) as char);
        }
        s
    }

    /// Load the initial pairs into a VeriDB table.
    pub fn load_table(&self, table: &Arc<Table>) -> Result<()> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        for k in 1..=self.initial_pairs {
            let v = self.value(&mut rng);
            table.insert(Row::new(vec![Value::Int(k), Value::Str(v)]))?;
        }
        Ok(())
    }

    /// Load the initial pairs into the MB-Tree baseline.
    pub fn load_mbtree(&self, tree: &MbTree) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        for k in 1..=self.initial_pairs {
            let v = self.value(&mut rng);
            tree.insert(Value::Int(k), v.into_bytes());
        }
    }

    /// Generate the mixed op stream. Deterministic in the seed; each op
    /// kind appears with probability ~1/4.
    pub fn ops(&self) -> Vec<MicroOp> {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(1));
        let mut live: Vec<i64> = (1..=self.initial_pairs).collect();
        let mut next_key = self.initial_pairs + 1;
        let mut out = Vec::with_capacity(self.operations);
        while out.len() < self.operations {
            match rng.gen_range(0..4u8) {
                0 => {
                    if live.is_empty() {
                        continue;
                    }
                    let k = live[rng.gen_range(0..live.len())];
                    out.push(MicroOp::Get(k));
                }
                1 => {
                    let k = next_key;
                    next_key += 1;
                    live.push(k);
                    let v = self.value(&mut rng);
                    out.push(MicroOp::Insert(k, v));
                }
                2 => {
                    if live.is_empty() {
                        continue;
                    }
                    let i = rng.gen_range(0..live.len());
                    let k = live.swap_remove(i);
                    out.push(MicroOp::Delete(k));
                }
                _ => {
                    if live.is_empty() {
                        continue;
                    }
                    let k = live[rng.gen_range(0..live.len())];
                    let v = self.value(&mut rng);
                    out.push(MicroOp::Update(k, v));
                }
            }
        }
        out
    }

    /// Apply one op to a VeriDB table.
    pub fn apply_table(table: &Arc<Table>, op: &MicroOp) -> Result<()> {
        match op {
            MicroOp::Get(k) => {
                let row = table.get_by_pk(&Value::Int(*k))?;
                debug_assert!(row.is_some(), "micro workload Gets hit live keys");
                Ok(())
            }
            MicroOp::Insert(k, v) => table
                .insert(Row::new(vec![Value::Int(*k), Value::Str(v.clone())]))
                .map(|_| ()),
            MicroOp::Delete(k) => table.delete(&Value::Int(*k)).map(|_| ()),
            MicroOp::Update(k, v) => table.update(
                &Value::Int(*k),
                Row::new(vec![Value::Int(*k), Value::Str(v.clone())]),
            ),
        }
    }

    /// Apply one op to the MB-Tree baseline (clients verify the VO against
    /// the tracked root hash, as the MHT protocol requires).
    pub fn apply_mbtree(tree: &MbTree, op: &MicroOp) -> Result<()> {
        match op {
            MicroOp::Get(k) => {
                let root = tree.root_hash();
                let (_, vo) = tree.get(&Value::Int(*k));
                veridb_mbtree::verify_point(&vo, &root, &Value::Int(*k))?;
                Ok(())
            }
            MicroOp::Insert(k, v) => {
                tree.insert(Value::Int(*k), v.clone().into_bytes());
                Ok(())
            }
            MicroOp::Delete(k) => {
                tree.delete(&Value::Int(*k));
                Ok(())
            }
            MicroOp::Update(k, v) => {
                tree.update(&Value::Int(*k), v.clone().into_bytes());
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridb_common::VeriDbConfig;
    use veridb_enclave::Enclave;
    use veridb_wrcm::VerifiedMemory;

    fn small() -> MicroWorkload {
        MicroWorkload {
            initial_pairs: 50,
            operations: 200,
            value_len: 32,
            seed: 7,
        }
    }

    #[test]
    fn op_stream_is_deterministic_and_balanced() {
        let w = small();
        let a = w.ops();
        let b = w.ops();
        assert_eq!(a, b, "same seed, same stream");
        assert_eq!(a.len(), 200);
        let gets = a.iter().filter(|o| matches!(o, MicroOp::Get(_))).count();
        let inserts = a
            .iter()
            .filter(|o| matches!(o, MicroOp::Insert(..)))
            .count();
        let deletes = a.iter().filter(|o| matches!(o, MicroOp::Delete(_))).count();
        let updates = a
            .iter()
            .filter(|o| matches!(o, MicroOp::Update(..)))
            .count();
        for n in [gets, inserts, deletes, updates] {
            assert!(n > 200 / 8, "mix should be roughly even, got {n}");
        }
    }

    #[test]
    fn stream_replays_cleanly_on_table_and_mbtree() {
        let w = small();
        let enclave = Enclave::create("micro-test", 1 << 22, [11u8; 32]);
        let mut cfg = VeriDbConfig::default();
        cfg.verify_every_ops = None;
        let mem = VerifiedMemory::from_config(enclave, &cfg);
        let table = Table::create(Arc::clone(&mem), "kv", MicroWorkload::schema()).unwrap();
        w.load_table(&table).unwrap();
        assert_eq!(table.row_count(), 50);

        let tree = MbTree::new();
        w.load_mbtree(&tree);
        assert_eq!(tree.len(), 50);

        for op in w.ops() {
            MicroWorkload::apply_table(&table, &op).unwrap();
            MicroWorkload::apply_mbtree(&tree, &op).unwrap();
        }
        // Both sides agree on the surviving key set.
        assert_eq!(table.row_count() as usize, tree.len());
        mem.verify_now().unwrap();
    }

    #[test]
    fn values_have_requested_length() {
        let w = small();
        for op in w.ops() {
            if let MicroOp::Insert(_, v) | MicroOp::Update(_, v) = op {
                assert_eq!(v.len(), 32);
            }
        }
    }
}
