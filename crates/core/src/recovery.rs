//! Recovery from failure (§5.1).
//!
//! VeriDB's verifiability state — `h(RS)`, `h(WS)`, the timestamp counter
//! — lives inside the enclave and dies with power. But VeriDB is an
//! in-memory database: a power failure wipes the *database* too, so
//! re-establishing the enclave state rides along with ordinary recovery:
//! the portal replays data from a designated source (e.g. a remote
//! replica) **through the same protected write interfaces**, which
//! naturally rebuilds `h(WS)`; the always-running verifier then covers the
//! recovered state like any other.
//!
//! [`Replica`] is the designated source in this reproduction: a plain
//! snapshot of schemas and rows (what a remote replica would stream).
//! Recovery also advances the timestamp counter past the snapshot's
//! high-water mark — regressing it would itself be a rollback, which the
//! client-side sequence-number defense would catch.

use crate::VeriDb;
use veridb_common::{Result, Row, Schema, VeriDbConfig};

/// A replica snapshot: everything needed to rebuild the database through
/// the protected write path.
#[derive(Debug, Clone)]
pub struct Replica {
    /// `(table name, schema, rows)` triples.
    pub tables: Vec<(String, Schema, Vec<Row>)>,
    /// The portal sequence high-water mark at snapshot time. Recovery
    /// advances the new enclave's counter past it so sequence numbers
    /// never repeat across the failure.
    pub sequence_high_water: u64,
}

impl VeriDb {
    /// Snapshot the current state as a replica (what the remote replica
    /// would hold). Reads go through the verified scan path.
    pub fn snapshot_replica(&self) -> Result<Replica> {
        let mut tables = Vec::new();
        for name in self.catalog().table_names() {
            let t = self.catalog().table(&name)?;
            let rows = t.seq_scan().collect_rows()?;
            tables.push((name, t.schema().clone(), rows));
        }
        Ok(Replica {
            tables,
            sequence_high_water: self.enclave().current_timestamp(),
        })
    }

    /// Recover a fresh instance from a replica: create a new enclave (new
    /// keys — the old ones died with the machine), then replay the
    /// replica's rows through the protected insert path, rebuilding
    /// `h(WS)` as a side effect, exactly as §5.1 describes.
    ///
    /// This is the same replay engine disk recovery uses
    /// ([`replay_tables`]) — one replay path, two sources: an in-process
    /// [`Replica`] snapshot here, a sealed on-disk snapshot + WAL tail in
    /// [`VeriDb::open_durable`].
    pub fn recover_from_replica(config: VeriDbConfig, replica: &Replica) -> Result<VeriDb> {
        let db = VeriDb::open(config)?;
        replay_tables(
            &db,
            replica
                .tables
                .iter()
                .map(|(n, s, r)| (n.clone(), s.clone(), r.clone())),
        )?;
        // Never reuse sequence numbers from before the failure.
        db.enclave()
            .advance_timestamp_to(replica.sequence_high_water);
        // The recovered state verifies like any other.
        db.verify_now()?;
        Ok(db)
    }
}

/// The single snapshot-replay engine: rebuild tables through the
/// protected write path (create + verified inserts), so `h(WS)` is
/// re-established as a side effect. Both recovery sources — in-process
/// [`Replica`] snapshots and `veridb-log`'s sealed on-disk snapshots —
/// route through here.
pub(crate) fn replay_tables(
    db: &VeriDb,
    tables: impl IntoIterator<Item = (String, Schema, Vec<Row>)>,
) -> Result<()> {
    for (name, schema, rows) in tables {
        let table = db.catalog().create_table(&name, schema)?;
        for row in rows {
            table.insert(row)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridb_common::Value;

    fn populated() -> VeriDb {
        let mut cfg = VeriDbConfig::default();
        cfg.verify_every_ops = None;
        let db = VeriDb::open(cfg).unwrap();
        db.sql("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
            .unwrap();
        db.sql("INSERT INTO t VALUES (1,'a'),(2,'b'),(3,'c')")
            .unwrap();
        db.sql("CREATE TABLE u (k INT PRIMARY KEY, n INT CHAINED)")
            .unwrap();
        db.sql("INSERT INTO u VALUES (10, 7),(20, 3)").unwrap();
        db
    }

    #[test]
    fn snapshot_and_recover_round_trip() {
        let db = populated();
        let replica = db.snapshot_replica().unwrap();
        assert_eq!(replica.tables.len(), 2);

        let mut cfg = VeriDbConfig::default();
        cfg.verify_every_ops = None;
        let recovered = VeriDb::recover_from_replica(cfg, &replica).unwrap();
        let r = recovered.sql("SELECT * FROM t").unwrap();
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[1][1], Value::Str("b".into()));
        let r = recovered.sql("SELECT n FROM u WHERE k = 10").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(7));
        // The recovered instance verifies and keeps working.
        recovered.sql("INSERT INTO t VALUES (4,'d')").unwrap();
        recovered.verify_now().unwrap();
    }

    #[test]
    fn recovery_advances_sequence_counter() {
        let db = populated();
        // Burn some sequence numbers.
        for _ in 0..100 {
            db.enclave().next_timestamp();
        }
        let replica = db.snapshot_replica().unwrap();
        let mut cfg = VeriDbConfig::default();
        cfg.verify_every_ops = None;
        let recovered = VeriDb::recover_from_replica(cfg, &replica).unwrap();
        assert!(
            recovered.enclave().current_timestamp() > replica.sequence_high_water,
            "recovered counter must be past the snapshot high-water mark"
        );
    }
}
