//! # VeriDB — an SGX-based verifiable database
//!
//! A from-scratch Rust reproduction of *VeriDB: An SGX-based Verifiable
//! Database* (Zhou, Cai, Peng, Wang, Ma, Li — SIGMOD 2021).
//!
//! VeriDB is a relational database whose query results a distrustful
//! client can verify, built around one architectural idea: split the
//! verification of a cloud database into
//!
//! 1. a **data-intensive but logically simple storage layer**, protected
//!    by an offline memory-checking protocol whose per-operation cost is a
//!    small constant (two PRF evaluations), and
//! 2. a **logically complex but memory-light query engine**, protected by
//!    running inside an SGX enclave,
//!
//! connected by a thin, efficiently verifiable interface — the access
//! methods, whose `⟨key, nKey⟩` evidence proves both *integrity* and
//! *completeness* of everything the engine reads.
//!
//! This crate is the user-facing facade. The heavy lifting lives in the
//! layer crates, re-exported below:
//!
//! | Crate | Role |
//! |---|---|
//! | `veridb-enclave` | simulated SGX substrate: trust domain, EPC budget, call-gate costs, attestation, sealing, MACs |
//! | `veridb-wrcm` | write-read consistent memory: PRFs, RS/WS digests, slotted pages, the non-quiescent deferred verifier |
//! | `veridb-storage` | page-structured verifiable storage: chain records, verified tables, untrusted indexes |
//! | `veridb-query` | SQL front end, planner, volcano operators, authenticated query portal, client library |
//! | `veridb-mbtree` | the MB-Tree baseline the paper compares against |
//!
//! ## Quickstart
//!
//! ```
//! use veridb::{VeriDb, VeriDbConfig};
//!
//! let db = VeriDb::open(VeriDbConfig::default()).unwrap();
//! db.sql("CREATE TABLE quote (id INT PRIMARY KEY, count INT, price INT)").unwrap();
//! db.sql("INSERT INTO quote VALUES (1, 100, 100), (2, 100, 200)").unwrap();
//! let r = db.sql("SELECT id, count FROM quote WHERE id = 2").unwrap();
//! assert_eq!(r.rows.len(), 1);
//! // Deferred verification: h(RS) must equal h(WS) across all partitions.
//! db.verify_now().unwrap();
//! ```

pub mod durable;
pub mod recovery;

pub use durable::DurableState;
pub use recovery::Replica;
pub use veridb_log::{LogRecord, Wal};
pub use veridb_common::{
    ColumnDef, ColumnType, Error, Metrics, MetricsSnapshot, OperatorKind, PrfBackend, Result, Row,
    Schema, Value, VeriDbConfig,
};
pub use veridb_enclave::{CostSnapshot, Enclave, QuotingEnclave};
pub use veridb_query::{
    Client, EndorsedResult, PlanOptions, PreferredJoin, QueryEngine, QueryPortal, QueryResult,
    SignedQuery,
};
pub use veridb_storage::{Catalog, Table};
pub use veridb_wrcm::{BackgroundVerifier, VerifiedMemory, VerifyReport};

use parking_lot::Mutex;
use std::sync::Arc;

/// An open VeriDB instance: enclave + verified memory + catalog + engine,
/// with an optional background verifier.
pub struct VeriDb {
    enclave: Enclave,
    mem: Arc<VerifiedMemory>,
    engine: Arc<QueryEngine>,
    verifier: Mutex<Option<BackgroundVerifier>>,
    config: VeriDbConfig,
    /// Durability subsystem (WAL + sealed epochs); `None` for the
    /// classic in-memory instance.
    durable: Option<Arc<durable::DurableState>>,
}

impl VeriDb {
    /// Open a database with OS-random enclave keys. Starts the background
    /// verifier if `config.verify_every_ops` is set. With
    /// `config.data_dir` set, routes to [`VeriDb::open_durable`]: the
    /// instance is WAL-backed and crash-recoverable, and its keys come
    /// from sealed entropy in the data directory instead of fresh OS
    /// randomness.
    pub fn open(config: VeriDbConfig) -> Result<VeriDb> {
        if config.data_dir.is_some() {
            return Self::open_durable(config);
        }
        let mut entropy = [0u8; 32];
        rand::RngCore::fill_bytes(&mut rand::thread_rng(), &mut entropy);
        Self::open_with_entropy(config, "veridb", entropy)
    }

    /// Open with explicit enclave identity and key entropy (tests and
    /// recovery use this for determinism).
    pub fn open_with_entropy(
        config: VeriDbConfig,
        identity: &str,
        entropy: [u8; 32],
    ) -> Result<VeriDb> {
        config.validate()?;
        // One shared scheduler pool per process: request the configured
        // size (0 = auto: VERIDB_POOL → VERIDB_WORKERS → cores) before
        // anything submits work. The first open wins; conflicting later
        // sizes warn inside `configure`.
        let pool = if config.pool_threads > 0 {
            veridb_common::sched::configure(config.pool_threads)
        } else {
            veridb_common::sched::configure(veridb_common::sched::default_pool_threads())
        };
        if config.workers > pool {
            static OVERSUBSCRIBE_WARNED: std::sync::Once = std::sync::Once::new();
            OVERSUBSCRIBE_WARNED.call_once(|| {
                eprintln!(
                    "warning: --workers {} exceeds the shared scheduler pool of {pool} threads; \
                     per-query parallelism is capped at the pool size (the legacy per-query \
                     pools that would have oversubscribed no longer exist)",
                    config.workers
                );
            });
        }
        let enclave = Enclave::create(identity, config.epc_budget, entropy);
        let mem = VerifiedMemory::from_config(enclave.clone(), &config);
        let catalog = Arc::new(Catalog::new(Arc::clone(&mem)));
        let engine = Arc::new(QueryEngine::new(catalog));
        engine.set_workers(config.workers);
        let db = VeriDb {
            enclave,
            mem,
            engine,
            verifier: Mutex::new(None),
            config,
            durable: None,
        };
        if db.config.verify_every_ops.is_some() {
            db.start_verifier();
        }
        Ok(db)
    }

    /// Execute one SQL statement with default planning options.
    pub fn sql(&self, query: &str) -> Result<QueryResult> {
        self.engine.execute(query)
    }

    /// Execute one SQL statement with explicit planning options.
    pub fn sql_with(&self, query: &str, opts: &PlanOptions) -> Result<QueryResult> {
        self.engine.execute_with(query, opts)
    }

    /// Render the physical plan of a SELECT (EXPLAIN).
    pub fn explain(&self, query: &str, opts: &PlanOptions) -> Result<String> {
        self.engine.explain(query, opts)
    }

    /// The catalog of tables.
    pub fn catalog(&self) -> &Arc<Catalog> {
        self.engine.catalog()
    }

    /// Direct handle to a table (for programmatic access beside SQL).
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.catalog().table(name)
    }

    /// The verified memory underneath (benchmarks, attack tests).
    pub fn memory(&self) -> &Arc<VerifiedMemory> {
        &self.mem
    }

    /// The enclave trust anchor.
    pub fn enclave(&self) -> &Enclave {
        &self.enclave
    }

    /// The query engine.
    pub fn engine(&self) -> &Arc<QueryEngine> {
        &self.engine
    }

    /// The configuration this instance was opened with.
    pub fn config(&self) -> &VeriDbConfig {
        &self.config
    }

    /// Open an authenticated query portal for a client channel, with the
    /// replay-window capacity this instance was configured with
    /// (`replay_window` / `VERIDB_REPLAY_WINDOW`).
    pub fn portal(&self, channel: &str) -> QueryPortal {
        QueryPortal::with_replay_window(
            Arc::clone(&self.engine),
            Arc::clone(&self.mem),
            channel,
            self.config.replay_window,
        )
    }

    /// Set the worker-pool size for morsel-driven parallel query
    /// execution (overrides the `workers` value the database was opened
    /// with; `1` reverts to fully serial plans).
    pub fn set_workers(&self, workers: usize) {
        self.engine.set_workers(workers);
    }

    /// Run a full synchronous verification pass over every RSWS partition.
    /// Uses `config.workers` concurrent verifiers over disjoint partitions
    /// when it is greater than one.
    pub fn verify_now(&self) -> Result<VerifyReport> {
        self.mem.verify_now()
    }

    /// Run a full verification pass with `threads` concurrent verifiers
    /// over disjoint partitions (§3.3's "multiple verifiers").
    pub fn verify_now_parallel(&self, threads: usize) -> Result<VerifyReport> {
        self.mem.verify_now_parallel(threads)
    }

    /// First verification failure observed, if any.
    pub fn poisoned(&self) -> Option<Error> {
        self.mem.poisoned()
    }

    /// Start the non-quiescent background verifier (idempotent).
    pub fn start_verifier(&self) {
        self.start_verifier_pool(1);
    }

    /// Start a pool of `threads` background verifiers over disjoint
    /// partitions (idempotent; §3.3's "multiple verifiers").
    pub fn start_verifier_pool(&self, threads: usize) {
        let mut v = self.verifier.lock();
        if v.is_none() {
            *v = Some(BackgroundVerifier::spawn_pool(
                Arc::clone(&self.mem),
                threads,
            ));
        }
    }

    /// Stop the background verifier, returning its first failure if any.
    pub fn stop_verifier(&self) -> Option<Error> {
        self.verifier.lock().take().and_then(|v| v.stop())
    }

    /// Simulated SGX cost counters (ECalls, EPC swaps, PRF evaluations…).
    pub fn costs(&self) -> CostSnapshot {
        self.enclave.cost().snapshot()
    }

    /// One coherent sample of the `veridb-obs` registry: protected-op and
    /// scan counters from every layer, merged with the enclave cost
    /// substrate (PRF evaluations, ECalls, EPC high-water mark). Cheap —
    /// a relaxed load per counter — and safe to poll continuously. All
    /// zeros (except the substrate figures) when `config.metrics` is off.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.enclave.metrics_snapshot()
    }

    /// Per-partition verification lag: `(epoch, protected ops since that
    /// partition's last epoch close)`.
    pub fn verification_lag(&self) -> Vec<(u64, u64)> {
        self.mem.verification_lag()
    }

    /// Enable (or disable with `None`) spilling of large query
    /// intermediate state into the verified storage instead of
    /// enclave-resident buffers — the §5.4 alternative to SGX secure swap.
    pub fn set_spill_threshold(&self, bytes: Option<usize>) {
        self.engine.set_spill_threshold(bytes);
    }
}

impl Drop for VeriDb {
    fn drop(&mut self) {
        let _ = self.stop_verifier();
        // Push buffered log records to disk; a clean shutdown should not
        // depend on the next commit's group-commit leader.
        if let Some(d) = &self.durable {
            let _ = d.wal().flush_all();
        }
    }
}

impl std::fmt::Debug for VeriDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VeriDb")
            .field("tables", &self.catalog().table_names())
            .field("pages", &self.mem.page_count())
            .field("partitions", &self.mem.partition_count())
            .finish()
    }
}
