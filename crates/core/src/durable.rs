//! Durable operation: WAL-backed crash recovery with rollback defense.
//!
//! Opening a database with `config.data_dir` set routes through
//! [`VeriDb::open_durable`], which wires the `veridb-log` subsystem under
//! the engine:
//!
//! 1. **Root entropy survives restarts.** The enclave's root secret is
//!    sealed to `enclave.seed.sealed` under the *fuse* sealing key
//!    ([`Enclave::fuse_seal_key`]) — the one key derivable before the
//!    enclave exists. A restarted server therefore derives the same WAL
//!    chain key, manifest sealing key, counter key, and client channel
//!    keys, so clients that pinned the enclave across the crash keep
//!    their pins (and their `SeqIntervals`).
//! 2. **Every committed mutation is logged.** A [`WalSink`] is installed
//!    as the engine's durability sink: records append (MAC-chained) under
//!    the commit-order lock, and the commit does not return until its
//!    record is fsynced (group commit inside the WAL).
//! 3. **Epochs are sealed.** Every `snapshot_every_records` durable
//!    records — and once at the end of every recovery — the engine is
//!    quiesced, the tables are snapshotted through the verified scan
//!    path, a manifest (snapshot hash + WAL tip + chain MAC + timestamp
//!    high-water + logical state fingerprint) is sealed to disk, and the
//!    trusted monotonic counter is bumped as the commit point.
//!
//! ## The recovery state machine
//!
//! ```text
//!    open counter ──── E = 0 ──► WAL has records? ──yes──► ROLLBACK
//!         │                          │ no                (counter deleted)
//!         E > 0                      ▼
//!         │                      fresh start (crash before/during the
//!         ▼                      first seal leaves only dangling files,
//!    manifest-E missing? ──────► which the next seal overwrites)
//!         │ no          yes ──► ROLLBACK (host hid the sealed epoch)
//!         ▼
//!    unseal manifest ── tamper ─► AUTH FAILED
//!         ▼
//!    snapshot hash mismatch? ──► ROLLBACK (substituted snapshot)
//!         ▼
//!    WAL shorter than manifest.last_lsn,
//!    or chain MAC at last_lsn differs? ──► ROLLBACK (truncated/forked log)
//!         ▼
//!    replay snapshot through the protected write path
//!         ▼
//!    verify_now(): fingerprint ≠ sealed fingerprint? ──► TAMPER
//!         ▼
//!    replay WAL tail (lsn > last_lsn) through the engine
//!         ▼
//!    advance timestamps past every high-water mark + the boot floor
//!         ▼
//!    seal epoch E+1 (files first, counter bump last), install the sink
//! ```
//!
//! Every refusal is loud: a host that substitutes older state gets
//! `RollbackDetected` or `AuthFailed`, never a silently stale database.

use crate::recovery::replay_tables;
use crate::VeriDb;
use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;
use veridb_common::{Error, Metrics, Result, VeriDbConfig};
use veridb_enclave::mac::sha256;
use veridb_enclave::sealing::Sealer;
use veridb_enclave::Enclave;
use veridb_log::{
    decode_snapshot, encode_snapshot, EpochStore, LogRecord, Manifest, TableSnapshot,
    TrustedCounter, Wal, WalOptions, GENESIS_MAC,
};
use veridb_query::{DurabilitySink, QueryEngine};
use veridb_wrcm::VerifiedMemory;

/// Sealed root entropy, persisted so keys survive restarts. Public so a
/// warm replica can plant the primary's sealed blob before its first
/// durable open (both sides must derive identical keys).
pub const SEED_FILE: &str = "enclave.seed.sealed";
/// The enclave identity durable databases run under. Must be stable
/// across restarts — the fuse sealing key binds to it.
const DURABLE_IDENTITY: &str = "veridb";
/// Timestamps jump to `boot_epoch × 2^40` on every recovery, so even a
/// write the high-water tracking somehow missed can never collide with a
/// pre-crash sequence number.
const BOOT_EPOCH_SHIFT: u32 = 40;

/// Everything the durability subsystem keeps alive next to the engine.
pub struct DurableState {
    wal: Arc<Wal>,
    store: EpochStore,
    counter: Mutex<TrustedCounter>,
    manifest_sealer: Sealer,
    /// The sealed-seed file's bytes, handed to warm replicas so they can
    /// come up with the same enclave keys.
    seed_bytes: Vec<u8>,
    /// Durable LSN covered by the newest sealed epoch.
    last_seal_lsn: AtomicU64,
    /// Seal cadence in records (0 = only at recovery).
    snapshot_every: u64,
    /// Whether this instance accepts and logs its own writes (primary)
    /// or only applies shipped records (warm replica).
    primary: AtomicBool,
    /// Guards against concurrent cadence seals.
    sealing: AtomicBool,
    engine: Arc<QueryEngine>,
    mem: Arc<VerifiedMemory>,
    enclave: Enclave,
    metrics: Arc<Metrics>,
}

impl std::fmt::Debug for DurableState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableState")
            .field("epoch", &self.epoch())
            .field("durable_lsn", &self.wal.durable_lsn())
            .field("primary", &self.primary.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl DurableState {
    /// The write-ahead log (shipping and tests read through this).
    pub fn wal(&self) -> &Arc<Wal> {
        &self.wal
    }

    /// Current sealed epoch (= trusted counter value).
    pub fn epoch(&self) -> u64 {
        self.counter.lock().value()
    }

    /// The sealed root-entropy blob a warm replica needs before it can
    /// open its own data directory with matching keys. Sealed under the
    /// fuse key — useless to anyone who cannot launch the same enclave.
    pub fn seed_bytes(&self) -> &[u8] {
        &self.seed_bytes
    }

    /// Whether this instance logs its own writes (vs. replica mode).
    pub fn is_primary(&self) -> bool {
        self.primary.load(Ordering::Acquire)
    }

    /// Record how far a replica lags the durable tip (the
    /// `log.ship_lag_records` gauge).
    pub fn note_ship_lag(&self, acked_lsn: u64) {
        let durable = self.wal.durable_lsn();
        self.metrics
            .log_ship_lag_records
            .set(durable.saturating_sub(acked_lsn));
    }

    /// Seal a new epoch if the cadence says so. Called after commits and
    /// after applying shipped batches; cheap when there is nothing to do.
    fn maybe_seal(self: &Arc<Self>) -> Result<()> {
        if self.snapshot_every == 0 {
            return Ok(());
        }
        let durable = self.wal.durable_lsn();
        if durable.saturating_sub(self.last_seal_lsn.load(Ordering::Acquire)) < self.snapshot_every
        {
            return Ok(());
        }
        if self.sealing.swap(true, Ordering::AcqRel) {
            return Ok(()); // another committer is already sealing
        }
        let res = self.engine.quiesce(|| self.seal_epoch());
        self.sealing.store(false, Ordering::Release);
        res
    }

    /// Seal the current state as a new epoch. Caller must hold the
    /// engine's commit-order lock (via `quiesce`) or be single-threaded
    /// recovery: nothing may mutate between the WAL flush and the
    /// snapshot scan.
    fn seal_epoch(&self) -> Result<()> {
        let (last_lsn, chain_mac) = self.wal.flush_all()?;
        let catalog = self.engine.catalog();
        let mut tables = Vec::new();
        for name in catalog.table_names() {
            let t = catalog.table(&name)?;
            let rows = t.seq_scan().collect_rows()?;
            tables.push(TableSnapshot {
                name,
                schema: t.schema().clone(),
                rows,
            });
        }
        let snap = encode_snapshot(&tables);
        // The pass both checks h(RS)=h(WS) one more time and yields the
        // logical fingerprint the manifest pins.
        let report = self.mem.verify_now()?;
        let epoch = self.counter.lock().value() + 1;
        let manifest = Manifest {
            epoch,
            last_lsn,
            chain_mac,
            seq_high_water: self.enclave.current_timestamp(),
            snapshot_hash: sha256(&[&snap]),
            state_fingerprint: report.fingerprint,
        };
        self.store.write_epoch(&manifest, &self.manifest_sealer, &snap)?;
        // Commit point: only the counter bump makes the epoch real.
        self.counter.lock().advance_to(epoch)?;
        self.last_seal_lsn.store(last_lsn, Ordering::Release);
        self.metrics.snapshot_written.inc();
        self.metrics.snapshot_bytes.add(snap.len() as u64);
        Ok(())
    }
}

/// The engine's durability sink: forwards committed statements into the
/// WAL and triggers cadence seals once their records are durable.
struct WalSink {
    state: Weak<DurableState>,
}

impl WalSink {
    fn state(&self) -> Result<Arc<DurableState>> {
        self.state
            .upgrade()
            .ok_or_else(|| Error::Io("durability sink detached (database closed)".into()))
    }
}

impl DurabilitySink for WalSink {
    fn append(&self, kind: u8, sql: &str) -> Result<u64> {
        let st = self.state()?;
        let epoch = st.counter.lock().value();
        let seq = st.enclave.current_timestamp();
        st.wal.append(epoch, seq, kind, sql)
    }

    fn wait_durable(&self, ticket: u64) -> Result<()> {
        let st = self.state()?;
        st.wal.wait_durable(ticket)?;
        st.maybe_seal()
    }
}

/// Read the sealed root entropy from `dir`, creating it on first open.
/// Returns `(entropy, sealed file bytes)`.
fn load_or_create_seed(dir: &Path, fuse: &Sealer) -> Result<([u8; 32], Vec<u8>)> {
    let path = dir.join(SEED_FILE);
    match std::fs::read(&path) {
        Ok(bytes) => {
            let blob = veridb_enclave::sealing::SealedBlob::from_bytes(&bytes)?;
            let plain = fuse.unseal(&blob)?;
            let entropy: [u8; 32] = plain
                .as_slice()
                .try_into()
                .map_err(|_| Error::AuthFailed("sealed seed has the wrong length".into()))?;
            Ok((entropy, bytes))
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            let mut entropy = [0u8; 32];
            rand::RngCore::fill_bytes(&mut rand::thread_rng(), &mut entropy);
            let mut nonce = [0u8; 16];
            rand::RngCore::fill_bytes(&mut rand::thread_rng(), &mut nonce);
            let bytes = fuse.seal(&entropy, nonce).to_bytes();
            veridb_log::store::write_file_atomic(&path, &bytes)?;
            Ok((entropy, bytes))
        }
        Err(e) => Err(Error::Io(format!("read {}: {e}", path.display()))),
    }
}

impl VeriDb {
    /// Open a database whose state survives crashes: write-ahead logged,
    /// periodically sealed, and — crucially — *provably fresh* after a
    /// restart (see the module docs for the state machine). Requires
    /// `config.data_dir`; [`VeriDb::open`] routes here automatically when
    /// it is set. With `config.replica_of` also set the instance comes up
    /// in replica mode: it recovers its local state but does not log its
    /// own writes until [`promote`](VeriDb::promote)d.
    pub fn open_durable(config: VeriDbConfig) -> Result<VeriDb> {
        config.validate()?;
        let dir = PathBuf::from(config.data_dir.clone().ok_or_else(|| {
            Error::InvalidArgument("open_durable needs config.data_dir".into())
        })?);
        std::fs::create_dir_all(&dir)
            .map_err(|e| Error::Io(format!("create data dir {}: {e}", dir.display())))?;
        let replica = config.replica_of.is_some();

        // (1) Same keys across restarts: recover the sealed root entropy.
        let fuse = Sealer::new(Enclave::fuse_seal_key(DURABLE_IDENTITY));
        let (entropy, seed_bytes) = load_or_create_seed(&dir, &fuse)?;
        let mut db = VeriDb::open_with_entropy(config, DURABLE_IDENTITY, entropy)?;
        let metrics = Arc::clone(db.enclave().metrics());

        // (2) Open the rollback anchors and the log.
        let counter = TrustedCounter::open(&dir, db.enclave().mac_key("trusted-counter"))?;
        let store = EpochStore::new(&dir)?;
        let manifest_sealer = Sealer::new(db.enclave().derive_key("manifest-seal"));
        let wal_opts = WalOptions {
            segment_bytes: db.config().wal_segment_bytes,
            group_commit_window: Duration::from_micros(db.config().group_commit_window_us),
        };
        let (wal, records) = Wal::open(
            &dir,
            db.enclave().mac_key("wal-chain"),
            wal_opts,
            Arc::clone(&metrics),
        )?;

        // (3) The recovery state machine.
        let epoch = counter.value();
        let mut last_seal_lsn = 0u64;
        if epoch == 0 {
            if !records.is_empty() {
                // Acknowledged writes exist on disk but the counter says
                // no epoch was ever sealed — every open seals one, so the
                // host deleted the counter to stage a rollback.
                metrics.snapshot_rollbacks_refused.inc();
                return Err(Error::RollbackDetected { sequence: 0 });
            }
            // Fresh directory (a crash before the first counter bump can
            // leave dangling snap/manifest files; the seal below makes
            // epoch 1 real and supersedes them).
        } else {
            let manifest = match store.read_manifest(epoch, &manifest_sealer) {
                Ok(m) => m,
                Err(e) => {
                    if matches!(e, Error::RollbackDetected { .. }) {
                        metrics.snapshot_rollbacks_refused.inc();
                    }
                    return Err(e);
                }
            };
            let snap_bytes = match store.read_snapshot(&manifest) {
                Ok(b) => b,
                Err(e) => {
                    if matches!(e, Error::RollbackDetected { .. }) {
                        metrics.snapshot_rollbacks_refused.inc();
                    }
                    return Err(e);
                }
            };
            // The WAL must still contain the exact prefix the snapshot
            // covers: at least last_lsn records, chained to the sealed
            // tip MAC. (`Wal::open` already verified the chain from
            // genesis, so one MAC equality pins the whole prefix.)
            let tip_matches = if manifest.last_lsn == 0 {
                manifest.chain_mac == GENESIS_MAC
            } else {
                records
                    .get(manifest.last_lsn as usize - 1)
                    .is_some_and(|r| r.mac == manifest.chain_mac)
            };
            if !tip_matches {
                metrics.snapshot_rollbacks_refused.inc();
                return Err(Error::RollbackDetected { sequence: epoch });
            }
            // Replay the snapshot through the protected write path …
            let tables = decode_snapshot(&snap_bytes)?;
            replay_tables(
                &db,
                tables.into_iter().map(|t| (t.name, t.schema, t.rows)),
            )?;
            metrics.snapshot_replays.inc();
            // … and hold it against the sealed fingerprint before
            // touching the tail: same records, or loud failure.
            let report = db.memory().verify_now()?;
            if report.fingerprint != manifest.state_fingerprint {
                return Err(Error::TamperDetected(
                    "recovered snapshot's state fingerprint diverges from the sealed manifest"
                        .into(),
                ));
            }
            // Replay the tail. Statement errors are tolerated: a failed
            // statement stays in the log by write-ahead discipline, and
            // deterministic re-failure reproduces its (non-)effects.
            for rec in &records[manifest.last_lsn as usize..] {
                let _ = db.engine().execute_replay(&rec.sql);
                db.enclave().advance_timestamp_to(rec.seq_high_water);
            }
            db.enclave().advance_timestamp_to(manifest.seq_high_water);
            last_seal_lsn = manifest.last_lsn;
        }

        // (4) Boot floor: no sequence number can repeat across the crash
        // even if a high-water mark was somehow stale.
        let boot_epoch = epoch + 1;
        db.enclave()
            .advance_timestamp_to(boot_epoch.saturating_mul(1u64 << BOOT_EPOCH_SHIFT));

        let state = Arc::new(DurableState {
            wal: Arc::new(wal),
            store,
            counter: Mutex::new(counter),
            manifest_sealer,
            seed_bytes,
            last_seal_lsn: AtomicU64::new(last_seal_lsn),
            snapshot_every: db.config().snapshot_every_records,
            primary: AtomicBool::new(!replica),
            sealing: AtomicBool::new(false),
            engine: Arc::clone(db.engine()),
            mem: Arc::clone(db.memory()),
            enclave: db.enclave().clone(),
            metrics,
        });

        // (5) Seal the recovered state (files first, counter bump last)
        // so the *next* crash recovers from here, then start logging.
        state.seal_epoch()?;
        if !replica {
            db.engine().set_sink(Some(Arc::new(WalSink {
                state: Arc::downgrade(&state),
            })));
        }
        db.durable = Some(state);
        Ok(db)
    }

    /// The durability subsystem, if this instance was opened durable.
    pub fn durable(&self) -> Option<&Arc<DurableState>> {
        self.durable.as_ref()
    }

    /// Quiesce the engine and seal the current state as a new epoch now
    /// (tests, clean shutdown, operator request).
    pub fn seal_now(&self) -> Result<()> {
        let d = self
            .durable
            .as_ref()
            .ok_or_else(|| Error::InvalidArgument("not a durable database".into()))?;
        self.engine().quiesce(|| d.seal_epoch())
    }

    /// Apply a batch of shipped log records on a warm replica: verify
    /// each against the local chain, extend the local WAL byte-identical,
    /// and replay through the engine. Returns the new durable LSN (the
    /// value to ACK — records are never acknowledged before they are on
    /// the replica's own disk).
    pub fn apply_shipped(&self, recs: &[LogRecord]) -> Result<u64> {
        let d = self
            .durable
            .as_ref()
            .ok_or_else(|| Error::InvalidArgument("not a durable database".into()))?;
        if recs.is_empty() {
            return Ok(d.wal.durable_lsn());
        }
        let tip = self.engine().quiesce(|| {
            let mut tip = 0;
            for rec in recs {
                tip = d.wal.append_raw(rec)?;
                let _ = self.engine().execute_replay(&rec.sql);
                self.enclave().advance_timestamp_to(rec.seq_high_water);
            }
            Ok(tip)
        })?;
        d.wal.wait_durable(tip)?;
        d.maybe_seal()?;
        Ok(d.wal.durable_lsn())
    }

    /// Promote a warm replica to primary: start logging its own writes.
    /// Idempotent; a no-op on an instance that is already primary.
    pub fn promote(&self) -> Result<()> {
        let d = self
            .durable
            .as_ref()
            .ok_or_else(|| Error::InvalidArgument("not a durable database".into()))?;
        if d.primary.swap(true, Ordering::AcqRel) {
            return Ok(());
        }
        self.engine().set_sink(Some(Arc::new(WalSink {
            state: Arc::downgrade(d),
        })));
        // Fresh epoch at the promotion boundary: failover clients resume
        // against sealed state.
        self.seal_now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridb_common::Value;

    fn tmpdir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "veridb-durable-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn durable_config(dir: &Path) -> VeriDbConfig {
        let mut cfg = VeriDbConfig::default();
        cfg.verify_every_ops = None;
        cfg.data_dir = Some(dir.display().to_string());
        // Keep commit latency negligible in tests.
        cfg.group_commit_window_us = 0;
        cfg
    }

    #[test]
    fn durable_round_trip_across_restart() {
        let dir = tmpdir("roundtrip");
        let key_probe;
        {
            let db = VeriDb::open(durable_config(&dir)).unwrap();
            db.sql("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)").unwrap();
            db.sql("INSERT INTO t VALUES (1,'a'),(2,'b')").unwrap();
            db.sql("UPDATE t SET v = 'bb' WHERE id = 2").unwrap();
            db.sql("DELETE FROM t WHERE id = 1").unwrap();
            key_probe = db.enclave().derive_key("probe");
            // No clean seal: drop() only flushes the WAL, so reopen must
            // replay the tail beyond the recovery-time epoch.
        }
        let db = VeriDb::open(durable_config(&dir)).unwrap();
        assert_eq!(
            db.enclave().derive_key("probe"),
            key_probe,
            "sealed entropy must reproduce the same enclave keys"
        );
        let r = db.sql("SELECT id, v FROM t").unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(2));
        assert_eq!(r.rows[0][1], Value::Str("bb".into()));
        db.verify_now().unwrap();
        // And the recovered instance keeps accepting durable writes.
        db.sql("INSERT INTO t VALUES (3,'c')").unwrap();
        assert!(db.durable().unwrap().wal().durable_lsn() >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sealed_epoch_skips_tail_replay() {
        let dir = tmpdir("sealed");
        {
            let db = VeriDb::open(durable_config(&dir)).unwrap();
            db.sql("CREATE TABLE t (id INT PRIMARY KEY, n INT)").unwrap();
            for i in 0..20 {
                db.sql(&format!("INSERT INTO t VALUES ({i}, {})", i * 10)).unwrap();
            }
            db.seal_now().unwrap();
            let d = db.durable().unwrap();
            assert!(d.epoch() >= 2, "open + explicit seal = at least 2 epochs");
        }
        let db = VeriDb::open(durable_config(&dir)).unwrap();
        let r = db.sql("SELECT n FROM t WHERE id = 7").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(70));
        db.verify_now().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deleted_counter_is_rollback_detected() {
        let dir = tmpdir("ctr-del");
        {
            let db = VeriDb::open(durable_config(&dir)).unwrap();
            db.sql("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
            db.sql("INSERT INTO t VALUES (1)").unwrap();
        }
        std::fs::remove_file(dir.join("counter.bin")).unwrap();
        let err = VeriDb::open(durable_config(&dir)).unwrap_err();
        assert_eq!(err, Error::RollbackDetected { sequence: 0 });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hidden_manifest_is_rollback_detected() {
        let dir = tmpdir("man-del");
        let epoch;
        {
            let db = VeriDb::open(durable_config(&dir)).unwrap();
            db.sql("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
            db.sql("INSERT INTO t VALUES (1)").unwrap();
            db.seal_now().unwrap();
            epoch = db.durable().unwrap().epoch();
        }
        // Host hides the newest sealed epoch, hoping for replay of an
        // older one.
        std::fs::remove_file(dir.join(format!("manifest-{epoch:020}.sealed"))).unwrap();
        let err = VeriDb::open(durable_config(&dir)).unwrap_err();
        assert_eq!(err, Error::RollbackDetected { sequence: epoch });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn substituted_snapshot_is_rollback_detected() {
        let dir = tmpdir("snap-sub");
        let (e1, e2);
        {
            let db = VeriDb::open(durable_config(&dir)).unwrap();
            db.sql("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
            db.sql("INSERT INTO t VALUES (1)").unwrap();
            db.seal_now().unwrap();
            e1 = db.durable().unwrap().epoch();
            db.sql("INSERT INTO t VALUES (2)").unwrap();
            db.seal_now().unwrap();
            e2 = db.durable().unwrap().epoch();
        }
        assert!(e2 > e1);
        // Host swaps the old snapshot in under the new epoch's name.
        std::fs::copy(
            dir.join(format!("snap-{e1:020}.bin")),
            dir.join(format!("snap-{e2:020}.bin")),
        )
        .unwrap();
        let err = VeriDb::open(durable_config(&dir)).unwrap_err();
        assert_eq!(err, Error::RollbackDetected { sequence: e2 });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_wal_tail_is_rollback_detected() {
        let dir = tmpdir("wal-trunc");
        {
            let db = VeriDb::open(durable_config(&dir)).unwrap();
            db.sql("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
            for i in 0..10 {
                db.sql(&format!("INSERT INTO t VALUES ({i})")).unwrap();
            }
            db.seal_now().unwrap();
        }
        // Host deletes the log wholesale; the sealed manifest still
        // demands its prefix.
        for entry in std::fs::read_dir(&dir).unwrap().flatten() {
            if entry.file_name().to_string_lossy().starts_with("wal-") {
                std::fs::remove_file(entry.path()).unwrap();
            }
        }
        let err = VeriDb::open(durable_config(&dir)).unwrap_err();
        assert!(
            matches!(err, Error::RollbackDetected { .. }),
            "got {err:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_replica_applies_shipped_records_and_promotes() {
        let pdir = tmpdir("ship-primary");
        let rdir = tmpdir("ship-replica");
        let primary = VeriDb::open(durable_config(&pdir)).unwrap();
        primary.sql("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)").unwrap();
        primary.sql("INSERT INTO t VALUES (1,'a'),(2,'b')").unwrap();

        // Seed hand-off: the replica gets the sealed entropy blob so it
        // derives the same keys (and can verify the shipped chain).
        std::fs::write(
            rdir.join(SEED_FILE),
            primary.durable().unwrap().seed_bytes(),
        )
        .unwrap();
        let mut rcfg = durable_config(&rdir);
        rcfg.replica_of = Some("unused:0".into());
        let replica = VeriDb::open(rcfg).unwrap();

        let recs = primary
            .durable()
            .unwrap()
            .wal()
            .records_from(1, 1024)
            .unwrap();
        assert!(!recs.is_empty());
        let acked = replica.apply_shipped(&recs).unwrap();
        assert_eq!(acked, recs.last().unwrap().lsn);
        let r = replica.sql("SELECT v FROM t WHERE id = 2").unwrap();
        assert_eq!(r.rows[0][0], Value::Str("b".into()));

        // Failover: promote and keep writing durably.
        replica.promote().unwrap();
        replica.sql("INSERT INTO t VALUES (3,'c')").unwrap();
        assert_eq!(replica.sql("SELECT * FROM t").unwrap().rows.len(), 3);
        replica.verify_now().unwrap();
        let _ = std::fs::remove_dir_all(&pdir);
        let _ = std::fs::remove_dir_all(&rdir);
    }
}
