//! Unified error type for the VeriDB workspace.
//!
//! Errors fall into three families with very different consequences:
//!
//! 1. **Routine errors** (`PageFull`, `KeyNotFound`, …) — normal control
//!    flow; callers retry, split pages, or report "no rows".
//! 2. **Client-side misuse** (`Parse`, `Plan`, `Type`, …) — the query or
//!    schema is malformed.
//! 3. **Security violations** (`VerificationFailed`, `TamperDetected`,
//!    `AuthFailed`, `RollbackDetected`, `ReplayDetected`) — evidence of a
//!    misbehaving host. These must never be silently swallowed; the paper's
//!    whole point is that they are *detectable with evidence*.

use std::fmt;

/// Convenience alias used across all VeriDB crates.
pub type Result<T> = std::result::Result<T, Error>;

/// The error type shared by every VeriDB crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    // ---- routine storage / engine errors -------------------------------
    /// The target page has insufficient contiguous free space.
    PageFull {
        page: u64,
        needed: usize,
        available: usize,
    },
    /// The requested page id is not registered with the verified memory.
    PageNotFound(u64),
    /// The requested slot does not exist or has been deleted.
    SlotNotFound { page: u64, slot: u16 },
    /// No record with the given key exists (point lookups that require one).
    KeyNotFound(String),
    /// A record with the same key already exists in a chained column.
    DuplicateKey(String),
    /// A named table does not exist in the catalog.
    TableNotFound(String),
    /// A table with the same name already exists.
    TableExists(String),
    /// A named column does not exist in the schema.
    ColumnNotFound(String),
    /// The enclave's EPC budget is exhausted and paging is disabled.
    EpcExhausted { requested: usize, budget: usize },

    // ---- client-side misuse --------------------------------------------
    /// SQL lexing/parsing failure.
    Parse(String),
    /// Query planning failure (unsupported construct, unresolved name, ...).
    Plan(String),
    /// Type error during planning or evaluation.
    Type(String),
    /// Row/record encoding or decoding failed (corrupt or truncated bytes).
    Codec(String),
    /// Invalid configuration (e.g. zero RSWS partitions).
    Config(String),
    /// Generic invalid-argument error.
    InvalidArgument(String),
    /// A local storage I/O failure (write-ahead log, snapshot files).
    /// Like [`Error::Net`] this is an availability problem, not a
    /// security violation: a disk that *lies* is caught by the MAC chain
    /// and sealed manifests, a disk that merely *fails* surfaces here.
    Io(String),
    /// A network-transport failure (socket I/O, framing, timeouts) with
    /// enough context to debug it: the peer address and the operation
    /// that failed. Deliberately *not* a security violation — the framing
    /// layer is untrusted and lossy by assumption; integrity rests on the
    /// portal MACs, and transport errors are retryable.
    Net {
        /// Peer address (or listen address) the operation involved.
        peer: String,
        /// What was being attempted ("read frame", "connect", …).
        op: String,
        /// Underlying failure detail.
        detail: String,
    },
    /// The server's admission queue is full: the query was *not* executed
    /// (its qid is unspent) and the client may retry it verbatim. Like
    /// [`Error::Net`] this is a load condition, never a security
    /// violation — the portal never saw the query.
    Overloaded {
        /// Requests already queued when this one was refused.
        queued: usize,
        /// The configured admission-queue limit.
        limit: usize,
    },

    // ---- security violations -------------------------------------------
    /// Deferred verification found `h(RS) != h(WS)`: the untrusted memory
    /// was modified outside the protected primitives.
    VerificationFailed { partition: usize, epoch: u64 },
    /// An access-method evidence check failed: the untrusted index or host
    /// returned data inconsistent with the `⟨key, nKey⟩` evidence.
    TamperDetected(String),
    /// A MAC did not verify, or an enclave attestation check failed.
    AuthFailed(String),
    /// The client observed a repeated sequence number: the server rolled
    /// the database back to an earlier state (§5.1 rollback defense).
    RollbackDetected { sequence: u64 },
    /// The portal saw a query id it has already executed (replay attempt).
    ReplayDetected { qid: u64 },
}

impl Error {
    /// True if this error is evidence of host misbehavior rather than a
    /// routine failure. Callers surfacing results to clients must treat
    /// these as alarms, never as empty results.
    pub fn is_security_violation(&self) -> bool {
        matches!(
            self,
            Error::VerificationFailed { .. }
                | Error::TamperDetected(_)
                | Error::AuthFailed(_)
                | Error::RollbackDetected { .. }
                | Error::ReplayDetected { .. }
        )
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::PageFull {
                page,
                needed,
                available,
            } => write!(
                f,
                "page {page} full: need {needed} bytes, {available} available"
            ),
            Error::PageNotFound(p) => write!(f, "page {p} not registered"),
            Error::SlotNotFound { page, slot } => {
                write!(f, "slot {slot} not found in page {page}")
            }
            Error::KeyNotFound(k) => write!(f, "key not found: {k}"),
            Error::DuplicateKey(k) => write!(f, "duplicate key: {k}"),
            Error::TableNotFound(t) => write!(f, "table not found: {t}"),
            Error::TableExists(t) => write!(f, "table already exists: {t}"),
            Error::ColumnNotFound(c) => write!(f, "column not found: {c}"),
            Error::EpcExhausted { requested, budget } => write!(
                f,
                "EPC exhausted: requested {requested} bytes of {budget} budget"
            ),
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Plan(m) => write!(f, "plan error: {m}"),
            Error::Type(m) => write!(f, "type error: {m}"),
            Error::Codec(m) => write!(f, "codec error: {m}"),
            Error::Config(m) => write!(f, "config error: {m}"),
            Error::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            Error::Io(m) => write!(f, "I/O error: {m}"),
            Error::Net { peer, op, detail } => {
                write!(f, "network error ({op}, peer {peer}): {detail}")
            }
            Error::Overloaded { queued, limit } => write!(
                f,
                "server overloaded: {queued} requests queued (limit {limit}); \
                 retry the same signed query"
            ),
            Error::VerificationFailed { partition, epoch } => write!(
                f,
                "VERIFICATION FAILED: h(RS) != h(WS) for RSWS partition \
                 {partition} at epoch {epoch}; untrusted memory was tampered"
            ),
            Error::TamperDetected(m) => write!(f, "TAMPER DETECTED: {m}"),
            Error::AuthFailed(m) => write!(f, "authentication failed: {m}"),
            Error::RollbackDetected { sequence } => {
                write!(f, "ROLLBACK DETECTED: sequence number {sequence} repeated")
            }
            Error::ReplayDetected { qid } => {
                write!(f, "query replay detected: qid {qid} already executed")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn security_violations_are_flagged() {
        assert!(Error::VerificationFailed {
            partition: 0,
            epoch: 3
        }
        .is_security_violation());
        assert!(Error::TamperDetected("x".into()).is_security_violation());
        assert!(Error::AuthFailed("bad mac".into()).is_security_violation());
        assert!(Error::RollbackDetected { sequence: 7 }.is_security_violation());
        assert!(Error::ReplayDetected { qid: 9 }.is_security_violation());
    }

    #[test]
    fn net_errors_are_transport_not_security() {
        let e = Error::Net {
            peer: "10.0.0.7:5433".into(),
            op: "read frame".into(),
            detail: "connection reset".into(),
        };
        assert!(!e.is_security_violation());
        let s = e.to_string();
        assert!(s.contains("10.0.0.7:5433"));
        assert!(s.contains("read frame"));
        assert!(s.contains("connection reset"));
    }

    #[test]
    fn overloaded_is_retryable_not_security() {
        let e = Error::Overloaded {
            queued: 256,
            limit: 256,
        };
        assert!(!e.is_security_violation());
        let s = e.to_string();
        assert!(s.contains("256"));
        assert!(s.contains("retry"));
    }

    #[test]
    fn routine_errors_are_not_flagged() {
        assert!(!Error::KeyNotFound("k".into()).is_security_violation());
        assert!(!Error::PageFull {
            page: 1,
            needed: 10,
            available: 2
        }
        .is_security_violation());
        assert!(!Error::Parse("x".into()).is_security_violation());
        assert!(!Error::Io("disk full".into()).is_security_violation());
    }

    #[test]
    fn display_is_informative() {
        let e = Error::VerificationFailed {
            partition: 2,
            epoch: 14,
        };
        let s = e.to_string();
        assert!(s.contains("partition 2"));
        assert!(s.contains("epoch 14"));
        assert!(s.contains("VERIFICATION FAILED"));
    }
}
