//! Relational schemas.
//!
//! A [`Schema`] is an ordered list of [`ColumnDef`]s. Columns flagged
//! `chained` carry a verifiable `⟨key, nKey⟩` chain in the storage layer
//! (Definition 5.2 in the paper): point lookups and range scans on those
//! columns come with completeness evidence. The first chained column is the
//! primary key; its values must be unique.

use crate::error::{Error, Result};
use crate::value::{ColumnType, Value};

/// One column of a table.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ColumnDef {
    /// Column name (case-insensitive at the SQL layer; stored lower-case).
    pub name: String,
    /// Declared type.
    pub ty: ColumnType,
    /// Whether the storage layer maintains a `⟨key, nKey⟩` chain on this
    /// column, enabling verified point/range access (Def. 5.2).
    pub chained: bool,
}

impl ColumnDef {
    /// A plain (un-chained) column.
    pub fn new(name: &str, ty: ColumnType) -> Self {
        ColumnDef {
            name: name.to_ascii_lowercase(),
            ty,
            chained: false,
        }
    }

    /// A chained column (verified access methods available).
    pub fn chained(name: &str, ty: ColumnType) -> Self {
        ColumnDef {
            name: name.to_ascii_lowercase(),
            ty,
            chained: true,
        }
    }
}

/// An ordered list of columns describing a relation.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Build a schema. The first column is implicitly the primary key and is
    /// forced to be chained (the paper's Definition 4.2 requires a primary
    /// key chain on every relation).
    pub fn new(mut columns: Vec<ColumnDef>) -> Result<Self> {
        if columns.is_empty() {
            return Err(Error::Config("schema needs at least one column".into()));
        }
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            if !seen.insert(c.name.clone()) {
                return Err(Error::Config(format!("duplicate column {}", c.name)));
            }
        }
        columns[0].chained = true;
        Ok(Schema { columns })
    }

    /// All columns, in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns (cannot happen post-`new`).
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of `name`, or an error naming the missing column.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        let lname = name.to_ascii_lowercase();
        self.columns
            .iter()
            .position(|c| c.name == lname)
            .ok_or_else(|| Error::ColumnNotFound(name.to_owned()))
    }

    /// The column definition at `idx`.
    pub fn column(&self, idx: usize) -> &ColumnDef {
        &self.columns[idx]
    }

    /// Indices of all chained columns, in schema order. Index 0 (the
    /// primary key) is always first.
    pub fn chained_columns(&self) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.chained)
            .map(|(i, _)| i)
            .collect()
    }

    /// Primary-key column index (always 0).
    pub fn primary_key(&self) -> usize {
        0
    }

    /// Validate and coerce a row against this schema.
    pub fn check_row(&self, row: Vec<Value>) -> Result<Vec<Value>> {
        if row.len() != self.columns.len() {
            return Err(Error::Type(format!(
                "row has {} values, schema has {} columns",
                row.len(),
                self.columns.len()
            )));
        }
        row.into_iter()
            .zip(&self.columns)
            .map(|(v, c)| {
                if c.chained && v.is_null() {
                    return Err(Error::Type(format!(
                        "chained column {} cannot be NULL",
                        c.name
                    )));
                }
                v.coerce(c.ty)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            ColumnDef::new("id", ColumnType::Int),
            ColumnDef::chained("count", ColumnType::Int),
            ColumnDef::new("price", ColumnType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn first_column_becomes_primary_chain() {
        let s = sample();
        assert!(s.column(0).chained);
        assert_eq!(s.chained_columns(), vec![0, 1]);
        assert_eq!(s.primary_key(), 0);
    }

    #[test]
    fn name_lookup_is_case_insensitive() {
        let s = sample();
        assert_eq!(s.index_of("ID").unwrap(), 0);
        assert_eq!(s.index_of("Price").unwrap(), 2);
        assert!(matches!(s.index_of("nope"), Err(Error::ColumnNotFound(_))));
    }

    #[test]
    fn duplicate_columns_rejected() {
        assert!(Schema::new(vec![
            ColumnDef::new("a", ColumnType::Int),
            ColumnDef::new("A", ColumnType::Str),
        ])
        .is_err());
    }

    #[test]
    fn empty_schema_rejected() {
        assert!(Schema::new(vec![]).is_err());
    }

    #[test]
    fn check_row_coerces_and_validates() {
        let s = sample();
        let ok = s
            .check_row(vec![Value::Int(1), Value::Int(10), Value::Int(5)])
            .unwrap();
        assert_eq!(ok[2], Value::Float(5.0)); // Int coerced to Float column

        // wrong arity
        assert!(s.check_row(vec![Value::Int(1)]).is_err());
        // NULL in a chained column
        assert!(s
            .check_row(vec![Value::Int(1), Value::Null, Value::Float(1.0)])
            .is_err());
        // un-coercible type
        assert!(s
            .check_row(vec![
                Value::Str("x".into()),
                Value::Int(1),
                Value::Float(1.0)
            ])
            .is_err());
    }
}
