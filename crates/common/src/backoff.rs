//! Bounded exponential backoff for benign-race retries.
//!
//! The verified read paths retry a handful of times when the untrusted
//! index and the chain evidence disagree (a concurrent splice is
//! publishing), and the wrcm verifier tests wait for a background scan to
//! land. A bare `yield_now` per attempt burns a full core under
//! contention — with the morsel worker pool that is a whole worker doing
//! nothing useful. [`Backoff`] escalates instead: a few pause-spins, then
//! scheduler yields, then short sleeps with exponentially growing (capped)
//! duration, so a stalled peer gets cycles to finish while the waiter
//! stays cheap.
//!
//! This lives in `veridb-common` so both `veridb-storage` and
//! `veridb-wrcm` share one implementation; `storage::backoff` re-exports
//! it for existing callers.

use std::time::Duration;

/// Spin-only rounds before yielding.
const SPIN_ROUNDS: u32 = 2;
/// Yield rounds before sleeping.
const YIELD_ROUNDS: u32 = 2;
/// First sleep duration; doubles per sleeping round.
const BASE_SLEEP_US: u64 = 10;
/// Longest single sleep.
const MAX_SLEEP_US: u64 = 500;

/// Retry attempts the verified read paths make before classifying a
/// persistent index/chain disagreement as tampering. Sized so the final
/// attempts sit in the sleeping stage of the backoff, giving a descheduled
/// splicer time to publish.
pub const RETRY_ATTEMPTS: usize = 6;

/// Escalating wait strategy: spin → yield → short capped sleeps.
#[derive(Debug, Default)]
pub struct Backoff {
    round: u32,
}

impl Backoff {
    /// Fresh backoff (next wait is a spin).
    pub fn new() -> Self {
        Self::default()
    }

    /// Wait once, escalating with each call.
    pub fn wait(&mut self) {
        let round = self.round;
        self.round = self.round.saturating_add(1);
        if round < SPIN_ROUNDS {
            for _ in 0..(1 << (round + 4)) {
                std::hint::spin_loop();
            }
        } else if round < SPIN_ROUNDS + YIELD_ROUNDS {
            std::thread::yield_now();
        } else {
            let exp = (round - SPIN_ROUNDS - YIELD_ROUNDS).min(16);
            let us = (BASE_SLEEP_US << exp).min(MAX_SLEEP_US);
            std::thread::sleep(Duration::from_micros(us));
        }
    }

    /// Wait until `cond` returns true or `attempts` waits have elapsed.
    /// Returns whether the condition was observed. Convenience for test
    /// and shutdown paths that poll a flag published by another thread.
    pub fn wait_for(mut cond: impl FnMut() -> bool, attempts: u32) -> bool {
        let mut b = Backoff::new();
        for _ in 0..attempts {
            if cond() {
                return true;
            }
            b.wait();
        }
        cond()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_without_panicking() {
        let mut b = Backoff::new();
        for _ in 0..8 {
            b.wait(); // spins, yields, then sleeps ≤ MAX_SLEEP_US each
        }
        assert!(b.round >= 8);
    }

    #[test]
    fn sleep_durations_are_capped() {
        // Round counter saturates and the sleep shift is clamped, so even
        // absurd round counts stay within MAX_SLEEP_US.
        let mut b = Backoff {
            round: u32::MAX - 1,
        };
        b.wait();
        b.wait();
        assert_eq!(b.round, u32::MAX);
    }

    #[test]
    fn wait_for_observes_flag() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let flag = AtomicBool::new(false);
        assert!(!Backoff::wait_for(|| flag.load(Ordering::Relaxed), 3));
        flag.store(true, Ordering::Relaxed);
        assert!(Backoff::wait_for(|| flag.load(Ordering::Relaxed), 3));
    }
}
