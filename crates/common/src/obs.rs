//! `veridb-obs`: lock-free observability primitives for the verification
//! pipeline.
//!
//! The paper's central trade-off (Fig. 10) is verification frequency vs.
//! overhead, which is unmeasurable without telemetry on verification lag,
//! RS/WS element composition, PRF evaluation counts, and the batched-scan
//! hit rate. This module provides the measurement substrate: plain atomic
//! [`Counter`]s, monotonic [`Gauge`]s, and coarse power-of-two
//! [`Histogram`]s, aggregated in a single [`Metrics`] struct whose field
//! set *is* the static metric registry (every metric has a fixed name,
//! enumerated by [`MetricsSnapshot::counters`]).
//!
//! Design constraints, in order:
//!
//! 1. **Hot-path cost is a few relaxed atomics.** No locks, no allocation,
//!    no formatting on the update path. The layers gate their updates on
//!    the `metrics` config switch (`VeriDbConfig::metrics`), so a disabled
//!    instance pays only a branch.
//! 2. **Sampling is cheap and consistent-enough.** [`Metrics::snapshot`]
//!    reads every counter with relaxed loads — individually exact,
//!    mutually unsynchronized, which is the right trade for monitoring.
//! 3. **Deltas are first-class.** Benchmarks bracket a workload with two
//!    snapshots and print [`MetricsSnapshot::since`].
//!
//! The struct lives in `veridb-common` so every layer can update it; the
//! owning instance hangs off the enclave (one metrics domain per trust
//! domain), and `Enclave::metrics_snapshot` merges in the counters the
//! always-on cost substrate already maintains (ECalls, PRF evaluations,
//! EPC swaps and high-water mark).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two histogram buckets. Bucket `i > 0` covers values
/// in `[2^(i-1), 2^i)`; bucket 0 holds zeros; the last bucket absorbs
/// everything at or above `2^(BUCKETS-2)`.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Zeroed counter.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Count one event.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value / maximum gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Zeroed gauge.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the value to `v` if larger (high-water tracking).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Increment (live-count gauges, e.g. active connections).
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrement, saturating at zero so a racing sampler never reads a
    /// wrapped-around live count.
    #[inline]
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A coarse power-of-two histogram of `u64` samples.
///
/// One relaxed `fetch_add` per bucket hit plus sum/count/max updates —
/// cheap enough for per-`scan_step` latency recording.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket index a value lands in.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

impl Histogram {
    /// Zeroed histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Copy the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (b, a) in buckets.iter_mut().zip(&self.buckets) {
            *b = a.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen (not delta-able; carried as-is by `since`).
    pub max: u64,
    /// Per-bucket sample counts (power-of-two boundaries).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Mean sample value, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Difference of two snapshots (`self - earlier`), saturating. `max`
    /// carries the later snapshot's value (maxima don't subtract).
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (b, (now, then)) in buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(&earlier.buckets))
        {
            *b = now.saturating_sub(*then);
        }
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
            buckets,
        }
    }
}

/// Query-operator classes metered by the executor ("per-operator row
/// counts"). The order is the registry order; `OperatorKind::name`
/// provides the stable metric label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum OperatorKind {
    /// Verified leaf scan (range / point).
    Scan = 0,
    /// Filter.
    Filter,
    /// Projection.
    Project,
    /// Index nested-loop join.
    IndexNlJoin,
    /// Hash join.
    HashJoin,
    /// Merge join.
    MergeJoin,
    /// Block nested-loop join (materializing, spill-capable).
    BlockNlJoin,
    /// Aggregation.
    Aggregate,
    /// Sort.
    Sort,
    /// Limit.
    Limit,
    /// Distinct.
    Distinct,
    /// Gather: morsel-order merge of a parallel (Exchange) region.
    Gather,
    /// Partitioned hash join: parallel partition-hashed build + probe.
    PartitionedJoin,
}

/// Number of [`OperatorKind`] variants.
pub const OPERATOR_KINDS: usize = 13;

/// Per-worker counters are kept for this many workers; workers beyond the
/// window fold onto slot `id % MAX_TRACKED_WORKERS` (counts stay exact in
/// aggregate, only the per-worker attribution coarsens).
pub const MAX_TRACKED_WORKERS: usize = 8;

impl OperatorKind {
    /// Stable metric label.
    pub fn name(self) -> &'static str {
        match self {
            OperatorKind::Scan => "scan",
            OperatorKind::Filter => "filter",
            OperatorKind::Project => "project",
            OperatorKind::IndexNlJoin => "index_nl_join",
            OperatorKind::HashJoin => "hash_join",
            OperatorKind::MergeJoin => "merge_join",
            OperatorKind::BlockNlJoin => "block_nl_join",
            OperatorKind::Aggregate => "aggregate",
            OperatorKind::Sort => "sort",
            OperatorKind::Limit => "limit",
            OperatorKind::Distinct => "distinct",
            OperatorKind::Gather => "gather",
            OperatorKind::PartitionedJoin => "partitioned_join",
        }
    }

    /// All variants in registry order.
    pub fn all() -> [OperatorKind; OPERATOR_KINDS] {
        [
            OperatorKind::Scan,
            OperatorKind::Filter,
            OperatorKind::Project,
            OperatorKind::IndexNlJoin,
            OperatorKind::HashJoin,
            OperatorKind::MergeJoin,
            OperatorKind::BlockNlJoin,
            OperatorKind::Aggregate,
            OperatorKind::Sort,
            OperatorKind::Limit,
            OperatorKind::Distinct,
            OperatorKind::Gather,
            OperatorKind::PartitionedJoin,
        ]
    }
}

/// The static metric registry of one VeriDB instance.
///
/// Layer responsibilities:
/// - **wrcm** updates the protected-op, element-composition, group,
///   page-lifecycle, and verification families;
/// - **storage** updates the cursor family;
/// - **query** updates the query/spill/portal families;
/// - **enclave** contributes ECall / PRF / EPC figures at snapshot time
///   from its always-on cost substrate (those fields live only in
///   [`MetricsSnapshot`]).
#[derive(Debug, Default)]
pub struct Metrics {
    // -- wrcm: protected operations ------------------------------------
    /// Protected point reads.
    pub protected_reads: Counter,
    /// Protected overwrites.
    pub protected_writes: Counter,
    /// Protected inserts.
    pub protected_inserts: Counter,
    /// Protected deletes.
    pub protected_deletes: Counter,
    /// Protected cross-page moves.
    pub protected_moves: Counter,
    /// Cells served by batched protected reads.
    pub batched_read_cells: Counter,
    /// Cells written by batched protected writes.
    pub batched_write_cells: Counter,
    // -- wrcm: enclave-resident cell cache ------------------------------
    /// Point reads/writes served from the trusted cell cache (no PRF, no
    /// digest fold, no page lock).
    pub cache_hits: Counter,
    /// Point reads that missed the cache and paid the full verified read.
    pub cache_misses: Counter,
    /// Entries evicted to make room (clean or dirty).
    pub cache_evictions: Counter,
    /// Dirty entries written back to host memory (one WS fold each).
    pub cache_writebacks: Counter,
    /// Bytes currently pinned in the cell cache (counted against EPC).
    pub cache_resident_bytes: Gauge,
    /// Cache hit ratio in percent, updated on misses and drains so hits
    /// stay a single counter bump.
    pub cache_hit_ratio_pct: Gauge,
    // -- wrcm: RS/WS element composition -------------------------------
    /// Singleton (per-cell) elements consumed into `h(RS)`.
    pub singleton_elements: Counter,
    /// Coalesced scan-group elements consumed into `h(RS)`.
    pub group_elements: Counter,
    /// Scan groups formed by batched reads.
    pub groups_formed: Counter,
    /// Scan groups dissolved back into singletons (point ops, straddling
    /// batches).
    pub groups_dissolved: Counter,
    // -- wrcm: page lifecycle ------------------------------------------
    /// Fresh pages registered.
    pub pages_allocated: Counter,
    /// Pages handed back out from the free list.
    pub pages_reused: Counter,
    /// Empty pages released to the free list.
    pub pages_released: Counter,
    // -- wrcm: shared-nothing parallel path ------------------------------
    /// Nanoseconds spent waiting on partition mutexes (the `lock_part`
    /// slow path; the shared-nothing delta path drives this toward zero).
    pub part_lock_wait_ns: Counter,
    /// Thread-local delta buckets merged into partition state (handle
    /// merges, drops, and epoch-close drains).
    pub delta_merges: Counter,
    /// Timestamp blocks handed out to delta handles.
    pub ts_blocks_allocated: Counter,
    // -- wrcm: deferred verification -----------------------------------
    /// Background / synchronous verifier scan steps executed.
    pub scan_steps: Counter,
    /// `scan_step` wall-clock latency (nanoseconds).
    pub scan_step_ns: Histogram,
    /// Partition epochs closed.
    pub epoch_closes: Counter,
    /// Protected ops a partition accumulated between consecutive epoch
    /// closes ("verification lag", sampled at each close).
    pub verification_lag_ops: Histogram,
    /// Verification failures recorded (storage poisoned).
    pub poison_events: Counter,
    // -- storage: verified cursor --------------------------------------
    /// Cursor rounds served by the batched fast path.
    pub scan_batched_rounds: Counter,
    /// Cursor rounds that fell back to per-record resolution.
    pub scan_fallback_rounds: Counter,
    /// Benign-race retries inside `VerifiedScan::resolve`/`start`.
    pub scan_benign_retries: Counter,
    // -- query ----------------------------------------------------------
    /// Statements executed by the engine.
    pub queries_executed: Counter,
    /// Rows emitted, per operator class.
    pub operator_rows: [Counter; OPERATOR_KINDS],
    /// Row buffers that overflowed into verified storage.
    pub spill_events: Counter,
    /// Bytes spilled into verified storage.
    pub spill_bytes: Counter,
    /// Queries rejected by the portal's replay filter.
    pub replays_rejected: Counter,
    // -- query: morsel-driven parallel execution ------------------------
    /// Parallel regions executed (Gather merges + parallel aggregations
    /// and hash-join builds).
    pub parallel_regions: Counter,
    /// Key-range morsels dispatched to the worker pool.
    pub morsels_dispatched: Counter,
    /// Rows produced per worker slot (worker `w` folds onto slot
    /// `w % MAX_TRACKED_WORKERS`).
    pub worker_rows: [Counter; MAX_TRACKED_WORKERS],
    /// Busy wall-clock nanoseconds per worker slot.
    pub worker_busy_ns: [Counter; MAX_TRACKED_WORKERS],
    /// Morsels claimed per worker slot (the busy/steal balance: a flat
    /// distribution means claims are spread, a skewed one means most
    /// workers sat idle while one drained the queue).
    pub worker_morsels: [Counter; MAX_TRACKED_WORKERS],
    /// Morsels a worker claimed from another worker's deque (per-worker
    /// steal counts; a nonzero value means the static round-robin seed
    /// was skewed and stealing rebalanced it).
    pub worker_steals: [Counter; MAX_TRACKED_WORKERS],
    /// Total morsels executed by a worker other than the one they were
    /// seeded to (sum of `worker_steals`, kept separately so the
    /// aggregate survives the `MAX_TRACKED_WORKERS` fold).
    pub morsels_stolen: Counter,
    /// Microseconds from a parallel region's job submission to its first
    /// task starting on a shared-pool worker (scheduler admission
    /// latency: near zero on an idle pool, grows under concurrent load).
    pub sched_wait_us: Histogram,
    /// Peak share of the global worker pool attached to the most recent
    /// parallel region, in percent (100 = the region had the whole pool;
    /// 25 = it ran at quarter strength because other jobs held workers).
    pub pool_utilization: Gauge,
    /// Cross-job steals per worker slot: tasks a shared-pool worker
    /// claimed immediately after switching onto one of this registry's
    /// jobs from a *different* job (folded onto the tracked window like
    /// the other worker counters).
    pub worker_cross_steals: [Counter; MAX_TRACKED_WORKERS],
    /// Total cross-job steals benefiting this registry's jobs (sum of
    /// `worker_cross_steals`, fold-proof aggregate).
    pub cross_job_steals: Counter,
    // -- net: the veridb-net wire front end ------------------------------
    /// Client connections accepted by the network server.
    pub net_accepted: Counter,
    /// Connections dropped before entering the query loop (handshake
    /// failure, garbage first frame).
    pub net_rejected: Counter,
    /// Frames successfully read off sockets (both roles).
    pub net_frames_in: Counter,
    /// Frames written to sockets.
    pub net_frames_out: Counter,
    /// Bytes read off sockets (headers + payloads).
    pub net_bytes_in: Counter,
    /// Bytes written to sockets.
    pub net_bytes_out: Counter,
    /// Read/write timeouts and idle-connection reaps.
    pub net_timeouts: Counter,
    /// Frames rejected by the untrusted framing layer (bad magic/version,
    /// oversize, CRC mismatch, malformed payload).
    pub net_frame_rejects: Counter,
    /// Query or handshake messages rejected for MAC / attestation
    /// failures at the portal boundary.
    pub net_auth_rejects: Counter,
    /// Connections currently inside the query loop.
    pub net_active_conns: Gauge,
    /// Queries refused with a retryable `Overloaded` error because the
    /// admission queue was full.
    pub net_overloaded: Counter,
    /// Executor worker turns that panicked (caught, counted, and the
    /// worker kept alive).
    pub net_worker_panics: Counter,
    /// Decoded QUERY frames currently queued for execution.
    pub net_queued: Gauge,
    /// Server-side wire latency per query: frame-in to response flushed
    /// (nanoseconds).
    pub net_wire_ns: Histogram,
    /// Outbound frames coalesced into each vectored `writev` syscall
    /// (sampled per flush write; >1 means pipelined responses batched).
    pub net_writev_frames: Histogram,
    // -- log: the MAC-chained write-ahead log -----------------------------
    /// Records appended to the write-ahead log.
    pub log_appends: Counter,
    /// Bytes appended to the write-ahead log (framed record bytes).
    pub log_append_bytes: Counter,
    /// WAL fsync latency (microseconds, one sample per group commit).
    pub log_fsync_us: Histogram,
    /// Records made durable per fsync (group-commit batch size).
    pub log_group_commit_batch: Histogram,
    /// Replica lag in records: primary durable LSN minus the newest LSN
    /// the replica has acknowledged applying.
    pub log_ship_lag_records: Gauge,
    /// Records shipped to the replica over the wire.
    pub log_shipped_records: Counter,
    // -- snapshot: sealed epoch manifests ---------------------------------
    /// Snapshots sealed (snapshot + manifest + counter bump).
    pub snapshot_written: Counter,
    /// Bytes written across all sealed snapshots.
    pub snapshot_bytes: Counter,
    /// Recoveries that replayed a snapshot + log tail successfully.
    pub snapshot_replays: Counter,
    /// Recoveries refused because the host offered rolled-back state
    /// (stale manifest, truncated log, substituted snapshot).
    pub snapshot_rollbacks_refused: Counter,
}

impl Metrics {
    /// Fresh, zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The row counter for one operator class.
    pub fn operator_rows(&self, kind: OperatorKind) -> &Counter {
        &self.operator_rows[kind as usize]
    }

    /// The row counter for one parallel worker (folded onto the tracked
    /// window).
    pub fn worker_rows(&self, worker: usize) -> &Counter {
        &self.worker_rows[worker % MAX_TRACKED_WORKERS]
    }

    /// The busy-time counter for one parallel worker.
    pub fn worker_busy_ns(&self, worker: usize) -> &Counter {
        &self.worker_busy_ns[worker % MAX_TRACKED_WORKERS]
    }

    /// The morsel-claim counter for one parallel worker.
    pub fn worker_morsels(&self, worker: usize) -> &Counter {
        &self.worker_morsels[worker % MAX_TRACKED_WORKERS]
    }

    /// The steal counter for one parallel worker.
    pub fn worker_steals(&self, worker: usize) -> &Counter {
        &self.worker_steals[worker % MAX_TRACKED_WORKERS]
    }

    /// The cross-job steal counter for one parallel worker.
    pub fn worker_cross_steals(&self, worker: usize) -> &Counter {
        &self.worker_cross_steals[worker % MAX_TRACKED_WORKERS]
    }

    /// Copy every metric. Enclave-substrate fields (`ecalls`,
    /// `prf_evals`, `epc_*`) are zero here; `Enclave::metrics_snapshot`
    /// fills them in.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut operator_rows = [0u64; OPERATOR_KINDS];
        for (o, c) in operator_rows.iter_mut().zip(&self.operator_rows) {
            *o = c.get();
        }
        let mut worker_rows = [0u64; MAX_TRACKED_WORKERS];
        for (o, c) in worker_rows.iter_mut().zip(&self.worker_rows) {
            *o = c.get();
        }
        let mut worker_busy_ns = [0u64; MAX_TRACKED_WORKERS];
        for (o, c) in worker_busy_ns.iter_mut().zip(&self.worker_busy_ns) {
            *o = c.get();
        }
        let mut worker_morsels = [0u64; MAX_TRACKED_WORKERS];
        for (o, c) in worker_morsels.iter_mut().zip(&self.worker_morsels) {
            *o = c.get();
        }
        let mut worker_steals = [0u64; MAX_TRACKED_WORKERS];
        for (o, c) in worker_steals.iter_mut().zip(&self.worker_steals) {
            *o = c.get();
        }
        let mut worker_cross_steals = [0u64; MAX_TRACKED_WORKERS];
        for (o, c) in worker_cross_steals
            .iter_mut()
            .zip(&self.worker_cross_steals)
        {
            *o = c.get();
        }
        MetricsSnapshot {
            protected_reads: self.protected_reads.get(),
            protected_writes: self.protected_writes.get(),
            protected_inserts: self.protected_inserts.get(),
            protected_deletes: self.protected_deletes.get(),
            protected_moves: self.protected_moves.get(),
            batched_read_cells: self.batched_read_cells.get(),
            batched_write_cells: self.batched_write_cells.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            cache_evictions: self.cache_evictions.get(),
            cache_writebacks: self.cache_writebacks.get(),
            cache_resident_bytes: self.cache_resident_bytes.get(),
            cache_hit_ratio_pct: self.cache_hit_ratio_pct.get(),
            singleton_elements: self.singleton_elements.get(),
            group_elements: self.group_elements.get(),
            groups_formed: self.groups_formed.get(),
            groups_dissolved: self.groups_dissolved.get(),
            pages_allocated: self.pages_allocated.get(),
            pages_reused: self.pages_reused.get(),
            pages_released: self.pages_released.get(),
            part_lock_wait_ns: self.part_lock_wait_ns.get(),
            delta_merges: self.delta_merges.get(),
            ts_blocks_allocated: self.ts_blocks_allocated.get(),
            scan_steps: self.scan_steps.get(),
            scan_step_ns: self.scan_step_ns.snapshot(),
            epoch_closes: self.epoch_closes.get(),
            verification_lag_ops: self.verification_lag_ops.snapshot(),
            poison_events: self.poison_events.get(),
            scan_batched_rounds: self.scan_batched_rounds.get(),
            scan_fallback_rounds: self.scan_fallback_rounds.get(),
            scan_benign_retries: self.scan_benign_retries.get(),
            queries_executed: self.queries_executed.get(),
            operator_rows,
            spill_events: self.spill_events.get(),
            spill_bytes: self.spill_bytes.get(),
            replays_rejected: self.replays_rejected.get(),
            parallel_regions: self.parallel_regions.get(),
            morsels_dispatched: self.morsels_dispatched.get(),
            worker_rows,
            worker_busy_ns,
            worker_morsels,
            worker_steals,
            morsels_stolen: self.morsels_stolen.get(),
            sched_wait_us: self.sched_wait_us.snapshot(),
            pool_utilization: self.pool_utilization.get(),
            worker_cross_steals,
            cross_job_steals: self.cross_job_steals.get(),
            net_accepted: self.net_accepted.get(),
            net_rejected: self.net_rejected.get(),
            net_frames_in: self.net_frames_in.get(),
            net_frames_out: self.net_frames_out.get(),
            net_bytes_in: self.net_bytes_in.get(),
            net_bytes_out: self.net_bytes_out.get(),
            net_timeouts: self.net_timeouts.get(),
            net_frame_rejects: self.net_frame_rejects.get(),
            net_auth_rejects: self.net_auth_rejects.get(),
            net_active_conns: self.net_active_conns.get(),
            net_overloaded: self.net_overloaded.get(),
            net_worker_panics: self.net_worker_panics.get(),
            net_queued: self.net_queued.get(),
            net_wire_ns: self.net_wire_ns.snapshot(),
            net_writev_frames: self.net_writev_frames.snapshot(),
            log_appends: self.log_appends.get(),
            log_append_bytes: self.log_append_bytes.get(),
            log_fsync_us: self.log_fsync_us.snapshot(),
            log_group_commit_batch: self.log_group_commit_batch.snapshot(),
            log_ship_lag_records: self.log_ship_lag_records.get(),
            log_shipped_records: self.log_shipped_records.get(),
            snapshot_written: self.snapshot_written.get(),
            snapshot_bytes: self.snapshot_bytes.get(),
            snapshot_replays: self.snapshot_replays.get(),
            snapshot_rollbacks_refused: self.snapshot_rollbacks_refused.get(),
            prf_evals: 0,
            ecalls: 0,
            epc_swaps: 0,
            epc_high_water_bytes: 0,
        }
    }
}

/// A point-in-time copy of every metric, including the enclave-substrate
/// figures merged in at sampling time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[allow(missing_docs)] // field meanings documented on `Metrics`
pub struct MetricsSnapshot {
    pub protected_reads: u64,
    pub protected_writes: u64,
    pub protected_inserts: u64,
    pub protected_deletes: u64,
    pub protected_moves: u64,
    pub batched_read_cells: u64,
    pub batched_write_cells: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    pub cache_writebacks: u64,
    pub cache_resident_bytes: u64,
    pub cache_hit_ratio_pct: u64,
    pub singleton_elements: u64,
    pub group_elements: u64,
    pub groups_formed: u64,
    pub groups_dissolved: u64,
    pub pages_allocated: u64,
    pub pages_reused: u64,
    pub pages_released: u64,
    pub part_lock_wait_ns: u64,
    pub delta_merges: u64,
    pub ts_blocks_allocated: u64,
    pub scan_steps: u64,
    pub scan_step_ns: HistogramSnapshot,
    pub epoch_closes: u64,
    pub verification_lag_ops: HistogramSnapshot,
    pub poison_events: u64,
    pub scan_batched_rounds: u64,
    pub scan_fallback_rounds: u64,
    pub scan_benign_retries: u64,
    pub queries_executed: u64,
    pub operator_rows: [u64; OPERATOR_KINDS],
    pub spill_events: u64,
    pub spill_bytes: u64,
    pub replays_rejected: u64,
    pub parallel_regions: u64,
    pub morsels_dispatched: u64,
    pub worker_rows: [u64; MAX_TRACKED_WORKERS],
    pub worker_busy_ns: [u64; MAX_TRACKED_WORKERS],
    pub worker_morsels: [u64; MAX_TRACKED_WORKERS],
    pub worker_steals: [u64; MAX_TRACKED_WORKERS],
    pub morsels_stolen: u64,
    pub sched_wait_us: HistogramSnapshot,
    pub pool_utilization: u64,
    pub worker_cross_steals: [u64; MAX_TRACKED_WORKERS],
    pub cross_job_steals: u64,
    pub net_accepted: u64,
    pub net_rejected: u64,
    pub net_frames_in: u64,
    pub net_frames_out: u64,
    pub net_bytes_in: u64,
    pub net_bytes_out: u64,
    pub net_timeouts: u64,
    pub net_frame_rejects: u64,
    pub net_auth_rejects: u64,
    pub net_active_conns: u64,
    pub net_overloaded: u64,
    pub net_worker_panics: u64,
    pub net_queued: u64,
    pub net_wire_ns: HistogramSnapshot,
    pub net_writev_frames: HistogramSnapshot,
    pub log_appends: u64,
    pub log_append_bytes: u64,
    pub log_fsync_us: HistogramSnapshot,
    pub log_group_commit_batch: HistogramSnapshot,
    pub log_ship_lag_records: u64,
    pub log_shipped_records: u64,
    pub snapshot_written: u64,
    pub snapshot_bytes: u64,
    pub snapshot_replays: u64,
    pub snapshot_rollbacks_refused: u64,
    /// PRF evaluations (from the enclave cost substrate).
    pub prf_evals: u64,
    /// ECall boundary crossings (from the enclave cost substrate).
    pub ecalls: u64,
    /// Simulated EPC page swaps (from the enclave cost substrate).
    pub epc_swaps: u64,
    /// EPC allocation high-water mark in bytes.
    pub epc_high_water_bytes: u64,
}

impl MetricsSnapshot {
    /// Total protected operations (point ops + batched cells).
    pub fn protected_ops(&self) -> u64 {
        self.protected_reads
            + self.protected_writes
            + self.protected_inserts
            + self.protected_deletes
            + self.protected_moves
            + self.batched_read_cells
            + self.batched_write_cells
    }

    /// Difference of two snapshots (`self - earlier`), saturating.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut operator_rows = [0u64; OPERATOR_KINDS];
        for (r, (now, then)) in operator_rows
            .iter_mut()
            .zip(self.operator_rows.iter().zip(&earlier.operator_rows))
        {
            *r = now.saturating_sub(*then);
        }
        let mut worker_rows = [0u64; MAX_TRACKED_WORKERS];
        for (r, (now, then)) in worker_rows
            .iter_mut()
            .zip(self.worker_rows.iter().zip(&earlier.worker_rows))
        {
            *r = now.saturating_sub(*then);
        }
        let mut worker_busy_ns = [0u64; MAX_TRACKED_WORKERS];
        for (r, (now, then)) in worker_busy_ns
            .iter_mut()
            .zip(self.worker_busy_ns.iter().zip(&earlier.worker_busy_ns))
        {
            *r = now.saturating_sub(*then);
        }
        let mut worker_morsels = [0u64; MAX_TRACKED_WORKERS];
        for (r, (now, then)) in worker_morsels
            .iter_mut()
            .zip(self.worker_morsels.iter().zip(&earlier.worker_morsels))
        {
            *r = now.saturating_sub(*then);
        }
        let mut worker_steals = [0u64; MAX_TRACKED_WORKERS];
        for (r, (now, then)) in worker_steals
            .iter_mut()
            .zip(self.worker_steals.iter().zip(&earlier.worker_steals))
        {
            *r = now.saturating_sub(*then);
        }
        let mut worker_cross_steals = [0u64; MAX_TRACKED_WORKERS];
        for (r, (now, then)) in worker_cross_steals.iter_mut().zip(
            self.worker_cross_steals
                .iter()
                .zip(&earlier.worker_cross_steals),
        ) {
            *r = now.saturating_sub(*then);
        }
        MetricsSnapshot {
            protected_reads: self.protected_reads.saturating_sub(earlier.protected_reads),
            protected_writes: self
                .protected_writes
                .saturating_sub(earlier.protected_writes),
            protected_inserts: self
                .protected_inserts
                .saturating_sub(earlier.protected_inserts),
            protected_deletes: self
                .protected_deletes
                .saturating_sub(earlier.protected_deletes),
            protected_moves: self.protected_moves.saturating_sub(earlier.protected_moves),
            batched_read_cells: self
                .batched_read_cells
                .saturating_sub(earlier.batched_read_cells),
            batched_write_cells: self
                .batched_write_cells
                .saturating_sub(earlier.batched_write_cells),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            cache_evictions: self.cache_evictions.saturating_sub(earlier.cache_evictions),
            cache_writebacks: self
                .cache_writebacks
                .saturating_sub(earlier.cache_writebacks),
            // Gauges carry the later snapshot's value (they don't subtract).
            cache_resident_bytes: self.cache_resident_bytes,
            cache_hit_ratio_pct: self.cache_hit_ratio_pct,
            singleton_elements: self
                .singleton_elements
                .saturating_sub(earlier.singleton_elements),
            group_elements: self.group_elements.saturating_sub(earlier.group_elements),
            groups_formed: self.groups_formed.saturating_sub(earlier.groups_formed),
            groups_dissolved: self
                .groups_dissolved
                .saturating_sub(earlier.groups_dissolved),
            pages_allocated: self.pages_allocated.saturating_sub(earlier.pages_allocated),
            pages_reused: self.pages_reused.saturating_sub(earlier.pages_reused),
            pages_released: self.pages_released.saturating_sub(earlier.pages_released),
            part_lock_wait_ns: self
                .part_lock_wait_ns
                .saturating_sub(earlier.part_lock_wait_ns),
            delta_merges: self.delta_merges.saturating_sub(earlier.delta_merges),
            ts_blocks_allocated: self
                .ts_blocks_allocated
                .saturating_sub(earlier.ts_blocks_allocated),
            scan_steps: self.scan_steps.saturating_sub(earlier.scan_steps),
            scan_step_ns: self.scan_step_ns.since(&earlier.scan_step_ns),
            epoch_closes: self.epoch_closes.saturating_sub(earlier.epoch_closes),
            verification_lag_ops: self
                .verification_lag_ops
                .since(&earlier.verification_lag_ops),
            poison_events: self.poison_events.saturating_sub(earlier.poison_events),
            scan_batched_rounds: self
                .scan_batched_rounds
                .saturating_sub(earlier.scan_batched_rounds),
            scan_fallback_rounds: self
                .scan_fallback_rounds
                .saturating_sub(earlier.scan_fallback_rounds),
            scan_benign_retries: self
                .scan_benign_retries
                .saturating_sub(earlier.scan_benign_retries),
            queries_executed: self
                .queries_executed
                .saturating_sub(earlier.queries_executed),
            operator_rows,
            spill_events: self.spill_events.saturating_sub(earlier.spill_events),
            spill_bytes: self.spill_bytes.saturating_sub(earlier.spill_bytes),
            replays_rejected: self
                .replays_rejected
                .saturating_sub(earlier.replays_rejected),
            parallel_regions: self
                .parallel_regions
                .saturating_sub(earlier.parallel_regions),
            morsels_dispatched: self
                .morsels_dispatched
                .saturating_sub(earlier.morsels_dispatched),
            worker_rows,
            worker_busy_ns,
            worker_morsels,
            worker_steals,
            morsels_stolen: self.morsels_stolen.saturating_sub(earlier.morsels_stolen),
            sched_wait_us: self.sched_wait_us.since(&earlier.sched_wait_us),
            // Gauge: carries the later snapshot's value.
            pool_utilization: self.pool_utilization,
            worker_cross_steals,
            cross_job_steals: self
                .cross_job_steals
                .saturating_sub(earlier.cross_job_steals),
            net_accepted: self.net_accepted.saturating_sub(earlier.net_accepted),
            net_rejected: self.net_rejected.saturating_sub(earlier.net_rejected),
            net_frames_in: self.net_frames_in.saturating_sub(earlier.net_frames_in),
            net_frames_out: self.net_frames_out.saturating_sub(earlier.net_frames_out),
            net_bytes_in: self.net_bytes_in.saturating_sub(earlier.net_bytes_in),
            net_bytes_out: self.net_bytes_out.saturating_sub(earlier.net_bytes_out),
            net_timeouts: self.net_timeouts.saturating_sub(earlier.net_timeouts),
            net_frame_rejects: self
                .net_frame_rejects
                .saturating_sub(earlier.net_frame_rejects),
            net_auth_rejects: self
                .net_auth_rejects
                .saturating_sub(earlier.net_auth_rejects),
            net_overloaded: self.net_overloaded.saturating_sub(earlier.net_overloaded),
            net_worker_panics: self
                .net_worker_panics
                .saturating_sub(earlier.net_worker_panics),
            // Gauges: carry the later snapshot's value.
            net_active_conns: self.net_active_conns,
            net_queued: self.net_queued,
            net_wire_ns: self.net_wire_ns.since(&earlier.net_wire_ns),
            net_writev_frames: self.net_writev_frames.since(&earlier.net_writev_frames),
            log_appends: self.log_appends.saturating_sub(earlier.log_appends),
            log_append_bytes: self
                .log_append_bytes
                .saturating_sub(earlier.log_append_bytes),
            log_fsync_us: self.log_fsync_us.since(&earlier.log_fsync_us),
            log_group_commit_batch: self
                .log_group_commit_batch
                .since(&earlier.log_group_commit_batch),
            // Gauge: carries the later snapshot's value.
            log_ship_lag_records: self.log_ship_lag_records,
            log_shipped_records: self
                .log_shipped_records
                .saturating_sub(earlier.log_shipped_records),
            snapshot_written: self
                .snapshot_written
                .saturating_sub(earlier.snapshot_written),
            snapshot_bytes: self.snapshot_bytes.saturating_sub(earlier.snapshot_bytes),
            snapshot_replays: self
                .snapshot_replays
                .saturating_sub(earlier.snapshot_replays),
            snapshot_rollbacks_refused: self
                .snapshot_rollbacks_refused
                .saturating_sub(earlier.snapshot_rollbacks_refused),
            prf_evals: self.prf_evals.saturating_sub(earlier.prf_evals),
            ecalls: self.ecalls.saturating_sub(earlier.ecalls),
            epc_swaps: self.epc_swaps.saturating_sub(earlier.epc_swaps),
            epc_high_water_bytes: self.epc_high_water_bytes,
        }
    }

    /// The full metric catalog as `(name, value)` pairs, in registry
    /// order. Histograms contribute their count/sum/max figures.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        let mut out = vec![
            ("wrcm.protected_reads", self.protected_reads),
            ("wrcm.protected_writes", self.protected_writes),
            ("wrcm.protected_inserts", self.protected_inserts),
            ("wrcm.protected_deletes", self.protected_deletes),
            ("wrcm.protected_moves", self.protected_moves),
            ("wrcm.batched_read_cells", self.batched_read_cells),
            ("wrcm.batched_write_cells", self.batched_write_cells),
            ("wrcm.cache_hits", self.cache_hits),
            ("wrcm.cache_misses", self.cache_misses),
            ("wrcm.cache_evictions", self.cache_evictions),
            ("wrcm.cache_writebacks", self.cache_writebacks),
            ("wrcm.cache_resident_bytes", self.cache_resident_bytes),
            ("wrcm.cache_hit_ratio_pct", self.cache_hit_ratio_pct),
            ("wrcm.singleton_elements", self.singleton_elements),
            ("wrcm.group_elements", self.group_elements),
            ("wrcm.groups_formed", self.groups_formed),
            ("wrcm.groups_dissolved", self.groups_dissolved),
            ("wrcm.pages_allocated", self.pages_allocated),
            ("wrcm.pages_reused", self.pages_reused),
            ("wrcm.pages_released", self.pages_released),
            ("wrcm.part_lock_wait_ns", self.part_lock_wait_ns),
            ("wrcm.delta_merges", self.delta_merges),
            ("wrcm.ts_blocks_allocated", self.ts_blocks_allocated),
            ("verify.scan_steps", self.scan_steps),
            ("verify.scan_step_ns.count", self.scan_step_ns.count),
            ("verify.scan_step_ns.sum", self.scan_step_ns.sum),
            ("verify.scan_step_ns.max", self.scan_step_ns.max),
            ("verify.epoch_closes", self.epoch_closes),
            ("verify.lag_ops.count", self.verification_lag_ops.count),
            ("verify.lag_ops.sum", self.verification_lag_ops.sum),
            ("verify.lag_ops.max", self.verification_lag_ops.max),
            ("verify.poison_events", self.poison_events),
            ("cursor.batched_rounds", self.scan_batched_rounds),
            ("cursor.fallback_rounds", self.scan_fallback_rounds),
            ("cursor.benign_retries", self.scan_benign_retries),
            ("query.executed", self.queries_executed),
        ];
        const OPERATOR_ROW_NAMES: [&str; OPERATOR_KINDS] = [
            "query.rows.scan",
            "query.rows.filter",
            "query.rows.project",
            "query.rows.index_nl_join",
            "query.rows.hash_join",
            "query.rows.merge_join",
            "query.rows.block_nl_join",
            "query.rows.aggregate",
            "query.rows.sort",
            "query.rows.limit",
            "query.rows.distinct",
            "query.rows.gather",
            "query.rows.partitioned_join",
        ];
        for (name, v) in OPERATOR_ROW_NAMES.iter().zip(self.operator_rows) {
            out.push((name, v));
        }
        const WORKER_ROW_NAMES: [&str; MAX_TRACKED_WORKERS] = [
            "query.worker0.rows",
            "query.worker1.rows",
            "query.worker2.rows",
            "query.worker3.rows",
            "query.worker4.rows",
            "query.worker5.rows",
            "query.worker6.rows",
            "query.worker7.rows",
        ];
        const WORKER_BUSY_NAMES: [&str; MAX_TRACKED_WORKERS] = [
            "query.worker0.busy_ns",
            "query.worker1.busy_ns",
            "query.worker2.busy_ns",
            "query.worker3.busy_ns",
            "query.worker4.busy_ns",
            "query.worker5.busy_ns",
            "query.worker6.busy_ns",
            "query.worker7.busy_ns",
        ];
        out.extend([
            ("query.parallel_regions", self.parallel_regions),
            ("query.morsels_dispatched", self.morsels_dispatched),
            ("query.morsels_stolen", self.morsels_stolen),
        ]);
        for (name, v) in WORKER_ROW_NAMES.iter().zip(self.worker_rows) {
            out.push((name, v));
        }
        for (name, v) in WORKER_BUSY_NAMES.iter().zip(self.worker_busy_ns) {
            out.push((name, v));
        }
        const WORKER_MORSEL_NAMES: [&str; MAX_TRACKED_WORKERS] = [
            "query.worker0.morsels",
            "query.worker1.morsels",
            "query.worker2.morsels",
            "query.worker3.morsels",
            "query.worker4.morsels",
            "query.worker5.morsels",
            "query.worker6.morsels",
            "query.worker7.morsels",
        ];
        for (name, v) in WORKER_MORSEL_NAMES.iter().zip(self.worker_morsels) {
            out.push((name, v));
        }
        const WORKER_STEAL_NAMES: [&str; MAX_TRACKED_WORKERS] = [
            "query.worker0.steals",
            "query.worker1.steals",
            "query.worker2.steals",
            "query.worker3.steals",
            "query.worker4.steals",
            "query.worker5.steals",
            "query.worker6.steals",
            "query.worker7.steals",
        ];
        for (name, v) in WORKER_STEAL_NAMES.iter().zip(self.worker_steals) {
            out.push((name, v));
        }
        out.extend([
            ("query.sched_wait_us.count", self.sched_wait_us.count),
            ("query.sched_wait_us.sum", self.sched_wait_us.sum),
            ("query.sched_wait_us.max", self.sched_wait_us.max),
            ("query.pool_utilization", self.pool_utilization),
            ("query.cross_job_steals", self.cross_job_steals),
        ]);
        const WORKER_CROSS_STEAL_NAMES: [&str; MAX_TRACKED_WORKERS] = [
            "query.worker0.cross_job_steals",
            "query.worker1.cross_job_steals",
            "query.worker2.cross_job_steals",
            "query.worker3.cross_job_steals",
            "query.worker4.cross_job_steals",
            "query.worker5.cross_job_steals",
            "query.worker6.cross_job_steals",
            "query.worker7.cross_job_steals",
        ];
        for (name, v) in WORKER_CROSS_STEAL_NAMES
            .iter()
            .zip(self.worker_cross_steals)
        {
            out.push((name, v));
        }
        out.extend([
            ("query.spill_events", self.spill_events),
            ("query.spill_bytes", self.spill_bytes),
            ("portal.replays_rejected", self.replays_rejected),
            ("net.accepted", self.net_accepted),
            ("net.rejected", self.net_rejected),
            ("net.frames_in", self.net_frames_in),
            ("net.frames_out", self.net_frames_out),
            ("net.bytes_in", self.net_bytes_in),
            ("net.bytes_out", self.net_bytes_out),
            ("net.timeouts", self.net_timeouts),
            ("net.frame_rejects", self.net_frame_rejects),
            ("net.auth_rejects", self.net_auth_rejects),
            ("net.active_conns", self.net_active_conns),
            ("net.overloaded", self.net_overloaded),
            ("net.worker_panics", self.net_worker_panics),
            ("net.queued", self.net_queued),
            ("net.wire_ns.count", self.net_wire_ns.count),
            ("net.wire_ns.sum", self.net_wire_ns.sum),
            ("net.wire_ns.max", self.net_wire_ns.max),
            (
                "net.writev_frames_per_call.count",
                self.net_writev_frames.count,
            ),
            ("net.writev_frames_per_call.sum", self.net_writev_frames.sum),
            ("net.writev_frames_per_call.max", self.net_writev_frames.max),
            ("log.appends", self.log_appends),
            ("log.append_bytes", self.log_append_bytes),
            ("log.fsync_us.count", self.log_fsync_us.count),
            ("log.fsync_us.sum", self.log_fsync_us.sum),
            ("log.fsync_us.max", self.log_fsync_us.max),
            (
                "log.group_commit_batch.count",
                self.log_group_commit_batch.count,
            ),
            ("log.group_commit_batch.sum", self.log_group_commit_batch.sum),
            ("log.group_commit_batch.max", self.log_group_commit_batch.max),
            ("log.ship_lag_records", self.log_ship_lag_records),
            ("log.shipped_records", self.log_shipped_records),
            ("snapshot.written", self.snapshot_written),
            ("snapshot.bytes", self.snapshot_bytes),
            ("snapshot.replays", self.snapshot_replays),
            ("snapshot.rollbacks_refused", self.snapshot_rollbacks_refused),
            ("enclave.prf_evals", self.prf_evals),
            ("enclave.ecalls", self.ecalls),
            ("enclave.epc_swaps", self.epc_swaps),
            ("enclave.epc_high_water_bytes", self.epc_high_water_bytes),
        ]);
        out
    }

    /// One-line summary for benchmark output.
    pub fn summary_line(&self) -> String {
        format!(
            "ops={} (r {} / w {} / ins {} / del {} / batch {}), prf={}, \
             cache {}h/{}m ({}%), groups +{}/-{}, batched_rounds={}, \
             fallback={}, retries={}, epoch_closes={}, lag_mean={:.0} ops, \
             delta_merges={}, ts_blocks={}, lock_wait={}ns, \
             spills={} ({} B), ecalls={}",
            self.protected_ops(),
            self.protected_reads,
            self.protected_writes,
            self.protected_inserts,
            self.protected_deletes,
            self.batched_read_cells + self.batched_write_cells,
            self.prf_evals,
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_ratio_pct,
            self.groups_formed,
            self.groups_dissolved,
            self.scan_batched_rounds,
            self.scan_fallback_rounds,
            self.scan_benign_retries,
            self.epoch_closes,
            self.verification_lag_ops.mean(),
            self.delta_merges,
            self.ts_blocks_allocated,
            self.part_lock_wait_ns,
            self.spill_events,
            self.spill_bytes,
            self.ecalls,
        )
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (name, value) in self.counters() {
            writeln!(f, "{name:<32} {value}")?;
        }
        if self.scan_step_ns.count > 0 {
            writeln!(
                f,
                "{:<32} {:.0}",
                "verify.scan_step_ns.mean",
                self.scan_step_ns.mean()
            )?;
        }
        if self.verification_lag_ops.count > 0 {
            writeln!(
                f,
                "{:<32} {:.1}",
                "verify.lag_ops.mean",
                self.verification_lag_ops.mean()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        c.add(0);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.set(7);
        g.set_max(3);
        assert_eq!(g.get(), 7);
        g.set_max(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn histogram_buckets_are_power_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_records_and_diffs() {
        let h = Histogram::new();
        h.record(1);
        h.record(100);
        h.record(1000);
        let a = h.snapshot();
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 1101);
        assert_eq!(a.max, 1000);
        assert!((a.mean() - 367.0).abs() < 1.0);
        h.record(7);
        let b = h.snapshot();
        let d = b.since(&a);
        assert_eq!(d.count, 1);
        assert_eq!(d.sum, 7);
        assert_eq!(d.buckets[bucket_of(7)], 1);
    }

    #[test]
    fn snapshot_since_subtracts_every_family() {
        let m = Metrics::new();
        m.protected_reads.add(10);
        m.queries_executed.inc();
        m.operator_rows(OperatorKind::Scan).add(3);
        let a = m.snapshot();
        m.protected_reads.add(5);
        m.operator_rows(OperatorKind::Scan).add(2);
        let b = m.snapshot();
        let d = b.since(&a);
        assert_eq!(d.protected_reads, 5);
        assert_eq!(d.queries_executed, 0);
        assert_eq!(d.operator_rows[OperatorKind::Scan as usize], 2);
        assert_eq!(d.protected_ops(), 5);
    }

    #[test]
    fn catalog_names_are_unique_and_stable() {
        let s = MetricsSnapshot::default();
        let names: Vec<&str> = s.counters().iter().map(|(n, _)| *n).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate metric name");
        assert!(names.contains(&"wrcm.protected_reads"));
        assert!(names.contains(&"enclave.prf_evals"));
        assert!(names.contains(&"verify.lag_ops.sum"));
        assert!(names.contains(&"wrcm.cache_hits"));
        assert!(names.contains(&"wrcm.cache_hit_ratio_pct"));
        assert!(names.contains(&"net.accepted"));
        assert!(names.contains(&"net.overloaded"));
        assert!(names.contains(&"net.worker_panics"));
        assert!(names.contains(&"net.queued"));
        assert!(names.contains(&"net.wire_ns.count"));
        assert!(names.contains(&"wrcm.part_lock_wait_ns"));
        assert!(names.contains(&"wrcm.delta_merges"));
        assert!(names.contains(&"wrcm.ts_blocks_allocated"));
        assert!(names.contains(&"query.worker0.morsels"));
        assert!(names.contains(&"query.worker7.morsels"));
        assert!(names.contains(&"query.worker0.steals"));
        assert!(names.contains(&"query.worker7.steals"));
        assert!(names.contains(&"query.morsels_stolen"));
        assert!(names.contains(&"query.rows.partitioned_join"));
        assert!(names.contains(&"net.writev_frames_per_call.count"));
        assert!(names.contains(&"query.sched_wait_us.count"));
        assert!(names.contains(&"query.sched_wait_us.sum"));
        assert!(names.contains(&"query.pool_utilization"));
        assert!(names.contains(&"query.cross_job_steals"));
        assert!(names.contains(&"query.worker0.cross_job_steals"));
        assert!(names.contains(&"query.worker7.cross_job_steals"));
        assert!(names.contains(&"log.appends"));
        assert!(names.contains(&"log.append_bytes"));
        assert!(names.contains(&"log.fsync_us.count"));
        assert!(names.contains(&"log.group_commit_batch.count"));
        assert!(names.contains(&"log.ship_lag_records"));
        assert!(names.contains(&"snapshot.written"));
        assert!(names.contains(&"snapshot.rollbacks_refused"));
    }

    #[test]
    fn log_family_snapshots_and_diffs() {
        let m = Metrics::new();
        m.log_appends.add(4);
        m.log_append_bytes.add(512);
        m.log_fsync_us.record(80);
        m.log_group_commit_batch.record(4);
        m.log_ship_lag_records.set(7);
        m.snapshot_written.inc();
        let a = m.snapshot();
        m.log_appends.inc();
        m.log_ship_lag_records.set(2);
        m.snapshot_rollbacks_refused.inc();
        let d = m.snapshot().since(&a);
        assert_eq!(d.log_appends, 1);
        assert_eq!(d.log_append_bytes, 0);
        assert_eq!(d.snapshot_written, 0);
        assert_eq!(d.snapshot_rollbacks_refused, 1);
        assert_eq!(d.log_ship_lag_records, 2, "gauge carries the later value");
        assert_eq!(a.log_fsync_us.count, 1);
        assert_eq!(a.log_group_commit_batch.sum, 4);
    }

    #[test]
    fn sched_family_snapshots_and_diffs() {
        let m = Metrics::new();
        m.sched_wait_us.record(40);
        m.sched_wait_us.record(60);
        m.pool_utilization.set(100);
        m.worker_cross_steals(1).inc();
        m.cross_job_steals.inc();
        let a = m.snapshot();
        assert_eq!(a.sched_wait_us.count, 2);
        assert_eq!(a.sched_wait_us.sum, 100);
        assert_eq!(a.pool_utilization, 100);
        assert_eq!(a.worker_cross_steals[1], 1);
        assert_eq!(a.cross_job_steals, 1);

        m.sched_wait_us.record(10);
        m.pool_utilization.set(25);
        m.worker_cross_steals(9).inc(); // folds onto slot 1
        m.cross_job_steals.inc();
        let d = m.snapshot().since(&a);
        assert_eq!(d.sched_wait_us.count, 1);
        assert_eq!(d.sched_wait_us.sum, 10);
        // Gauge semantics: the later value, not a difference.
        assert_eq!(d.pool_utilization, 25);
        assert_eq!(d.worker_cross_steals[1], 1);
        assert_eq!(d.cross_job_steals, 1);
    }

    #[test]
    fn net_family_snapshots_and_diffs() {
        let m = Metrics::new();
        m.net_accepted.inc();
        m.net_frames_in.add(3);
        m.net_bytes_in.add(128);
        m.net_active_conns.set(2);
        m.net_wire_ns.record(5000);
        let a = m.snapshot();
        m.net_frames_in.add(2);
        m.net_active_conns.set(1);
        let d = m.snapshot().since(&a);
        assert_eq!(d.net_accepted, 0);
        assert_eq!(d.net_frames_in, 2);
        assert_eq!(d.net_active_conns, 1, "gauge carries the later value");
        assert_eq!(a.net_wire_ns.count, 1);
    }

    #[test]
    fn admission_metrics_snapshot_and_diff() {
        let m = Metrics::new();
        m.net_overloaded.add(3);
        m.net_worker_panics.inc();
        m.net_queued.set(9);
        let a = m.snapshot();
        m.net_overloaded.inc();
        m.net_queued.set(4);
        let d = m.snapshot().since(&a);
        assert_eq!(d.net_overloaded, 1);
        assert_eq!(d.net_worker_panics, 0);
        assert_eq!(d.net_queued, 4, "gauge carries the later value");
    }

    #[test]
    fn display_renders_all_lines() {
        let m = Metrics::new();
        m.scan_step_ns.record(1234);
        m.verification_lag_ops.record(100);
        let s = m.snapshot();
        let text = format!("{s}");
        assert!(text.contains("wrcm.protected_reads"));
        assert!(text.contains("verify.scan_step_ns.mean"));
    }

    #[test]
    fn operator_kind_names_cover_all_variants() {
        let names: Vec<&str> = OperatorKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), OPERATOR_KINDS);
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), OPERATOR_KINDS);
    }
}
