//! The SQL value model.
//!
//! [`Value`] carries every scalar VeriDB understands. Two properties matter
//! more than in an ordinary database because verification hangs off them:
//!
//! - **Total order.** `⟨key, nKey⟩` chains are ordered lists; `Value`
//!   therefore implements a deterministic total order (floats use IEEE
//!   `total_cmp`, `Null` sorts first, cross-type comparisons order by a
//!   fixed type rank). The order must be identical on the client and in the
//!   enclave or completeness evidence would not verify.
//! - **Canonical encoding.** Set digests are PRFs over encoded bytes, so
//!   [`Value::encode`] produces exactly one byte string per value.

use crate::codec::{put_bytes, put_f64, put_i64, Reader};
use crate::error::{Error, Result};
use std::cmp::Ordering;
use std::fmt;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// UTF-8 string.
    Str,
    /// Calendar date, stored as days since 1970-01-01.
    Date,
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnType::Int => write!(f, "INT"),
            ColumnType::Float => write!(f, "FLOAT"),
            ColumnType::Str => write!(f, "TEXT"),
            ColumnType::Date => write!(f, "DATE"),
        }
    }
}

/// A single SQL scalar value.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum Value {
    /// SQL NULL. Sorts before every non-null value.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. Ordered with `f64::total_cmp` so the order is total.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Days since the Unix epoch. Kept distinct from `Int` so date literals
    /// (`DATE '1994-01-01'`) compare only against date columns.
    Date(i32),
}

/// Fixed rank used to order values of different types; within a rank the
/// natural order applies. Comparing across types is needed because chains
/// hold the ⊥/⊤ sentinels plus user keys of one declared type, but a
/// malicious host could splice foreign-typed bytes in — ordering must stay
/// total even then so evidence checks can reject rather than panic.
fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Int(_) => 1,
        Value::Float(_) => 1, // ints and floats compare numerically
        Value::Date(_) => 2,
        Value::Str(_) => 3,
    }
}

impl Value {
    /// The [`ColumnType`] this value inhabits, or `None` for NULL.
    pub fn column_type(&self) -> Option<ColumnType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ColumnType::Int),
            Value::Float(_) => Some(ColumnType::Float),
            Value::Str(_) => Some(ColumnType::Str),
            Value::Date(_) => Some(ColumnType::Date),
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view used by arithmetic and numeric comparisons.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            other => Err(Error::Type(format!("{other} is not numeric"))),
        }
    }

    /// Integer view; floats are rejected (no silent truncation).
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(Error::Type(format!("{other} is not an integer"))),
        }
    }

    /// String view.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::Type(format!("{other} is not a string"))),
        }
    }

    /// Date view (days since epoch).
    pub fn as_date(&self) -> Result<i32> {
        match self {
            Value::Date(d) => Ok(*d),
            other => Err(Error::Type(format!("{other} is not a date"))),
        }
    }

    /// Coerce this value to `ty`, if a lossless coercion exists
    /// (Int → Float, Int → Date). NULL coerces to any type.
    pub fn coerce(self, ty: ColumnType) -> Result<Value> {
        match (self, ty) {
            (Value::Null, _) => Ok(Value::Null),
            (v @ Value::Int(_), ColumnType::Int) => Ok(v),
            (Value::Int(i), ColumnType::Float) => Ok(Value::Float(i as f64)),
            (Value::Int(i), ColumnType::Date) => Ok(Value::Date(i as i32)),
            (v @ Value::Float(_), ColumnType::Float) => Ok(v),
            (v @ Value::Str(_), ColumnType::Str) => Ok(v),
            (v @ Value::Date(_), ColumnType::Date) => Ok(v),
            (v, ty) => Err(Error::Type(format!("cannot coerce {v} to {ty}"))),
        }
    }

    /// Canonical byte encoding (tag byte + payload). See module docs.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Value::Null => buf.push(0),
            Value::Int(i) => {
                buf.push(1);
                put_i64(buf, *i);
            }
            Value::Float(f) => {
                buf.push(2);
                put_f64(buf, *f);
            }
            Value::Str(s) => {
                buf.push(3);
                put_bytes(buf, s.as_bytes());
            }
            Value::Date(d) => {
                buf.push(4);
                put_i64(buf, *d as i64);
            }
        }
    }

    /// Encode into a fresh buffer.
    pub fn encode_to_vec(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16);
        self.encode(&mut buf);
        buf
    }

    /// Decode one value from `r`, advancing it.
    pub fn decode(r: &mut Reader<'_>) -> Result<Value> {
        match r.get_u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(r.get_i64()?)),
            2 => Ok(Value::Float(r.get_f64()?)),
            3 => {
                let bytes = r.get_bytes()?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|e| Error::Codec(format!("invalid utf8: {e}")))?;
                Ok(Value::Str(s.to_owned()))
            }
            4 => Ok(Value::Date(r.get_i64()? as i32)),
            tag => Err(Error::Codec(format!("unknown value tag {tag}"))),
        }
    }

    /// Parse a `YYYY-MM-DD` literal into days since 1970-01-01
    /// (proleptic Gregorian; no external time crate needed).
    pub fn parse_date(s: &str) -> Result<Value> {
        let parts: Vec<&str> = s.split('-').collect();
        if parts.len() != 3 {
            return Err(Error::Parse(format!("bad date literal: {s}")));
        }
        let y: i64 = parts[0]
            .parse()
            .map_err(|_| Error::Parse(format!("bad year in date: {s}")))?;
        let m: i64 = parts[1]
            .parse()
            .map_err(|_| Error::Parse(format!("bad month in date: {s}")))?;
        let d: i64 = parts[2]
            .parse()
            .map_err(|_| Error::Parse(format!("bad day in date: {s}")))?;
        if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
            return Err(Error::Parse(format!("date out of range: {s}")));
        }
        Ok(Value::Date(days_from_civil(y, m, d) as i32))
    }

    /// Render a date value back to `YYYY-MM-DD`.
    pub fn format_date(days: i32) -> String {
        let (y, m, d) = civil_from_days(days as i64);
        format!("{y:04}-{m:02}-{d:02}")
    }
}

/// Howard Hinnant's `days_from_civil` algorithm.
fn days_from_civil(y: i64, m: i64, d: i64) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m + 9) % 12; // March = 0
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i64, i64, i64) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Int(i) => {
                1u8.hash(state);
                (*i as f64).to_bits().hash(state); // hash-compatible with eq across Int/Float
            }
            Value::Float(f) => {
                1u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                4u8.hash(state);
                d.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "{}", Value::format_date(*d)),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_sane() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::Float(2.0) == Value::Int(2));
        assert!(Value::Str("a".into()) < Value::Str("b".into()));
        assert!(Value::Date(10) < Value::Date(11));
        // cross-type: int-family < date < str
        assert!(Value::Int(i64::MAX) < Value::Date(0));
        assert!(Value::Date(i32::MAX) < Value::Str(String::new()));
    }

    #[test]
    fn nan_ordering_is_total() {
        let nan = Value::Float(f64::NAN);
        let inf = Value::Float(f64::INFINITY);
        assert!(nan > inf); // total_cmp places +NaN above +inf
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
    }

    #[test]
    fn encode_decode_round_trip() {
        let vals = vec![
            Value::Null,
            Value::Int(-7),
            Value::Float(3.25),
            Value::Str("VeriDB ✓".into()),
            Value::Date(8766),
        ];
        for v in vals {
            let buf = v.encode_to_vec();
            let mut r = Reader::new(&buf);
            let back = Value::decode(&mut r).unwrap();
            assert_eq!(v, back);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn canonical_encoding_is_deterministic() {
        let a = Value::Str("x".into()).encode_to_vec();
        let b = Value::Str("x".into()).encode_to_vec();
        assert_eq!(a, b);
    }

    #[test]
    fn date_parsing_matches_known_anchors() {
        assert_eq!(Value::parse_date("1970-01-01").unwrap(), Value::Date(0));
        assert_eq!(Value::parse_date("1970-01-02").unwrap(), Value::Date(1));
        assert_eq!(Value::parse_date("1969-12-31").unwrap(), Value::Date(-1));
        // TPC-H range anchor: 1992-01-01 is 8035 days after epoch.
        assert_eq!(Value::parse_date("1992-01-01").unwrap(), Value::Date(8035));
        assert_eq!(Value::parse_date("2000-03-01").unwrap(), Value::Date(11017));
    }

    #[test]
    fn date_round_trips_through_format() {
        for days in [-1000, -1, 0, 1, 8035, 11017, 20000] {
            let s = Value::format_date(days);
            assert_eq!(Value::parse_date(&s).unwrap(), Value::Date(days));
        }
    }

    #[test]
    fn bad_dates_rejected() {
        assert!(Value::parse_date("1994").is_err());
        assert!(Value::parse_date("1994-13-01").is_err());
        assert!(Value::parse_date("1994-00-01").is_err());
        assert!(Value::parse_date("1994-01-40").is_err());
        assert!(Value::parse_date("abcd-ef-gh").is_err());
    }

    #[test]
    fn coercions() {
        assert_eq!(
            Value::Int(3).coerce(ColumnType::Float).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(Value::Null.coerce(ColumnType::Str).unwrap(), Value::Null);
        assert!(Value::Str("x".into()).coerce(ColumnType::Int).is_err());
        assert!(Value::Float(1.5).coerce(ColumnType::Int).is_err());
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut r = Reader::new(&[99u8]);
        assert!(Value::decode(&mut r).is_err());
        let mut r = Reader::new(&[3u8, 2, 0, 0, 0, 0xff, 0xfe]); // invalid utf8
        assert!(Value::decode(&mut r).is_err());
    }
}
