//! Low-level byte encoding helpers shared by the row codec and the
//! storage-layer record codec.
//!
//! All integers are little-endian. Length-prefixed values use a u32 length.
//! The encoding must be *canonical* (one byte string per value) because the
//! verification digests are computed over encoded bytes: two encodings of
//! the same logical value would produce different PRF outputs and break
//! ReadSet/WriteSet equality.

use crate::error::{Error, Result};

/// Append a `u16` in little-endian order.
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u32` in little-endian order.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` in little-endian order.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `i64` in little-endian order.
pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its IEEE-754 bit pattern.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Append a u32-length-prefixed byte string.
pub fn put_bytes(buf: &mut Vec<u8>, v: &[u8]) {
    put_u32(buf, v.len() as u32);
    buf.extend_from_slice(v);
}

/// A cursor for reading back values produced by the `put_*` helpers.
///
/// Every read is bounds-checked and yields [`Error::Codec`] on truncation,
/// because the bytes come from *untrusted* memory: a malicious host may hand
/// back arbitrarily mangled buffers and decoding must never panic.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Create a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::Codec(format!(
                "truncated input: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64> {
        Ok(self.get_u64()? as i64)
    }

    /// Read an IEEE-754 `f64`.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a u32-length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut buf = Vec::new();
        put_u16(&mut buf, 0xBEEF);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_i64(&mut buf, -42);
        put_f64(&mut buf, -1.5);
        put_bytes(&mut buf, b"hello");

        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), -1.5);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let buf = vec![1u8, 2];
        let mut r = Reader::new(&buf);
        assert!(r.get_u32().is_err());

        // Length prefix claims more bytes than exist.
        let mut buf = Vec::new();
        put_u32(&mut buf, 1000);
        buf.push(7);
        let mut r = Reader::new(&buf);
        assert!(r.get_bytes().is_err());
    }

    #[test]
    fn nan_round_trips_bit_exactly() {
        let mut buf = Vec::new();
        let nan = f64::from_bits(0x7ff8_0000_0000_0001);
        put_f64(&mut buf, nan);
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_f64().unwrap().to_bits(), nan.to_bits());
    }
}
