//! CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
//!
//! Shared by the network frame codec and the write-ahead-log record codec.
//! A CRC is *hygiene*, not integrity: it catches accidental corruption
//! (truncated writes, bit rot, torn tails) early and cheaply, but an
//! adversary can recompute it. Integrity always rests on MACs computed
//! inside the enclave trust domain.

/// CRC-32 over `data` (IEEE check value: `crc32(b"123456789") == 0xCBF43926`).
pub fn crc32(data: &[u8]) -> u32 {
    // Build the table on first use; 1 KiB, cheap to race.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
