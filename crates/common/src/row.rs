//! Tuples and the row codec.
//!
//! A [`Row`] is an owned tuple of [`Value`]s. The codec writes a column
//! count followed by each value's canonical encoding; it is the `data`
//! payload stored inside storage-layer records and the unit the volcano
//! operators pass between each other.

use crate::codec::{put_u16, Reader};
use crate::error::Result;
use crate::value::Value;
use std::fmt;
use std::ops::Index;

/// An owned tuple of values.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Build a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// The values, in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume the row, yielding its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the row has no columns.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at `idx` (panics on out-of-range, like slice indexing).
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Append a value (used when operators widen tuples, e.g. joins).
    pub fn push(&mut self, v: Value) {
        self.values.push(v);
    }

    /// Concatenate two rows (join output).
    pub fn concat(mut self, other: Row) -> Row {
        self.values.extend(other.values);
        self
    }

    /// Join output from two borrowed rows: one exact-capacity allocation,
    /// no intermediate clone of either side.
    pub fn joined(&self, other: &Row) -> Row {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Row { values }
    }

    /// Project this row onto the given column indices.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row::new(indices.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Canonical encoding: u16 column count + each value's encoding.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        put_u16(buf, self.values.len() as u16);
        for v in &self.values {
            v.encode(buf);
        }
    }

    /// Encode into a fresh buffer.
    pub fn encode_to_vec(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.values.len() * 12);
        self.encode(&mut buf);
        buf
    }

    /// Decode a row from `r`, advancing it.
    pub fn decode(r: &mut Reader<'_>) -> Result<Row> {
        let n = r.get_u16()? as usize;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(Value::decode(r)?);
        }
        Ok(Row { values })
    }

    /// Decode a row that occupies the whole buffer.
    pub fn decode_from_slice(buf: &[u8]) -> Result<Row> {
        let mut r = Reader::new(buf);
        Row::decode(&mut r)
    }
}

impl Index<usize> for Row {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        &self.values[idx]
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row { values }
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Row {
            values: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Row {
        Row::new(vec![
            Value::Int(42),
            Value::Str("widget".into()),
            Value::Float(9.99),
            Value::Null,
        ])
    }

    #[test]
    fn encode_decode_round_trip() {
        let row = sample();
        let buf = row.encode_to_vec();
        assert_eq!(Row::decode_from_slice(&buf).unwrap(), row);
    }

    #[test]
    fn empty_row_round_trips() {
        let row = Row::default();
        let buf = row.encode_to_vec();
        assert_eq!(Row::decode_from_slice(&buf).unwrap(), row);
    }

    #[test]
    fn project_and_concat() {
        let row = sample();
        let p = row.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Float(9.99), Value::Int(42)]);

        let joined = p.concat(Row::new(vec![Value::Int(1)]));
        assert_eq!(joined.len(), 3);
        assert_eq!(joined[2], Value::Int(1));
    }

    #[test]
    fn joined_matches_concat() {
        let a = sample();
        let b = Row::new(vec![Value::Int(7), Value::Str("x".into())]);
        assert_eq!(a.joined(&b), a.clone().concat(b));
    }

    #[test]
    fn decode_rejects_truncation() {
        let row = sample();
        let buf = row.encode_to_vec();
        assert!(Row::decode_from_slice(&buf[..buf.len() - 1]).is_err());
        assert!(Row::decode_from_slice(&buf[..1]).is_err());
    }

    #[test]
    fn display_renders_tuples() {
        assert_eq!(
            Row::new(vec![Value::Int(1), Value::Null]).to_string(),
            "(1, NULL)"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<i64>().prop_map(Value::Int),
            any::<f64>().prop_map(Value::Float),
            "[a-zA-Z0-9 ]{0,32}".prop_map(Value::Str),
            any::<i32>().prop_map(Value::Date),
        ]
    }

    /// Codec edge cases the uniform generator rarely produces: empty and
    /// maximum-width string columns (the widest a 64 KiB-addressed slot
    /// could ever hold), multi-byte UTF-8, and numeric extremes.
    fn arb_edge_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Str(String::new())),
            Just(Value::Str("w".repeat(u16::MAX as usize))),
            Just(Value::Str("mötley-crüe ✓".into())),
            Just(Value::Int(i64::MIN)),
            Just(Value::Int(i64::MAX)),
            Just(Value::Float(f64::NAN)),
            Just(Value::Float(f64::NEG_INFINITY)),
            Just(Value::Float(-0.0)),
            Just(Value::Date(i32::MIN)),
            arb_value(),
        ]
    }

    proptest! {
        #[test]
        fn any_row_round_trips(values in prop::collection::vec(arb_value(), 0..24)) {
            let row = Row::new(values);
            let buf = row.encode_to_vec();
            let back = Row::decode_from_slice(&buf).unwrap();
            // NaN-containing rows still round trip because Value::eq uses
            // total ordering.
            prop_assert_eq!(row, back);
        }

        #[test]
        fn edge_rows_round_trip(values in prop::collection::vec(arb_edge_value(), 0..8)) {
            let row = Row::new(values);
            let buf = row.encode_to_vec();
            let back = Row::decode_from_slice(&buf).unwrap();
            prop_assert_eq!(row, back);
        }

        #[test]
        fn value_ordering_is_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
            let mut v = [a, b, c];
            v.sort();
            prop_assert!(v[0] <= v[1] && v[1] <= v[2] && v[0] <= v[2]);
        }
    }
}
