//! Deterministic crash injection for durability testing.
//!
//! The crash-recovery test suite must be able to kill a server process at
//! *exact* points in the commit pipeline — between buffering a log record,
//! fsyncing it, sealing a snapshot manifest, and acknowledging the client —
//! to prove that every interleaving recovers to a correct state or a
//! visible refusal, never a silently wrong one.
//!
//! [`crashpoint`] is a named no-op unless the process was started with
//! `VERIDB_CRASH_AT=<name>` (abort on the first hit of that point) or
//! `VERIDB_CRASH_AT=<name>:<n>` (abort on the n-th hit, 1-based). On a
//! match the process calls [`std::process::abort`] — no destructors, no
//! flushes, the closest userspace gets to yanking the power cord.
//!
//! The environment variable is read once; the hit counter only ever tracks
//! the single armed point, so unarmed production processes pay one atomic
//! load per call site.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

struct Armed {
    name: String,
    nth: u64,
    hits: AtomicU64,
}

fn armed() -> Option<&'static Armed> {
    static ARMED: OnceLock<Option<Armed>> = OnceLock::new();
    ARMED
        .get_or_init(|| {
            let spec = std::env::var("VERIDB_CRASH_AT").ok()?;
            let spec = spec.trim();
            if spec.is_empty() {
                return None;
            }
            let (name, nth) = match spec.rsplit_once(':') {
                Some((name, n)) => match n.parse::<u64>() {
                    Ok(n) if n >= 1 => (name, n),
                    _ => {
                        eprintln!(
                            "warning: invalid VERIDB_CRASH_AT count in {spec:?}; \
                             expected <name> or <name>:<n> with n >= 1"
                        );
                        return None;
                    }
                },
                None => (spec, 1),
            };
            Some(Armed {
                name: name.to_owned(),
                nth,
                hits: AtomicU64::new(0),
            })
        })
        .as_ref()
}

/// Abort the process if the crash point `name` is armed via
/// `VERIDB_CRASH_AT` and this is its n-th hit. No-op otherwise.
pub fn crashpoint(name: &str) {
    let Some(armed) = armed() else {
        return;
    };
    if armed.name != name {
        return;
    }
    let hit = armed.hits.fetch_add(1, Ordering::Relaxed) + 1;
    if hit == armed.nth {
        // stderr is best-effort: the whole point is to die unceremoniously.
        eprintln!("VERIDB_CRASH_AT: aborting at crash point {name:?} (hit {hit})");
        std::process::abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The env var is read once per process, so in-process tests can only
    // exercise the unarmed path; the armed path is exercised by the
    // child-process suite in tests/tests/crash_recovery.rs.
    #[test]
    fn unarmed_crashpoint_is_a_no_op() {
        crashpoint("wal-pre-fsync");
        crashpoint("anything-at-all");
    }
}
