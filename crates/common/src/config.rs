//! Configuration for a VeriDB instance.
//!
//! Every knob the paper's evaluation turns is here, so the benchmark harness
//! can reproduce each figure by constructing configs rather than by forking
//! code paths:
//!
//! - Figure 9 sweeps `verify_rsws` / `verify_metadata`.
//! - Figure 10 sweeps `verify_every_ops` (one page scan per N operations).
//! - Figure 13 sweeps `rsws_partitions`.

/// Which keyed PRF backs the ReadSet/WriteSet digests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PrfBackend {
    /// HMAC-SHA-256: the cryptographic default, matching the paper's
    /// security claims.
    HmacSha256,
    /// Keyed SipHash-2-4 (128-bit): a fast PRF standing in for the
    /// hardware-accelerated hashing the paper's §6.1 discussion anticipates.
    /// Not collision-resistant against adversaries who know the key — but
    /// the key never leaves the (simulated) enclave.
    SipHash,
}

/// Tunables for a VeriDB instance.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct VeriDbConfig {
    /// Page size in bytes for the untrusted page-structured storage.
    /// The paper assumes 8 KB pages (§4.3).
    pub page_size: usize,
    /// Number of ReadSet/WriteSet digest pairs. Pages are partitioned by id
    /// across the pairs; each pair has its own lock (§4.3 "Use multiple
    /// RSWSs to avoid lock contention").
    pub rsws_partitions: usize,
    /// Maintain the RS/WS digests at all. Disabling yields the evaluation's
    /// "Baseline" configuration (no verifiability).
    pub verify_rsws: bool,
    /// Include page-metadata maintenance (slot directory, header updates)
    /// in the RS/WS digests. The paper's §4.3 optimization excludes it,
    /// cutting RS/WS updates by 50–65% and overall overhead by ~20%.
    pub verify_metadata: bool,
    /// Background verifier cadence: perform one page scan per this many
    /// read/write operations. `None` disables non-quiescent verification
    /// (digests are still maintained; verification can be run manually).
    pub verify_every_ops: Option<u64>,
    /// Track touched pages in an in-enclave bitmap and only scan those
    /// (§4.3 "Avoid scanning unvisited pages during verification").
    pub track_touched_pages: bool,
    /// Compact pages as a side task of the verification scan (§4.3
    /// "Compact page during verification"). When false, deletes reclaim
    /// space eagerly (the expensive pre-optimization behaviour).
    pub compact_during_verification: bool,
    /// PRF backend for the set digests.
    pub prf: PrfBackend,
    /// Simulated EPC budget in bytes (the usable enclave memory; the paper
    /// quotes 96 MB). Enclave-resident state beyond this budget triggers
    /// simulated page-swap cost accounting.
    pub epc_budget: usize,
    /// Charge simulated cycle costs for ECalls/OCalls/EPC faults to the
    /// cost model (pure accounting; never sleeps).
    pub model_sgx_costs: bool,
    /// Maintain the `veridb-obs` metric registry (a few relaxed atomics per
    /// protected operation). Disable to shave the last fractions of a
    /// percent off the hot path; `VeriDb::metrics()` then reports only the
    /// enclave cost-substrate figures.
    #[serde(default = "default_metrics")]
    pub metrics: bool,
    /// Per-query degree-of-parallelism cap for intra-query parallelism
    /// (morsel-driven scans, joins, aggregation) and for synchronous
    /// verification passes: the maximum number of *shared-pool* workers
    /// one query's parallel region may occupy (it no longer sizes a
    /// private per-query pool — see `pool_threads`). `1` disables
    /// parallel execution entirely (plans carry no Exchange/Gather nodes
    /// and are bit-identical to the serial planner's output). The default
    /// honours the `VERIDB_WORKERS` environment variable so test/CI runs
    /// can sweep the knob without code changes.
    #[serde(default = "default_workers")]
    pub workers: usize,
    /// Size of the process-wide scheduler worker pool shared by every
    /// concurrent query (`veridb_common::sched`). `0` (the default) sizes
    /// it automatically: `VERIDB_POOL` if set, else `VERIDB_WORKERS`
    /// (preserving legacy single-knob deployments' thread budgets), else
    /// machine parallelism. The pool is created once per process on
    /// first use; the first database open wins and later conflicting
    /// sizes are warned about and ignored.
    #[serde(default = "default_pool_threads")]
    pub pool_threads: usize,
    /// Capacity in bytes of the enclave-resident verified cell cache
    /// (§4.3-style hot-path optimization): cells verified by a protected
    /// read are pinned in trusted memory so subsequent reads and writes of
    /// the same cell skip the PRF, the digest folds, and the page mutex.
    /// `0` disables the cache entirely. The default honours the
    /// `VERIDB_CELL_CACHE` environment variable so test/CI runs can sweep
    /// (or disable) the cache without code changes. Capacity counts
    /// against the simulated EPC budget.
    #[serde(default = "default_cell_cache_bytes")]
    pub cell_cache_bytes: usize,
    /// Address the `veridb-net` server listens on when `veridb serve` is
    /// run without `--listen` (e.g. `"127.0.0.1:5433"`). `None` means the
    /// instance is not networked. Honours `VERIDB_LISTEN`.
    #[serde(default = "default_listen_addr")]
    pub listen_addr: Option<String>,
    /// Maximum concurrent client connections the network server holds
    /// open; further accepts are back-pressured (left in the kernel
    /// backlog) until a slot frees. Honours `VERIDB_MAX_CONNS`.
    #[serde(default = "default_max_conns")]
    pub max_conns: usize,
    /// Per-connection socket read/write timeout in milliseconds for the
    /// network server and `RemoteClient`. Honours
    /// `VERIDB_NET_TIMEOUT_MS`.
    #[serde(default = "default_net_timeout_ms")]
    pub net_timeout_ms: u64,
    /// Maximum number of decoded QUERY frames queued for execution across
    /// all connections. When the queue is full, further queries are
    /// refused with a retryable `Overloaded` error instead of being
    /// buffered without bound. Honours `VERIDB_NET_QUEUE`.
    #[serde(default = "default_net_queue_depth")]
    pub net_queue_depth: usize,
    /// Number of exactly-tracked query ids in each portal's replay filter
    /// (above the low watermark). Concurrent remote clients multiplexed
    /// over one channel need a wider window than the in-process default.
    /// Honours `VERIDB_REPLAY_WINDOW`.
    #[serde(default = "default_replay_window")]
    pub replay_window: usize,
    /// Directory for durable state: the MAC-chained write-ahead log,
    /// sealed snapshot manifests, the trusted monotonic counter and the
    /// sealed enclave seed. `None` (the default) keeps the instance purely
    /// in-memory, exactly as before the durability subsystem existed.
    /// Honours `VERIDB_DATA_DIR`.
    #[serde(default = "default_data_dir")]
    pub data_dir: Option<String>,
    /// Address of a primary to follow as a warm replica (`veridb serve
    /// --replica-of host:port`). The replica subscribes to the primary's
    /// endorsed log stream and applies every record through the same
    /// verified write path. `None` means standalone/primary.
    #[serde(default)]
    pub replica_of: Option<String>,
    /// Group-commit window in microseconds: how long the WAL flusher
    /// lingers to let more appends join one fsync. `0` degenerates to
    /// fsync-per-commit. Honours `VERIDB_GROUP_COMMIT_US`.
    #[serde(default = "default_group_commit_window_us")]
    pub group_commit_window_us: u64,
    /// Seal a snapshot + manifest (and bump the trusted counter) every
    /// this many durable log records, bounding recovery replay time.
    /// `0` disables automatic sealing (a seal still happens on clean
    /// recovery). Honours `VERIDB_SNAPSHOT_EVERY`.
    #[serde(default = "default_snapshot_every_records")]
    pub snapshot_every_records: u64,
    /// WAL segment rotation threshold in bytes. Honours
    /// `VERIDB_WAL_SEGMENT_BYTES`.
    #[serde(default = "default_wal_segment_bytes")]
    pub wal_segment_bytes: u64,
}

fn default_metrics() -> bool {
    true
}

/// Default cell cache capacity when `VERIDB_CELL_CACHE` is unset: big
/// enough to pin the TPC-C warehouse/district hot set, small next to the
/// 96 MB EPC budget.
pub const DEFAULT_CELL_CACHE_BYTES: usize = 4 * 1024 * 1024;

/// `0` = auto: the scheduler resolves `VERIDB_POOL` → `VERIDB_WORKERS` →
/// machine parallelism at pool-start time (`sched::default_pool_threads`).
fn default_pool_threads() -> usize {
    0
}

fn default_workers() -> usize {
    match std::env::var("VERIDB_WORKERS") {
        Err(_) => 1,
        Ok(s) => match s.parse::<usize>() {
            Ok(n) if (1..=64).contains(&n) => n,
            _ => {
                eprintln!(
                    "warning: invalid VERIDB_WORKERS value {s:?} (expected 1..=64); \
                     falling back to 1 worker"
                );
                1
            }
        },
    }
}

/// Default connection cap when `VERIDB_MAX_CONNS` is unset.
pub const DEFAULT_MAX_CONNS: usize = 64;
/// Default socket timeout when `VERIDB_NET_TIMEOUT_MS` is unset.
pub const DEFAULT_NET_TIMEOUT_MS: u64 = 5_000;
/// Default portal replay-window size when `VERIDB_REPLAY_WINDOW` is
/// unset (matches the pre-knob hardcoded window).
pub const DEFAULT_REPLAY_WINDOW: usize = 1024;
/// Default admission-queue depth when `VERIDB_NET_QUEUE` is unset: four
/// queued queries per default connection slot.
pub const DEFAULT_NET_QUEUE_DEPTH: usize = 256;

fn default_listen_addr() -> Option<String> {
    std::env::var("VERIDB_LISTEN")
        .ok()
        .filter(|s| !s.is_empty())
}

/// Parse a bounded numeric env knob, warning (with the offending value
/// named) and falling back to the default when out of range — the same
/// contract `VERIDB_WORKERS` established.
fn env_knob<T: std::str::FromStr + PartialOrd + std::fmt::Display + Copy>(
    var: &str,
    lo: T,
    hi: T,
    default: T,
) -> T {
    match std::env::var(var) {
        Err(_) => default,
        Ok(s) => match s.parse::<T>() {
            Ok(n) if n >= lo && n <= hi => n,
            _ => {
                eprintln!(
                    "warning: invalid {var} value {s:?} (expected {lo}..={hi}); \
                     falling back to {default}"
                );
                default
            }
        },
    }
}

fn default_max_conns() -> usize {
    env_knob("VERIDB_MAX_CONNS", 1, 65_536, DEFAULT_MAX_CONNS)
}

fn default_net_timeout_ms() -> u64 {
    env_knob(
        "VERIDB_NET_TIMEOUT_MS",
        10,
        3_600_000,
        DEFAULT_NET_TIMEOUT_MS,
    )
}

fn default_replay_window() -> usize {
    env_knob("VERIDB_REPLAY_WINDOW", 1, 1 << 22, DEFAULT_REPLAY_WINDOW)
}

fn default_net_queue_depth() -> usize {
    env_knob("VERIDB_NET_QUEUE", 1, 1 << 20, DEFAULT_NET_QUEUE_DEPTH)
}

/// Default group-commit window when `VERIDB_GROUP_COMMIT_US` is unset:
/// long enough to batch concurrent commits, short next to a query.
pub const DEFAULT_GROUP_COMMIT_WINDOW_US: u64 = 100;
/// Default seal cadence when `VERIDB_SNAPSHOT_EVERY` is unset.
pub const DEFAULT_SNAPSHOT_EVERY_RECORDS: u64 = 10_000;
/// Default WAL segment size when `VERIDB_WAL_SEGMENT_BYTES` is unset.
pub const DEFAULT_WAL_SEGMENT_BYTES: u64 = 64 * 1024 * 1024;

fn default_data_dir() -> Option<String> {
    std::env::var("VERIDB_DATA_DIR")
        .ok()
        .filter(|s| !s.is_empty())
}

fn default_group_commit_window_us() -> u64 {
    env_knob(
        "VERIDB_GROUP_COMMIT_US",
        0,
        1_000_000,
        DEFAULT_GROUP_COMMIT_WINDOW_US,
    )
}

fn default_snapshot_every_records() -> u64 {
    env_knob(
        "VERIDB_SNAPSHOT_EVERY",
        0,
        u64::MAX,
        DEFAULT_SNAPSHOT_EVERY_RECORDS,
    )
}

fn default_wal_segment_bytes() -> u64 {
    env_knob(
        "VERIDB_WAL_SEGMENT_BYTES",
        1 << 16,
        1 << 40,
        DEFAULT_WAL_SEGMENT_BYTES,
    )
}

fn default_cell_cache_bytes() -> usize {
    match std::env::var("VERIDB_CELL_CACHE") {
        Err(_) => DEFAULT_CELL_CACHE_BYTES,
        Ok(s) => match s.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!(
                    "warning: invalid VERIDB_CELL_CACHE value {s:?} (expected bytes, \
                     0 disables); falling back to {DEFAULT_CELL_CACHE_BYTES}"
                );
                DEFAULT_CELL_CACHE_BYTES
            }
        },
    }
}

impl Default for VeriDbConfig {
    fn default() -> Self {
        VeriDbConfig {
            page_size: 8 * 1024,
            rsws_partitions: 16,
            verify_rsws: true,
            verify_metadata: false,
            verify_every_ops: Some(1000),
            track_touched_pages: true,
            compact_during_verification: true,
            prf: PrfBackend::HmacSha256,
            epc_budget: 96 * 1024 * 1024,
            model_sgx_costs: true,
            metrics: default_metrics(),
            workers: default_workers(),
            pool_threads: default_pool_threads(),
            cell_cache_bytes: default_cell_cache_bytes(),
            listen_addr: default_listen_addr(),
            max_conns: default_max_conns(),
            net_timeout_ms: default_net_timeout_ms(),
            net_queue_depth: default_net_queue_depth(),
            replay_window: default_replay_window(),
            data_dir: default_data_dir(),
            replica_of: None,
            group_commit_window_us: default_group_commit_window_us(),
            snapshot_every_records: default_snapshot_every_records(),
            wal_segment_bytes: default_wal_segment_bytes(),
        }
    }
}

impl VeriDbConfig {
    /// The evaluation's "Baseline": no verifiability machinery at all.
    pub fn baseline() -> Self {
        VeriDbConfig {
            verify_rsws: false,
            verify_metadata: false,
            verify_every_ops: None,
            ..Self::default()
        }
    }

    /// The evaluation's "RSWS" configuration: record verification on,
    /// page metadata excluded (the optimized default).
    pub fn rsws() -> Self {
        VeriDbConfig {
            verify_metadata: false,
            ..Self::default()
        }
    }

    /// The evaluation's "RSWS incl. metadata" configuration.
    pub fn rsws_with_metadata() -> Self {
        VeriDbConfig {
            verify_metadata: true,
            ..Self::default()
        }
    }

    /// Validate invariant constraints; called by the database constructor.
    pub fn validate(&self) -> crate::error::Result<()> {
        use crate::error::Error;
        if self.page_size < 256 {
            return Err(Error::Config(format!(
                "page_size {} too small (min 256)",
                self.page_size
            )));
        }
        if self.page_size > u16::MAX as usize + 1 {
            return Err(Error::Config(format!(
                "page_size {} exceeds 64 KiB slot addressing",
                self.page_size
            )));
        }
        if self.rsws_partitions == 0 {
            return Err(Error::Config("rsws_partitions must be >= 1".into()));
        }
        if self.verify_every_ops == Some(0) {
            return Err(Error::Config("verify_every_ops must be >= 1".into()));
        }
        if !self.verify_rsws && self.verify_metadata {
            return Err(Error::Config("verify_metadata requires verify_rsws".into()));
        }
        if self.workers == 0 {
            return Err(Error::Config("workers must be >= 1".into()));
        }
        if self.pool_threads > crate::sched::MAX_POOL_THREADS {
            return Err(Error::Config(format!(
                "pool_threads {} exceeds the {} ceiling (0 = auto)",
                self.pool_threads,
                crate::sched::MAX_POOL_THREADS
            )));
        }
        if self.cell_cache_bytes > 0 && self.cell_cache_bytes > self.epc_budget {
            return Err(Error::Config(format!(
                "cell_cache_bytes {} exceeds epc_budget {}",
                self.cell_cache_bytes, self.epc_budget
            )));
        }
        if self.max_conns == 0 {
            return Err(Error::Config("max_conns must be >= 1".into()));
        }
        if self.net_timeout_ms == 0 {
            return Err(Error::Config("net_timeout_ms must be >= 1".into()));
        }
        if self.net_queue_depth == 0 {
            return Err(Error::Config("net_queue_depth must be >= 1".into()));
        }
        if self.net_queue_depth > 1 << 20 {
            return Err(Error::Config(format!(
                "net_queue_depth {} exceeds the 1M-frame ceiling",
                self.net_queue_depth
            )));
        }
        if self.replay_window == 0 {
            return Err(Error::Config("replay_window must be >= 1".into()));
        }
        if self.replay_window > 1 << 22 {
            return Err(Error::Config(format!(
                "replay_window {} exceeds the 4M-entry EPC-budget ceiling",
                self.replay_window
            )));
        }
        if let Some(dir) = &self.data_dir {
            if dir.is_empty() {
                return Err(Error::Config(
                    "data_dir must be a non-empty path (or None)".into(),
                ));
            }
        }
        if self.replica_of.is_some() && self.data_dir.is_none() {
            return Err(Error::Config(
                "replica_of requires data_dir (a replica persists the shipped log)".into(),
            ));
        }
        if self.group_commit_window_us > 1_000_000 {
            return Err(Error::Config(format!(
                "group_commit_window_us {} exceeds the 1s ceiling",
                self.group_commit_window_us
            )));
        }
        if self.wal_segment_bytes < 1 << 16 {
            return Err(Error::Config(format!(
                "wal_segment_bytes {} too small (min 64 KiB)",
                self.wal_segment_bytes
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        VeriDbConfig::default().validate().unwrap();
        VeriDbConfig::baseline().validate().unwrap();
        VeriDbConfig::rsws().validate().unwrap();
        VeriDbConfig::rsws_with_metadata().validate().unwrap();
    }

    #[test]
    fn presets_match_paper_configurations() {
        assert!(!VeriDbConfig::baseline().verify_rsws);
        assert!(VeriDbConfig::rsws().verify_rsws);
        assert!(!VeriDbConfig::rsws().verify_metadata);
        assert!(VeriDbConfig::rsws_with_metadata().verify_metadata);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = VeriDbConfig::default();
        c.page_size = 64;
        assert!(c.validate().is_err());

        let mut c = VeriDbConfig::default();
        c.page_size = 1 << 20;
        assert!(c.validate().is_err());

        let mut c = VeriDbConfig::default();
        c.rsws_partitions = 0;
        assert!(c.validate().is_err());

        let mut c = VeriDbConfig::default();
        c.verify_every_ops = Some(0);
        assert!(c.validate().is_err());

        let mut c = VeriDbConfig::baseline();
        c.verify_metadata = true;
        assert!(c.validate().is_err());

        let mut c = VeriDbConfig::default();
        c.workers = 0;
        assert!(c.validate().is_err());

        let mut c = VeriDbConfig::default();
        c.cell_cache_bytes = c.epc_budget + 1;
        assert!(c.validate().is_err());

        let mut c = VeriDbConfig::default();
        c.pool_threads = crate::sched::MAX_POOL_THREADS + 1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn pool_threads_zero_is_auto_and_validates() {
        let c = VeriDbConfig::default();
        assert_eq!(c.pool_threads, 0, "default is auto-sizing");
        let mut c = VeriDbConfig::default();
        c.pool_threads = crate::sched::MAX_POOL_THREADS;
        c.validate().unwrap();
    }

    #[test]
    fn cell_cache_zero_disables_and_validates() {
        let mut c = VeriDbConfig::default();
        c.cell_cache_bytes = 0;
        c.validate().unwrap();
    }

    #[test]
    fn net_knobs_validate() {
        let mut c = VeriDbConfig::default();
        c.max_conns = 0;
        assert!(c.validate().is_err());

        let mut c = VeriDbConfig::default();
        c.net_timeout_ms = 0;
        assert!(c.validate().is_err());

        let mut c = VeriDbConfig::default();
        c.replay_window = 0;
        assert!(c.validate().is_err());

        let mut c = VeriDbConfig::default();
        c.replay_window = (1 << 22) + 1;
        assert!(c.validate().is_err());

        let mut c = VeriDbConfig::default();
        c.net_queue_depth = 0;
        assert!(c.validate().is_err());

        let mut c = VeriDbConfig::default();
        c.net_queue_depth = (1 << 20) + 1;
        assert!(c.validate().is_err());

        let mut c = VeriDbConfig::default();
        c.replay_window = 64;
        c.max_conns = 1;
        c.net_timeout_ms = 10;
        c.net_queue_depth = 4;
        c.listen_addr = Some("127.0.0.1:5433".into());
        c.validate().unwrap();
    }

    #[test]
    fn durability_knobs_validate() {
        let mut c = VeriDbConfig::default();
        c.data_dir = Some(String::new());
        assert!(c.validate().is_err());

        let mut c = VeriDbConfig::default();
        c.data_dir = None;
        c.replica_of = Some("127.0.0.1:5433".into());
        assert!(c.validate().is_err());

        let mut c = VeriDbConfig::default();
        c.group_commit_window_us = 2_000_000;
        assert!(c.validate().is_err());

        let mut c = VeriDbConfig::default();
        c.wal_segment_bytes = 1024;
        assert!(c.validate().is_err());

        let mut c = VeriDbConfig::default();
        c.data_dir = Some("/tmp/veridb-data".into());
        c.replica_of = Some("127.0.0.1:5433".into());
        c.group_commit_window_us = 0;
        c.snapshot_every_records = 0;
        c.wal_segment_bytes = 1 << 16;
        c.validate().unwrap();
    }
}
