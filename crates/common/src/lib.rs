//! Shared foundation types for the VeriDB workspace.
//!
//! This crate defines the vocabulary every other VeriDB crate speaks:
//!
//! - [`Value`] / [`ColumnType`] — the SQL value model (integers, floats,
//!   strings, dates, null) with a deterministic total order and a canonical
//!   byte encoding, both of which the verification protocols depend on
//!   (set digests are computed over encoded bytes; `⟨key, nKey⟩` chains are
//!   ordered by the value order).
//! - [`Schema`] / [`ColumnDef`] — relational schemas, including which
//!   columns carry verifiable `⟨key, nKey⟩` chains.
//! - [`Row`] — a tuple of values plus the row codec used to lay tuples out
//!   in untrusted pages.
//! - [`VeriDbConfig`] — every tunable the paper's evaluation sweeps
//!   (page size, RSWS partition count, verification frequency, metadata
//!   verification, PRF backend).
//! - [`Error`] — the unified error type. Verification failures are
//!   deliberately loud, separate variants so callers cannot confuse
//!   "tampering detected" with a routine storage error.
//!
//! Nothing in this crate trusts or distrusts anything; it is pure data.

pub mod backoff;
pub mod codec;
pub mod config;
pub mod crashpoint;
pub mod crc;
pub mod error;
pub mod obs;
pub mod row;
pub mod sched;
pub mod schema;
pub mod value;

pub use config::{PrfBackend, VeriDbConfig};
pub use crashpoint::crashpoint;
pub use error::{Error, Result};
pub use obs::{Metrics, MetricsSnapshot, OperatorKind};
pub use row::Row;
pub use schema::{ColumnDef, Schema};
pub use value::{ColumnType, Value};
