//! The process-wide work-stealing worker pool shared by every concurrent
//! verified query (and by the network server's connection turns).
//!
//! Before this module, each parallel region spawned its own scoped thread
//! pool (`std::thread::scope` + per-region spawn), so N concurrent
//! connections on the server's executor pool could create up to
//! `executor × workers` threads on `cores` cores. Here a **fixed set of
//! long-lived workers** — sized to machine parallelism, overridable via
//! `VERIDB_POOL` / `VERIDB_WORKERS` — serves all jobs in the process:
//!
//! - **Indexed jobs** ([`run_job`]): a parallel region submits its morsel
//!   / partition / sort-run task set as one job. Task indices are seeded
//!   round-robin across per-job **lanes**; a worker attached to the job
//!   pops the front of its own lane and, when empty, steals from the back
//!   of a victim lane (the same discipline the scoped scheduler used, so
//!   steal observability carries over unchanged). Workers scan the job
//!   registry round-robin, so they also steal **across jobs**: an idle
//!   worker finishes helping one query's region and attaches to another
//!   query's. The per-job degree of parallelism is capped by the job's
//!   `dop` (the `--workers` knob), so one active query can use the whole
//!   pool while sixteen active queries share it without oversubscription —
//!   total live threads are bounded by the pool size no matter how many
//!   connections are executing.
//! - **Spawned tasks** ([`spawn`]): fire-and-forget closures (the network
//!   server's per-connection turns). Jobs have strict priority over
//!   spawned tasks so an admitted query's morsels never wait behind queued
//!   connection turns.
//!
//! # Blocking discipline (why this cannot deadlock)
//!
//! Workers block only on the registry condvar, and only when no job wants
//! a worker and no task is queued. A submitter blocks on its job's
//! completion condvar — unless the submitter *is* a pool worker (a
//! connection turn executing a query, or a nested parallel region), in
//! which case it first **helps**: it attaches to its own job and claims
//! tasks until none remain. Help-before-wait guarantees progress even when
//! every other worker is busy, so the wait graph over jobs is a DAG that
//! bottoms out in finite task bodies.
//!
//! # Determinism
//!
//! The scheduler never influences results: task sets are fixed before
//! submission (morsel tiling is pool-size-independent) and the caller
//! merges results in task-index order. Which worker runs which task, and
//! in what real-time order, is unobservable in query output — results are
//! byte-identical to serial execution for any pool size and any
//! concurrent load.
//!
//! # Safety
//!
//! A job body borrows the submitter's stack (plans, partition tables,
//! metrics). The pool's workers are `'static` threads, so the borrow is
//! lifetime-erased into a raw pointer with a strict protocol: every deref
//! happens between a successful [`Job::claim`] (which increments the
//! running count under the job lock) and the matching [`Job::complete`];
//! `done` is set only when no task is running and none can be claimed;
//! and [`run_job`] returns only after observing `done`. Hence no worker
//! can touch the body after `run_job` returns.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Hard ceiling on the worker pool size (mirrors the `--workers` clamp).
pub const MAX_POOL_THREADS: usize = 64;

/// Machine parallelism, clamped to the pool ceiling.
fn auto_pool_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, MAX_POOL_THREADS)
}

/// Pool size when [`configure`] was not called: `VERIDB_POOL` if set,
/// else `VERIDB_WORKERS` (the legacy knob that used to size per-query
/// scoped pools — honoring it keeps existing deployments' thread budgets
/// unchanged), else machine parallelism.
pub fn default_pool_threads() -> usize {
    for var in ["VERIDB_POOL", "VERIDB_WORKERS"] {
        if let Ok(s) = std::env::var(var) {
            match s.parse::<usize>() {
                Ok(n) if (1..=MAX_POOL_THREADS).contains(&n) => return n,
                _ => eprintln!(
                    "warning: invalid {var} value {s:?} (expected 1..={MAX_POOL_THREADS}); \
                     sizing the scheduler pool to machine parallelism"
                ),
            }
        }
    }
    auto_pool_threads()
}

static POOL: OnceLock<Pool> = OnceLock::new();
/// Size requested by [`configure`] before first use (0 = none).
static REQUESTED: AtomicUsize = AtomicUsize::new(0);
static NEXT_JOB_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// 1-based pool worker id; 0 for external threads.
    static WORKER_ID: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// True on a pool worker thread (used to pick help-before-wait).
pub fn is_pool_worker() -> bool {
    WORKER_ID.with(|w| w.get() != 0)
}

/// Request a pool size before the pool starts. Returns the effective
/// size: once the pool is running its size is fixed, and a conflicting
/// request is warned about and ignored (the process has one pool).
pub fn configure(threads: usize) -> usize {
    let t = threads.clamp(1, MAX_POOL_THREADS);
    if let Some(pool) = POOL.get() {
        if pool.size != t {
            eprintln!(
                "veridb-sched: worker pool already running with {} threads; \
                 ignoring request for {t}",
                pool.size
            );
        }
        return pool.size;
    }
    REQUESTED.store(t, Ordering::SeqCst);
    t
}

/// The pool size (starting the pool on first use).
pub fn pool_size() -> usize {
    pool().size
}

/// The number of workers currently executing a job or task.
pub fn pool_busy() -> usize {
    pool().busy.load(Ordering::Relaxed)
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let requested = REQUESTED.load(Ordering::SeqCst);
        let size = if requested > 0 {
            requested
        } else {
            default_pool_threads()
        };
        Pool::start(size)
    })
}

/// Point-in-time pool counters (exposed through `.stats` consumers).
#[derive(Debug, Clone)]
pub struct PoolStats {
    /// Fixed worker count.
    pub size: usize,
    /// Workers currently executing a job or spawned task.
    pub busy: usize,
    /// Spawned tasks waiting for a worker.
    pub queued_tasks: usize,
    /// Indexed jobs currently registered.
    pub active_jobs: usize,
    /// Spawned tasks that panicked (caught; the worker survives).
    pub task_panics: u64,
    /// Per-worker count of job *switches*: the worker's previous unit of
    /// work belonged to a different job (cross-job stealing in action).
    pub cross_job_steals: Vec<u64>,
}

/// Current pool counters (starting the pool on first use).
pub fn pool_stats() -> PoolStats {
    let p = pool();
    let (queued_tasks, active_jobs) = {
        let reg = lock(&p.registry);
        (reg.tasks.len(), reg.jobs.len())
    };
    PoolStats {
        size: p.size,
        busy: p.busy.load(Ordering::Relaxed),
        queued_tasks,
        active_jobs,
        task_panics: p.task_panics.load(Ordering::Relaxed),
        cross_job_steals: p
            .cross_steals
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect(),
    }
}

/// Run a fire-and-forget closure on the pool. Panics are caught and
/// counted; the worker survives.
pub fn spawn<F: FnOnce() + Send + 'static>(f: F) {
    let p = pool();
    lock(&p.registry).tasks.push_back(Box::new(f));
    p.work_cv.notify_one();
}

/// One claimed task of an indexed job, as seen by the job body.
#[derive(Debug, Clone, Copy)]
pub struct JobTask {
    /// Task index in `0..tasks`.
    pub index: usize,
    /// The lane the executing worker is attached to (stable per worker
    /// per attachment; feeds the per-worker metric slots).
    pub lane: usize,
    /// The index was taken from another lane's deque.
    pub stolen: bool,
    /// First task after this worker switched onto this job from a
    /// different job (cross-job steal attribution).
    pub cross_job: bool,
}

/// What [`run_job`] observed about its job's scheduling.
#[derive(Debug, Clone, Copy)]
pub struct JobStats {
    /// Microseconds from submission to the first task starting.
    pub sched_wait_us: u64,
    /// Pool size at execution time.
    pub pool_size: usize,
    /// Peak number of workers concurrently attached to the job.
    pub workers_attached: usize,
}

/// A job body: called once per claimed task; returns `false` to abort
/// the job (remaining unclaimed tasks are dropped). The lifetime lets
/// bodies borrow the submitter's stack — safe because [`run_job`] does
/// not return until no worker can touch the body again.
pub type JobBody<'a> = dyn Fn(JobTask) -> bool + Sync + 'a;

/// Submit `tasks` indices as one job with per-job DOP cap `dop`, then
/// block until every claimed task completed and no task remains claimable.
/// The calling thread helps execute the job when it is itself a pool
/// worker (see the module docs' blocking discipline). Bodies that panic
/// abort the job like a `false` return; the worker survives.
pub fn run_job(tasks: usize, dop: usize, body: &JobBody<'_>) -> JobStats {
    let p = pool();
    if tasks == 0 {
        return JobStats {
            sched_wait_us: 0,
            pool_size: p.size,
            workers_attached: 0,
        };
    }
    let dop = dop.clamp(1, tasks);
    let lanes_n = dop.min(tasks);
    let mut lanes: Vec<VecDeque<usize>> = (0..lanes_n).map(|_| VecDeque::new()).collect();
    for i in 0..tasks {
        lanes[i % lanes_n].push_back(i);
    }
    // SAFETY: lifetime erasure guarded by the claim/complete/done
    // protocol documented on the module — no deref after `done`, and
    // `run_job` returns only after `done`.
    let body_static: &'static JobBody<'static> =
        unsafe { std::mem::transmute::<&JobBody<'_>, &'static JobBody<'static>>(body) };
    let job = Arc::new(Job {
        id: NEXT_JOB_ID.fetch_add(1, Ordering::Relaxed),
        dop,
        state: Mutex::new(JobState {
            lanes,
            unclaimed: tasks,
            running: 0,
            attached: 0,
            tickets: 0,
            failed: false,
            done: false,
        }),
        done_cv: Condvar::new(),
        body: body_static as *const JobBody<'static>,
        submitted: Instant::now(),
        first_claim_us: AtomicU64::new(u64::MAX),
        peak_attached: AtomicUsize::new(0),
    });
    lock(&p.registry).jobs.push(Arc::clone(&job));
    p.work_cv.notify_all();
    if is_pool_worker() {
        // Help-before-wait: guarantees progress even when every other
        // worker is busy (and lets a lone active query on a busy server
        // run at DOP ≥ 1 immediately).
        job.run_on(false);
    }
    let mut st = lock(&job.state);
    while !st.done {
        st = job
            .done_cv
            .wait(st)
            .unwrap_or_else(|poison| poison.into_inner());
    }
    drop(st);
    lock(&p.registry).jobs.retain(|j| j.id != job.id);
    let wait = job.first_claim_us.load(Ordering::Relaxed);
    JobStats {
        sched_wait_us: if wait == u64::MAX { 0 } else { wait },
        pool_size: p.size,
        workers_attached: job.peak_attached.load(Ordering::Relaxed),
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

// ---------------------------------------------------------------------------
// Internals
// ---------------------------------------------------------------------------

struct Pool {
    size: usize,
    registry: Mutex<Registry>,
    work_cv: Condvar,
    busy: AtomicUsize,
    task_panics: AtomicU64,
    cross_steals: Vec<AtomicU64>,
}

struct Registry {
    jobs: Vec<Arc<Job>>,
    /// Round-robin cursor over `jobs` for cross-job fairness.
    next_job: usize,
    tasks: VecDeque<Box<dyn FnOnce() + Send>>,
}

impl Pool {
    fn start(size: usize) -> Pool {
        let pool = Pool {
            size,
            registry: Mutex::new(Registry {
                jobs: Vec::new(),
                next_job: 0,
                tasks: VecDeque::new(),
            }),
            work_cv: Condvar::new(),
            busy: AtomicUsize::new(0),
            task_panics: AtomicU64::new(0),
            cross_steals: (0..size).map(|_| AtomicU64::new(0)).collect(),
        };
        for i in 0..size {
            // Workers read POOL through the OnceLock: by the time any
            // work exists to claim, `get_or_init` has published it.
            std::thread::Builder::new()
                .name(format!("veridb-pool-{i}"))
                .spawn(move || worker_main(i))
                .expect("spawn scheduler worker");
        }
        pool
    }
}

enum Unit {
    Job(Arc<Job>),
    Task(Box<dyn FnOnce() + Send>),
}

fn worker_main(wid: usize) {
    WORKER_ID.with(|w| w.set(wid + 1));
    let p = pool();
    let mut last_job: u64 = 0;
    loop {
        let unit = {
            let mut reg = lock(&p.registry);
            loop {
                if let Some(u) = pick(&mut reg) {
                    break u;
                }
                reg = p
                    .work_cv
                    .wait(reg)
                    .unwrap_or_else(|poison| poison.into_inner());
            }
        };
        p.busy.fetch_add(1, Ordering::AcqRel);
        match unit {
            Unit::Job(job) => {
                let cross = last_job != 0 && last_job != job.id;
                if cross {
                    p.cross_steals[wid].fetch_add(1, Ordering::Relaxed);
                }
                last_job = job.id;
                job.run_on(cross);
            }
            Unit::Task(task) => {
                if catch_unwind(AssertUnwindSafe(task)).is_err() {
                    p.task_panics.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        p.busy.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Next unit of work: jobs (round-robin across the registry) have strict
/// priority over spawned tasks.
fn pick(reg: &mut Registry) -> Option<Unit> {
    let n = reg.jobs.len();
    for k in 0..n {
        let idx = (reg.next_job + k) % n;
        if reg.jobs[idx].wants_worker() {
            reg.next_job = (idx + 1) % n;
            return Some(Unit::Job(Arc::clone(&reg.jobs[idx])));
        }
    }
    reg.tasks.pop_front().map(Unit::Task)
}

struct Job {
    id: u64,
    /// Per-job DOP cap: at most this many workers attached at once.
    dop: usize,
    state: Mutex<JobState>,
    done_cv: Condvar,
    /// Lifetime-erased borrow of the submitter's body closure. Valid
    /// until `done` (see module safety docs).
    body: *const JobBody<'static>,
    submitted: Instant,
    /// Microseconds from submission to first claim (`u64::MAX` = none).
    first_claim_us: AtomicU64,
    peak_attached: AtomicUsize,
}

// SAFETY: `body` points at a `Sync` closure that outlives every deref
// (claim/complete/done protocol); all other fields are Sync.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

struct JobState {
    /// Per-lane index deques, seeded round-robin (lane `l` holds
    /// `l, l+lanes, l+2·lanes, …` in increasing order).
    lanes: Vec<VecDeque<usize>>,
    /// Indices not yet claimed (= total queued across lanes).
    unclaimed: usize,
    /// Claimed indices whose body is executing right now.
    running: usize,
    /// Workers currently attached.
    attached: usize,
    /// Lane-assignment ticket for arriving workers.
    tickets: usize,
    failed: bool,
    done: bool,
}

impl Job {
    /// Could this job use another worker right now? (Registry-scan
    /// filter; racy reads are fine — `attach` re-checks under the lock.)
    fn wants_worker(&self) -> bool {
        let st = lock(&self.state);
        !st.done && !st.failed && st.unclaimed > 0 && st.attached < self.dop
    }

    fn attach(&self) -> Option<usize> {
        let mut st = lock(&self.state);
        if st.done || st.failed || st.unclaimed == 0 || st.attached >= self.dop {
            return None;
        }
        st.attached += 1;
        let lane = st.tickets % st.lanes.len();
        st.tickets += 1;
        self.peak_attached.fetch_max(st.attached, Ordering::Relaxed);
        Some(lane)
    }

    fn detach(&self) {
        lock(&self.state).attached -= 1;
    }

    /// Claim the next index for a worker on `lane`: own front first, then
    /// steal victims' backs. `None` once nothing is claimable (empty
    /// lanes, failure, or done). Claiming increments `running` under the
    /// same lock, which is what makes the body borrow safe to deref.
    fn claim(&self, lane: usize) -> Option<(usize, bool)> {
        let mut st = lock(&self.state);
        if st.done || st.failed {
            return None;
        }
        let l = st.lanes.len();
        if let Some(i) = st.lanes[lane].pop_front() {
            st.unclaimed -= 1;
            st.running += 1;
            return Some((i, false));
        }
        for d in 1..l {
            let victim = (lane + d) % l;
            if let Some(i) = st.lanes[victim].pop_back() {
                st.unclaimed -= 1;
                st.running += 1;
                return Some((i, true));
            }
        }
        None
    }

    fn complete(&self, ok: bool) {
        let mut st = lock(&self.state);
        st.running -= 1;
        if !ok {
            st.failed = true;
        }
        if st.running == 0 && (st.unclaimed == 0 || st.failed) {
            st.done = true;
            self.done_cv.notify_all();
        }
    }

    fn note_first_claim(&self) {
        if self.first_claim_us.load(Ordering::Relaxed) == u64::MAX {
            let us = self.submitted.elapsed().as_micros() as u64;
            let _ = self.first_claim_us.compare_exchange(
                u64::MAX,
                us,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
        }
    }

    /// Attach, drain claims, detach. `cross_job` tags the first claimed
    /// task for steal attribution.
    fn run_on(&self, cross_job: bool) {
        let Some(lane) = self.attach() else {
            return;
        };
        let mut cross = cross_job;
        while let Some((index, stolen)) = self.claim(lane) {
            self.note_first_claim();
            // SAFETY: running > 0 for this task, so `done` cannot be set
            // and the submitter cannot have returned (module safety docs).
            let body = unsafe { &*self.body };
            let task = JobTask {
                index,
                lane,
                stolen,
                cross_job: cross,
            };
            cross = false;
            let ok = catch_unwind(AssertUnwindSafe(|| body(task))).unwrap_or(false);
            self.complete(ok);
        }
        self.detach();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn run_job_executes_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..40).map(|_| AtomicUsize::new(0)).collect();
        let stats = run_job(40, 4, &|t: JobTask| {
            hits[t.index].fetch_add(1, Ordering::SeqCst);
            true
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "index {i}");
        }
        assert!(stats.pool_size >= 1);
    }

    #[test]
    fn failed_body_stops_further_claims() {
        let ran = AtomicUsize::new(0);
        run_job(64, 2, &|t: JobTask| {
            ran.fetch_add(1, Ordering::SeqCst);
            t.index != 0
        });
        // Index 0 is the very first claim of lane 0; after it fails no
        // new claims start, so far fewer than 64 tasks run. In-flight
        // tasks on other workers may still finish — allow slack.
        assert!(
            ran.load(Ordering::SeqCst) < 64,
            "claims must stop on failure"
        );
    }

    #[test]
    fn panicking_body_fails_the_job_and_worker_survives() {
        run_job(8, 2, &|t: JobTask| {
            if t.index == 3 {
                panic!("boom");
            }
            true
        });
        // The pool must still execute new work afterwards.
        let ok = AtomicUsize::new(0);
        run_job(4, 2, &|_t: JobTask| {
            ok.fetch_add(1, Ordering::SeqCst);
            true
        });
        assert_eq!(ok.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn spawned_tasks_run_and_panics_are_counted() {
        let before = pool_stats().task_panics;
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        spawn(move || {
            d.fetch_add(1, Ordering::SeqCst);
        });
        spawn(|| panic!("task boom"));
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        while (done.load(Ordering::SeqCst) < 1 || pool_stats().task_panics < before + 1)
            && Instant::now() < deadline
        {
            std::thread::yield_now();
        }
        assert_eq!(done.load(Ordering::SeqCst), 1);
        assert!(pool_stats().task_panics > before);
    }

    #[test]
    fn nested_run_job_from_spawned_task_helps_itself() {
        // A pool worker that submits a job must make progress even if it
        // is the only worker (help-before-wait).
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        spawn(move || {
            let inner = AtomicUsize::new(0);
            run_job(16, 4, &|_t: JobTask| {
                inner.fetch_add(1, Ordering::SeqCst);
                true
            });
            if inner.load(Ordering::SeqCst) == 16 {
                d.fetch_add(1, Ordering::SeqCst);
            }
        });
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        while done.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_jobs_share_the_pool() {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let hits = AtomicUsize::new(0);
                    run_job(32, 4, &|_t: JobTask| {
                        hits.fetch_add(1, Ordering::SeqCst);
                        true
                    });
                    hits.load(Ordering::SeqCst)
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 32);
        }
    }

    #[test]
    fn stats_report_fixed_size() {
        let s = pool_stats();
        assert!(s.size >= 1 && s.size <= MAX_POOL_THREADS);
        assert_eq!(s.cross_job_steals.len(), s.size);
        assert_eq!(pool_size(), s.size);
    }
}
