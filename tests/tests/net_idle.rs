//! The reactor must idle at ~0% CPU: 256 open-but-silent connections cost
//! one `epoll_wait` tick, not 256 polling readers.
//!
//! This lives in its own integration-test binary so the process-wide CPU
//! sample below is not polluted by unrelated tests running concurrently.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use veridb::{VeriDb, VeriDbConfig};

/// Process CPU time (user + system) in clock ticks, from /proc/self/stat.
fn cpu_ticks() -> u64 {
    let stat = std::fs::read_to_string("/proc/self/stat").unwrap();
    // Fields after the parenthesised comm (which may itself contain
    // spaces): skip past the last ')'.
    let rest = &stat[stat.rfind(')').unwrap() + 2..];
    let fields: Vec<&str> = rest.split_whitespace().collect();
    // rest[0] is field 3 (state); utime/stime are fields 14/15.
    let utime: u64 = fields[11].parse().unwrap();
    let stime: u64 = fields[12].parse().unwrap();
    utime + stime
}

#[test]
fn reactor_idles_near_zero_cpu_with_256_open_connections() {
    let mut cfg = VeriDbConfig::default();
    cfg.verify_every_ops = None;
    cfg.max_conns = 512;
    // Keep the 256 silent connections alive through the sample window.
    cfg.net_timeout_ms = 30_000;
    let db = Arc::new(VeriDb::open(cfg).unwrap());
    db.sql("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
    let mut server = veridb_net::serve(Arc::clone(&db), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // 256 raw TCP connections that never send a frame. The old
    // thread-per-connection server busy-polled a reader per socket; the
    // reactor registers each fd once and sleeps.
    let mut conns: Vec<TcpStream> = Vec::with_capacity(256);
    for _ in 0..256 {
        let s = TcpStream::connect(addr).unwrap();
        conns.push(s);
    }
    // Let the accepts and epoll registrations settle.
    std::thread::sleep(Duration::from_millis(300));

    let before = cpu_ticks();
    std::thread::sleep(Duration::from_secs(2));
    let spent = cpu_ticks() - before;

    // 2 s of wall clock is 200 ticks of one core (CLK_TCK = 100). A
    // busy-polling design burns hundreds; the reactor's housekeeping
    // tick costs single digits. 30 ticks (~15% of one core) is a loose
    // ceiling that still rules out any per-connection polling.
    assert!(
        spent <= 30,
        "server burned {spent} CPU ticks over a 2s idle window with 256 connections"
    );

    // The connections are genuinely alive, not reaped: one of them can
    // still complete a handshake-less write without error.
    conns[0].write_all(&[0u8]).unwrap();
    drop(conns);
    server.shutdown();
}
