//! Remote query path: `veridb_net::serve` + `RemoteClient` must give the
//! same verified answers as the in-process path, preserve the §5.1
//! rollback defense across reconnects, and honor the configured replay
//! window — all over a real TCP socket.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use veridb::{Error, Value, VeriDb, VeriDbConfig};
use veridb_net::RemoteClient;
use veridb_workloads::tpch::{self, TpchConfig, TpchData};

const TIMEOUT: Duration = Duration::from_secs(10);

fn base_config() -> VeriDbConfig {
    let mut cfg = VeriDbConfig::default();
    cfg.verify_every_ops = None;
    cfg
}

fn small_db() -> Arc<VeriDb> {
    let db = VeriDb::open(base_config()).unwrap();
    db.sql("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        .unwrap();
    db.sql("INSERT INTO t VALUES (1,'a'),(2,'b'),(3,'c'),(4,'d')")
        .unwrap();
    Arc::new(db)
}

/// Float-tolerant result equivalence (parallel partial aggregation may
/// associate float sums differently from the serial fold).
fn rows_equivalent(a: &[veridb::Row], b: &[veridb::Row]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.values().len() == rb.values().len()
                && ra
                    .values()
                    .iter()
                    .zip(rb.values())
                    .all(|(x, y)| match (x, y) {
                        (Value::Float(fx), Value::Float(fy)) => {
                            let scale = fx.abs().max(fy.abs()).max(1.0);
                            (fx - fy).abs() <= 1e-9 * scale
                        }
                        _ => x == y,
                    })
        })
}

#[test]
fn sixteen_concurrent_clients_match_in_process_tpch() {
    // The ISSUE acceptance bar: TPC-H Q1/Q3/Q6 at 16 concurrent remote
    // clients, every result equivalent to the in-process path.
    let mut cfg = base_config();
    cfg.max_conns = 32;
    let db = Arc::new(VeriDb::open(cfg).unwrap());
    let data = TpchData::generate(&TpchConfig {
        lineitem_rows: 1_500,
        part_rows: 100,
        ..TpchConfig::default()
    });
    data.load(&db).unwrap();

    let cases = [tpch::q1(), tpch::q3(), tpch::q6()];
    let expected: Vec<veridb::QueryResult> = cases.iter().map(|sql| db.sql(sql).unwrap()).collect();

    let mut server = veridb_net::serve(Arc::clone(&db), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();
    std::thread::scope(|s| {
        for i in 0..16 {
            let addr = addr.clone();
            let expected = &expected;
            let cases = &cases;
            s.spawn(move || {
                let mut client =
                    RemoteClient::connect_simulated(&addr, &format!("tpch-{i}"), "veridb", TIMEOUT)
                        .unwrap();
                for (sql, want) in cases.iter().zip(expected) {
                    let got = client.query(sql).unwrap();
                    assert_eq!(got.columns, want.columns);
                    assert!(rows_equivalent(&got.rows, &want.rows));
                }
                client.close();
            });
        }
    });
    server.shutdown();
    db.verify_now().unwrap();
}

#[test]
fn reconnect_preserves_sequence_history() {
    let db = small_db();
    let mut server = veridb_net::serve(Arc::clone(&db), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();

    let mut client = RemoteClient::connect_simulated(&addr, "chan", "veridb", TIMEOUT).unwrap();
    let r1 = client.query("SELECT v FROM t WHERE id = 2").unwrap();
    assert_eq!(r1.rows[0].values()[0], Value::Str("b".into()));

    // A transport-level reconnect must keep both ends' sequence state: the
    // server's portal for this channel persists, and the client keeps its
    // SeqIntervals, so queries keep verifying with one contiguous run.
    client.reconnect().unwrap();
    let r2 = client.query("SELECT v FROM t WHERE id = 3").unwrap();
    assert_eq!(r2.rows[0].values()[0], Value::Str("c".into()));
    assert_eq!(
        client.sequence_intervals(),
        1,
        "sequences must stay one contiguous run across the reconnect"
    );
    server.shutdown();
}

/// Minimal re-targetable TCP forwarder: listens on one fixed address and
/// pipes each new connection to whatever upstream is current. Lets a test
/// swap the server behind a client's back — the wire-level equivalent of a
/// host restoring an old database state (a rollback/fork attack).
struct SwitchProxy {
    addr: String,
    upstream: Arc<std::sync::Mutex<String>>,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl SwitchProxy {
    fn start(upstream: &str) -> SwitchProxy {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        listener.set_nonblocking(true).unwrap();
        let upstream = Arc::new(std::sync::Mutex::new(upstream.to_owned()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let (u, sd) = (Arc::clone(&upstream), Arc::clone(&shutdown));
        let thread = std::thread::spawn(move || {
            let mut workers = Vec::new();
            while !sd.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((client, _)) => {
                        let target = u.lock().unwrap().clone();
                        let Ok(server) = TcpStream::connect(&target) else {
                            continue;
                        };
                        let (mut c2, mut s2) =
                            (client.try_clone().unwrap(), server.try_clone().unwrap());
                        let (mut c, mut s) = (client, server);
                        workers.push(std::thread::spawn(move || pipe(&mut c, &mut s)));
                        workers.push(std::thread::spawn(move || pipe(&mut s2, &mut c2)));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            for w in workers {
                let _ = w.join();
            }
        });
        SwitchProxy {
            addr,
            upstream,
            shutdown,
            thread: Some(thread),
        }
    }

    fn retarget(&self, upstream: &str) {
        *self.upstream.lock().unwrap() = upstream.to_owned();
    }
}

impl Drop for SwitchProxy {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn pipe(src: &mut TcpStream, dst: &mut TcpStream) {
    let mut buf = [0u8; 4096];
    loop {
        match src.read(&mut buf) {
            Ok(0) | Err(_) => {
                let _ = dst.shutdown(std::net::Shutdown::Both);
                return;
            }
            Ok(n) => {
                if dst.write_all(&buf[..n]).is_err() {
                    let _ = src.shutdown(std::net::Shutdown::Both);
                    return;
                }
            }
        }
    }
}

#[test]
fn server_state_rollback_is_detected_over_the_wire() {
    // Two servers opened from the same entropy and identity have identical
    // channel keys — exactly what a host replaying an old (rolled-back)
    // database snapshot would present. The fresh server restarts the
    // endorsement sequence, so the client's SeqIntervals must trip.
    let entropy = [7u8; 32];
    let mk_db = || {
        let db = VeriDb::open_with_entropy(base_config(), "veridb", entropy).unwrap();
        db.sql("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
            .unwrap();
        db.sql("INSERT INTO t VALUES (1,'a'),(2,'b')").unwrap();
        Arc::new(db)
    };
    let db_a = mk_db();
    let db_b = mk_db();
    let mut srv_a = veridb_net::serve(Arc::clone(&db_a), "127.0.0.1:0").unwrap();
    let mut srv_b = veridb_net::serve(Arc::clone(&db_b), "127.0.0.1:0").unwrap();
    let proxy = SwitchProxy::start(&srv_a.local_addr().to_string());

    let mut client =
        RemoteClient::connect_simulated(&proxy.addr, "chan", "veridb", TIMEOUT).unwrap();
    client.query("SELECT v FROM t WHERE id = 1").unwrap();

    // The host swaps in the rolled-back replica and the client reconnects.
    // The handshake itself succeeds (same keys, valid quote) — the fork is
    // only visible in the sequence history, which is the point of §5.1.
    proxy.retarget(&srv_b.local_addr().to_string());
    client.reconnect().unwrap();
    let err = client.query("SELECT v FROM t WHERE id = 1").unwrap_err();
    assert!(
        matches!(err, Error::RollbackDetected { .. }),
        "expected RollbackDetected, got: {err}"
    );
    assert!(err.is_security_violation());
    srv_a.shutdown();
    srv_b.shutdown();
}

#[test]
fn key_change_across_reconnect_is_refused() {
    // Different entropy ⇒ different channel key. Re-keying a live sequence
    // history would let a fork start a fresh sequence space undetected, so
    // the client must refuse at the handshake.
    let mk_db = |seed: u8| {
        let db = VeriDb::open_with_entropy(base_config(), "veridb", [seed; 32]).unwrap();
        db.sql("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
            .unwrap();
        db.sql("INSERT INTO t VALUES (1,'a')").unwrap();
        Arc::new(db)
    };
    let db_a = mk_db(1);
    let db_b = mk_db(2);
    let mut srv_a = veridb_net::serve(Arc::clone(&db_a), "127.0.0.1:0").unwrap();
    let mut srv_b = veridb_net::serve(Arc::clone(&db_b), "127.0.0.1:0").unwrap();
    let proxy = SwitchProxy::start(&srv_a.local_addr().to_string());

    let mut client =
        RemoteClient::connect_simulated(&proxy.addr, "chan", "veridb", TIMEOUT).unwrap();
    client.query("SELECT v FROM t WHERE id = 1").unwrap();

    proxy.retarget(&srv_b.local_addr().to_string());
    let err = client.reconnect().unwrap_err();
    assert!(
        matches!(err, Error::AuthFailed(_)),
        "expected AuthFailed on key change, got: {err}"
    );
    srv_a.shutdown();
    srv_b.shutdown();
}

#[test]
fn replay_window_is_read_from_config_and_env() {
    // Satellite (c): the portal replay window is configurable. The config
    // field flows through VeriDb::portal, and the VERIDB_REPLAY_WINDOW env
    // knob feeds the default (clamped to its documented range).
    let mut cfg = base_config();
    cfg.replay_window = 1 << 21;
    assert!(cfg.validate().is_ok());
    cfg.replay_window = 0;
    assert!(cfg.validate().is_err());
    cfg.replay_window = (1 << 22) + 1;
    assert!(cfg.validate().is_err());

    // Env knob: out-of-range values fall back to the default rather than
    // panicking or producing an invalid config.
    std::env::set_var("VERIDB_REPLAY_WINDOW", "512");
    let c = VeriDbConfig::default();
    assert_eq!(c.replay_window, 512);
    std::env::set_var("VERIDB_REPLAY_WINDOW", "0");
    let c = VeriDbConfig::default();
    assert!(c.validate().is_ok());
    std::env::remove_var("VERIDB_REPLAY_WINDOW");
}

#[test]
fn pipelined_batch_returns_results_in_order() {
    let db = small_db();
    let mut server = veridb_net::serve(Arc::clone(&db), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();
    let mut client = RemoteClient::connect_simulated(&addr, "batch", "veridb", TIMEOUT).unwrap();
    let results = client
        .query_batch(&[
            "SELECT v FROM t WHERE id = 3",
            "SELECT v FROM t WHERE id = 1",
            "SELECT v FROM t WHERE id = 4",
        ])
        .unwrap();
    let vals: Vec<&Value> = results.iter().map(|r| &r.rows[0].values()[0]).collect();
    assert_eq!(
        vals,
        [
            &Value::Str("c".into()),
            &Value::Str("a".into()),
            &Value::Str("d".into())
        ]
    );
    client.close();
    server.shutdown();
}

#[test]
fn stats_over_the_wire_include_net_counters() {
    let db = small_db();
    let mut server = veridb_net::serve(Arc::clone(&db), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();
    let mut client = RemoteClient::connect_simulated(&addr, "stats", "veridb", TIMEOUT).unwrap();
    client.query("SELECT * FROM t").unwrap();
    let stats = client.stats().unwrap();
    for key in [
        "net.accepted",
        "net.frames_in",
        "net.frames_out",
        "net.bytes_out",
    ] {
        assert!(stats.contains(key), "stats missing {key}:\n{stats}");
    }
    client.close();
    server.shutdown();
}
