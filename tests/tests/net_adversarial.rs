//! The network adversary owns the wire (paper §2 threat model). Every
//! corruption the [`TamperProxy`] applies must surface as a client-visible
//! transport or verification error — never a wrong result. These tests
//! enumerate the corruptions and pin down which defense layer catches
//! each: untrusted CRC (transport hygiene), portal MACs (integrity), the
//! portal replay window (duplicate queries), and the client's SeqIntervals
//! (duplicate/rolled-back responses).

use std::sync::Arc;
use std::time::Duration;
use veridb::{Error, Value, VeriDb, VeriDbConfig};
use veridb_net::{Dir, RemoteClient, Tamper, TamperProxy};

const TIMEOUT: Duration = Duration::from_secs(3);

/// Wire frame order per connection: client→server frame 0 is HELLO and
/// frame 1 the first QUERY; server→client frame 0 is the QUOTE and frame 1
/// the first RESULT.
const FIRST_QUERY: usize = 1;
const FIRST_RESULT: usize = 1;

struct Rig {
    db: Arc<VeriDb>,
    /// Held for its Drop impl: shuts the server down when the rig goes.
    _server: veridb_net::ServerHandle,
    proxy: TamperProxy,
}

fn rig() -> Rig {
    let mut cfg = VeriDbConfig::default();
    cfg.verify_every_ops = None;
    let db = VeriDb::open(cfg).unwrap();
    db.sql("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        .unwrap();
    db.sql("INSERT INTO t VALUES (1,'a'),(2,'b'),(3,'c'),(4,'d')")
        .unwrap();
    let db = Arc::new(db);
    let server = veridb_net::serve(Arc::clone(&db), "127.0.0.1:0").unwrap();
    let proxy = TamperProxy::start(&server.local_addr().to_string()).unwrap();
    Rig {
        db,
        _server: server,
        proxy,
    }
}

impl Rig {
    fn client(&self) -> RemoteClient {
        RemoteClient::connect_simulated(
            &self.proxy.local_addr().to_string(),
            "adversarial",
            "veridb",
            TIMEOUT,
        )
        .unwrap()
    }

    /// Poll a server-side counter until it reaches `want` (the duplicate
    /// frame races the assertion otherwise).
    fn wait_counter(&self, name: &str, want: u64) -> u64 {
        for _ in 0..200 {
            let snap = self.db.metrics();
            let v = snap
                .counters()
                .into_iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| v)
                .unwrap_or(0);
            if v >= want {
                return v;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        0
    }
}

#[test]
fn bitflipped_query_with_fixed_crc_is_caught_by_the_portal_mac() {
    // The adversary repairs the untrusted CRC after flipping a payload
    // bit, so the framing layer accepts the frame. Integrity must rest on
    // the portal MAC alone (the CRC is explicitly not load-bearing).
    let r = rig();
    r.proxy.set_tamper(
        Dir::ClientToServer,
        FIRST_QUERY,
        Tamper::BitFlip { fix_crc: true },
    );
    let mut client = r.client();
    let err = client.query("SELECT v FROM t WHERE id = 1").unwrap_err();
    assert!(err.is_security_violation(), "got: {err}");
    assert!(matches!(err, Error::AuthFailed(_)), "got: {err}");
    assert_eq!(r.proxy.applied(), 1);
}

#[test]
fn bitflipped_query_with_stale_crc_is_a_transport_error() {
    // Without the CRC fix-up the framing layer rejects the frame before
    // any MAC runs: a plain transport failure, not a security alarm.
    let r = rig();
    r.proxy.set_tamper(
        Dir::ClientToServer,
        FIRST_QUERY,
        Tamper::BitFlip { fix_crc: false },
    );
    let mut client = r.client();
    let err = client.query("SELECT v FROM t WHERE id = 1").unwrap_err();
    assert!(!err.is_security_violation(), "got: {err}");
    assert!(matches!(err, Error::Net { .. }), "got: {err}");
    assert!(r.wait_counter("net.frame_rejects", 1) >= 1);
}

#[test]
fn bitflipped_result_with_fixed_crc_fails_endorsement_verification() {
    let r = rig();
    r.proxy.set_tamper(
        Dir::ServerToClient,
        FIRST_RESULT,
        Tamper::BitFlip { fix_crc: true },
    );
    let mut client = r.client();
    let err = client.query("SELECT v FROM t WHERE id = 1").unwrap_err();
    assert!(err.is_security_violation(), "got: {err}");
    assert!(matches!(err, Error::AuthFailed(_)), "got: {err}");
}

#[test]
fn truncated_result_is_a_transport_error() {
    let r = rig();
    r.proxy
        .set_tamper(Dir::ServerToClient, FIRST_RESULT, Tamper::Truncate);
    let mut client = r.client();
    let err = client.query("SELECT v FROM t WHERE id = 1").unwrap_err();
    assert!(!err.is_security_violation(), "got: {err}");
    assert!(matches!(err, Error::Net { .. }), "got: {err}");
}

#[test]
fn replayed_query_frame_trips_the_portal_replay_window() {
    // The adversary duplicates the signed query frame. The portal executes
    // the first copy and must reject the second by qid — and the client's
    // own query still completes with the correct answer.
    let r = rig();
    r.proxy
        .set_tamper(Dir::ClientToServer, FIRST_QUERY, Tamper::Replay);
    let mut client = r.client();
    let got = client.query("SELECT v FROM t WHERE id = 2").unwrap();
    assert_eq!(got.rows[0].values()[0], Value::Str("b".into()));
    assert!(
        r.wait_counter("portal.replays_rejected", 1) >= 1,
        "the duplicated frame must be rejected by the replay window"
    );
}

#[test]
fn replayed_result_frame_is_refused_without_poisoning_the_session() {
    // The adversary duplicates an endorsed RESULT. The copy is CRC-valid
    // and MAC-valid — it is a genuine old endorsement, byte for byte — so
    // the framing and MAC layers pass it. The client must refuse it (the
    // sequence number is spent), but a transport-level duplicate is not
    // an attack on any *other* query: the refusal is visible, scoped to
    // that frame, and the session keeps working.
    let r = rig();
    r.proxy
        .set_tamper(Dir::ServerToClient, FIRST_RESULT, Tamper::Replay);
    let mut client = r.client();
    let got = client.query("SELECT v FROM t WHERE id = 2").unwrap();
    assert_eq!(got.rows[0].values()[0], Value::Str("b".into()));
    // The duplicate is sitting in the socket; the next exchange reads it
    // first, refuses it, and still completes its own query.
    let got = client.query("SELECT v FROM t WHERE id = 3").unwrap();
    assert_eq!(got.rows[0].values()[0], Value::Str("c".into()));
    assert_eq!(
        client.duplicates_refused(),
        1,
        "the duplicate must be refused visibly, not skipped silently"
    );
    // The session stays fully usable: a pipelined batch on the same
    // connection still verifies end to end.
    let results = client
        .query_pipelined(
            &[
                "SELECT v FROM t WHERE id = 4",
                "SELECT v FROM t WHERE id = 1",
            ],
            2,
        )
        .unwrap();
    assert_eq!(results[0].rows[0].values()[0], Value::Str("d".into()));
    assert_eq!(results[1].rows[0].values()[0], Value::Str("a".into()));
}

#[test]
fn reordered_results_in_a_pipelined_batch_still_verify() {
    // Reordering independent endorsed results is not an integrity
    // violation (§5.1 matches results to queries by qid); the pipelined
    // batch must still return every answer, correctly, in input order.
    let r = rig();
    r.proxy
        .set_tamper(Dir::ServerToClient, FIRST_RESULT, Tamper::SwapNext);
    let mut client = r.client();
    let results = client
        .query_batch(&[
            "SELECT v FROM t WHERE id = 4",
            "SELECT v FROM t WHERE id = 1",
        ])
        .unwrap();
    assert_eq!(results[0].rows[0].values()[0], Value::Str("d".into()));
    assert_eq!(results[1].rows[0].values()[0], Value::Str("a".into()));
    assert_eq!(r.proxy.applied(), 1, "the reorder must actually have fired");
}

#[test]
fn dropped_result_frame_times_out_as_transport_error() {
    let r = rig();
    r.proxy
        .set_tamper(Dir::ServerToClient, FIRST_RESULT, Tamper::Drop);
    let mut client = r.client();
    let err = client.query("SELECT v FROM t WHERE id = 1").unwrap_err();
    assert!(!err.is_security_violation(), "got: {err}");
    assert!(matches!(err, Error::Net { .. }), "got: {err}");
}

#[test]
fn corruption_sweep_never_yields_a_wrong_result() {
    // The blanket claim, mechanically: for every tamper in the catalog,
    // applied to the first query and the first result, a query either
    // returns the exact correct answer or a client-visible error. There is
    // no third outcome.
    let tampers = [
        Tamper::BitFlip { fix_crc: true },
        Tamper::BitFlip { fix_crc: false },
        Tamper::Truncate,
        Tamper::Replay,
        Tamper::SwapNext,
        Tamper::Drop,
    ];
    for dir in [Dir::ClientToServer, Dir::ServerToClient] {
        for tamper in tampers {
            let r = rig();
            let nth = if dir == Dir::ClientToServer {
                FIRST_QUERY
            } else {
                FIRST_RESULT
            };
            r.proxy.set_tamper(dir, nth, tamper);
            let mut client = r.client();
            for sql in [
                "SELECT v FROM t WHERE id = 2",
                "SELECT v FROM t WHERE id = 2",
            ] {
                match client.query(sql) {
                    Ok(got) => {
                        assert_eq!(
                            got.rows[0].values()[0],
                            Value::Str("b".into()),
                            "{dir:?}/{tamper:?}: a returned result must be the right one"
                        );
                    }
                    Err(e) => {
                        // Any error is acceptable; a wrong result is not.
                        let _ = e;
                        break;
                    }
                }
            }
            drop(client);
        }
    }
}
