//! Crash-recovery suite: a child process is killed *at* every durability
//! crash point (and once at an arbitrary instant with SIGKILL), then the
//! survivor's data directory is reopened and must come back consistent —
//! a replayed prefix of the committed history, verified end to end —
//! never silently wrong.
//!
//! The child is this same test binary re-executed with `--exact
//! child_writer`: the `child_writer` "test" is a no-op in a normal run
//! and becomes the victim workload when `VERIDB_CHILD_DIR` is set. The
//! crash itself is `veridb_common::crashpoint` — an `abort()` armed by
//! `VERIDB_CRASH_AT=<point>[:<n>]`, compiled into the WAL append/fsync
//! path and the snapshot/manifest seal path.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use veridb::{Value, VeriDb, VeriDbConfig};

fn tmpdir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "veridb-crash-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn durable_config(dir: &Path) -> VeriDbConfig {
    let mut cfg = VeriDbConfig::default();
    cfg.verify_every_ops = None;
    cfg.data_dir = Some(dir.display().to_string());
    cfg.group_commit_window_us = 0;
    cfg
}

/// Lay down known committed state: table `t`, rows 1..=5, sealed epoch.
fn baseline(dir: &Path) {
    let db = VeriDb::open(durable_config(dir)).unwrap();
    db.sql("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
    db.sql("INSERT INTO t VALUES (1),(2),(3),(4),(5)").unwrap();
    db.seal_now().unwrap();
}

/// The victim workload, run in a child process. A no-op unless
/// `VERIDB_CHILD_DIR` points at a data directory.
#[test]
fn child_writer() {
    let Ok(dir) = std::env::var("VERIDB_CHILD_DIR") else {
        return;
    };
    let dir = PathBuf::from(dir);
    let db = VeriDb::open(durable_config(&dir)).unwrap();
    if std::env::var("VERIDB_CHILD_SPIN").is_ok() {
        // Keep writing until the parent SIGKILLs us; drop a marker once
        // the first child write is durable so the kill lands mid-stream.
        for k in 10..100_000i64 {
            db.sql(&format!("INSERT INTO t VALUES ({k})")).unwrap();
            if k == 10 {
                std::fs::write(dir.join("child-started"), b"1").unwrap();
            }
        }
        return;
    }
    // Crash-point mode: sequential inserts with periodic seals so every
    // armed point (append, fsync, snapshot, manifest) gets hit. Exiting
    // this loop cleanly means the armed point never fired — the parent
    // treats that as a failure.
    for k in 10..60i64 {
        db.sql(&format!("INSERT INTO t VALUES ({k})")).unwrap();
        if (k - 9) % 10 == 0 {
            db.seal_now().unwrap();
        }
    }
}

fn spawn_child(dir: &Path, crash_at: Option<&str>, spin: bool) -> std::process::Child {
    let exe = std::env::current_exe().unwrap();
    let mut cmd = Command::new(exe);
    cmd.args(["child_writer", "--exact", "--test-threads=1", "--nocapture"])
        .env("VERIDB_CHILD_DIR", dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(point) = crash_at {
        cmd.env("VERIDB_CRASH_AT", point);
    }
    if spin {
        cmd.env("VERIDB_CHILD_SPIN", "1");
    }
    cmd.spawn().expect("spawn child workload")
}

/// Reopen the survivor and check the only acceptable outcome: baseline
/// rows intact, child rows a contiguous prefix of the insertion order
/// (each insert was one log record — recovery replays a prefix, so a
/// gap would mean a record was lost *behind* a durable one), the whole
/// store verifies, and new durable writes are accepted.
fn assert_recovered_consistent(dir: &Path) {
    let db = VeriDb::open(durable_config(dir)).unwrap();
    db.verify_now().unwrap();
    let r = db.sql("SELECT id FROM t").unwrap();
    let mut ids: Vec<i64> = r
        .rows
        .iter()
        .map(|row| match row[0] {
            Value::Int(i) => i,
            ref v => panic!("unexpected value {v:?}"),
        })
        .collect();
    ids.sort_unstable();
    assert!(
        ids.len() >= 5 && ids[..5] == [1, 2, 3, 4, 5],
        "baseline rows damaged after recovery: {ids:?}"
    );
    for (i, id) in ids[5..].iter().enumerate() {
        assert_eq!(
            *id,
            10 + i as i64,
            "child rows must be a contiguous replayed prefix, got {ids:?}"
        );
    }
    db.sql("INSERT INTO t VALUES (9000)").unwrap();
    let r = db.sql("SELECT id FROM t WHERE id = 9000").unwrap();
    assert_eq!(r.rows.len(), 1, "recovered instance must accept new writes");
}

#[test]
fn crash_at_every_durability_point_recovers_consistent() {
    // `:n` picks the n-th hit so the crash lands mid-stream, with real
    // committed work both before and (attempted) after it.
    for point in [
        "wal-append-buffered:5",
        "wal-pre-write:5",
        "wal-pre-fsync:7",
        "wal-post-fsync:7",
        "seal-snapshot-written:2",
        "seal-manifest-written:2",
    ] {
        let dir = tmpdir("point");
        baseline(&dir);
        let status = spawn_child(&dir, Some(point), false)
            .wait()
            .expect("wait for child");
        assert!(
            !status.success(),
            "{point}: child exited cleanly — the crash point never fired"
        );
        assert_recovered_consistent(&dir);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn sigkill_mid_write_stream_recovers_consistent() {
    let dir = tmpdir("sigkill");
    baseline(&dir);
    let mut child = spawn_child(&dir, None, true);
    let marker = dir.join("child-started");
    let start = Instant::now();
    while !marker.exists() {
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "child never started writing"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // Let it get some distance into the stream, then kill -9: no drop
    // handlers, no WAL flush, torn tail entirely possible.
    std::thread::sleep(Duration::from_millis(100));
    child.kill().expect("SIGKILL child");
    let status = child.wait().expect("reap child");
    assert!(!status.success());
    assert_recovered_consistent(&dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_then_snapshot_substitution_is_refused_visibly() {
    // Crash during a seal, then let the host swap an older snapshot in
    // under the newest manifest's name: recovery must refuse loudly with
    // RollbackDetected, never serve the stale state.
    let dir = tmpdir("subst");
    baseline(&dir);
    let status = spawn_child(&dir, Some("seal-snapshot-written:2"), false)
        .wait()
        .expect("wait for child");
    assert!(!status.success());
    // The crash left an orphan snapshot with no manifest — recovery
    // rightly ignores that one. The attack that matters targets the
    // newest *manifested* snapshot: swap the oldest sealed state in
    // under its name.
    let names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    let newest_sealed: u64 = names
        .iter()
        .filter_map(|n| n.strip_prefix("manifest-")?.strip_suffix(".sealed")?.parse().ok())
        .max()
        .expect("at least one sealed manifest");
    let mut snaps: Vec<&String> = names.iter().filter(|n| n.starts_with("snap-")).collect();
    snaps.sort();
    let oldest_snap = snaps.first().expect("at least one snapshot");
    let target = format!("snap-{newest_sealed:020}.bin");
    assert_ne!(**oldest_snap, target, "need two distinct sealed epochs");
    std::fs::copy(dir.join(oldest_snap), dir.join(&target)).unwrap();
    let err = VeriDb::open(durable_config(&dir)).unwrap_err();
    assert!(
        matches!(err, veridb::Error::RollbackDetected { .. }),
        "substituted snapshot must be refused, got {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
