//! PR 2 integration coverage: the `veridb-obs` metrics registry wired
//! through every layer, plus regression tests for the portal replay
//! window, qid-on-endorsement consumption, spill-page reclamation, and
//! batched-scan behaviour under concurrent splices.

use std::sync::Arc;
use veridb::{Error, PlanOptions, PreferredJoin, VeriDb, VeriDbConfig};
use veridb_query::replay::DEFAULT_REPLAY_WINDOW;
use veridb_query::SignedQuery;

fn db() -> VeriDb {
    let mut cfg = VeriDbConfig::default();
    cfg.verify_every_ops = None;
    VeriDb::open(cfg).unwrap()
}

/// Hand-sign a query under the portal's channel key — lets tests replay
/// the exact same `SignedQuery` (a `Client` would mint a fresh qid).
fn sign(portal: &veridb::QueryPortal, qid: u64, sql: &str) -> SignedQuery {
    let key = portal.channel_key_for_attested_client();
    SignedQuery {
        qid,
        sql: sql.to_owned(),
        mac: key.sign(&[&qid.to_le_bytes(), sql.as_bytes()]),
    }
}

#[test]
fn metrics_smoke_counters_move_under_tpch_workload() {
    let db = db();
    let data = veridb_workloads::TpchData::generate(&veridb_workloads::TpchConfig::tiny());
    data.load(&db).unwrap();

    // Before any epoch close, per-partition verification lag is visible.
    let lag: u64 = db.verification_lag().iter().map(|(_, l)| *l).sum();
    assert!(
        lag > 0,
        "loading must leave unverified protected ops behind"
    );

    // Drive the paper's queries through the authenticated portal so the
    // ECall counter moves too.
    let portal = db.portal("obs-smoke");
    for (qid, sql) in [
        (1, veridb_workloads::tpch::q1()),
        (2, veridb_workloads::tpch::q6()),
    ] {
        portal.submit(&sign(&portal, qid, sql)).unwrap();
    }
    db.verify_now().unwrap();

    let snap = db.metrics();
    assert!(snap.protected_ops() > 0, "protected ops: {snap}");
    assert!(snap.prf_evals > 0, "PRF evaluations must be merged in");
    assert!(snap.ecalls > 0, "portal submissions are ECalls");
    assert!(snap.epc_high_water_bytes > 0);
    assert!(snap.epoch_closes > 0, "verify_now closes epochs");
    assert!(
        snap.verification_lag_ops.count > 0 && snap.verification_lag_ops.sum > 0,
        "closes with pending ops must be sampled"
    );
    assert!(
        snap.scan_batched_rounds > 0,
        "Q1/Q6 sequential scans must take the batched path"
    );
    assert!(snap.queries_executed >= 2);
    assert!(
        snap.operator_rows[veridb::OperatorKind::Scan as usize] > 0,
        "per-operator row counts must move"
    );
    // Catalog sanity: every counter has a stable dotted name.
    let counters = snap.counters();
    assert!(counters
        .iter()
        .any(|(n, v)| *n == "enclave.prf_evals" && *v > 0));
    assert!(counters
        .iter()
        .any(|(n, v)| *n == "wrcm.protected_reads" && *v > 0));
}

#[test]
fn replay_rejection_survives_watermark_eviction() {
    let db = db();
    db.sql("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        .unwrap();
    db.sql("INSERT INTO t VALUES (1,'a')").unwrap();
    let portal = db.portal("replay");

    let sql = "SELECT * FROM t WHERE id = 1";
    let early = sign(&portal, 1, sql);
    portal.submit(&early).unwrap();

    // Push qid 1 well below the watermark.
    let total = DEFAULT_REPLAY_WINDOW as u64 + 16;
    for qid in 2..=total {
        portal.submit(&sign(&portal, qid, sql)).unwrap();
    }

    // qid 1 fell off the exact window long ago — replaying it must still
    // be rejected (it now sits at/below the watermark)…
    let err = portal.submit(&early).unwrap_err();
    assert!(matches!(err, Error::ReplayDetected { qid: 1 }), "{err}");
    // …as must a qid that is still exactly tracked.
    let err = portal.submit(&sign(&portal, total, sql)).unwrap_err();
    assert!(matches!(err, Error::ReplayDetected { qid } if qid == total));

    // Fresh qids keep working after eviction.
    portal.submit(&sign(&portal, total + 1, sql)).unwrap();

    let snap = db.metrics();
    assert!(snap.replays_rejected >= 2, "{}", snap.replays_rejected);
}

#[test]
fn failed_query_leaves_qid_retryable() {
    let db = db();
    let portal = db.portal("retry");
    let q = sign(&portal, 7, "SELECT * FROM not_yet_here");

    // The table does not exist: the submission fails, but NOT as a replay
    // or a security violation — the qid stays unspent.
    let err = portal.submit(&q).unwrap_err();
    assert!(!matches!(err, Error::ReplayDetected { .. }), "{err}");
    assert!(!err.is_security_violation(), "{err}");

    // Fix the environment, retry the *same* signed query: it succeeds.
    db.sql("CREATE TABLE not_yet_here (id INT PRIMARY KEY)")
        .unwrap();
    let endorsed = portal.submit(&q).unwrap();
    assert_eq!(endorsed.qid, 7);

    // Only now is the qid spent.
    let err = portal.submit(&q).unwrap_err();
    assert!(matches!(err, Error::ReplayDetected { qid: 7 }));
}

#[test]
fn repeated_spilling_queries_keep_page_count_stable() {
    let db = db();
    db.sql("CREATE TABLE l (id INT PRIMARY KEY, k INT)")
        .unwrap();
    db.sql("CREATE TABLE r (id INT PRIMARY KEY, k INT, pad TEXT)")
        .unwrap();
    for i in 0..50 {
        db.sql(&format!("INSERT INTO l VALUES ({i}, {})", i % 10))
            .unwrap();
    }
    for i in 0..400 {
        db.sql(&format!(
            "INSERT INTO r VALUES ({i}, {}, 'padding-padding-{i}')",
            i % 10
        ))
        .unwrap();
    }
    // A block nested-loop join materializes the inner side; a tiny
    // threshold forces it into verified-storage scratch pages.
    db.set_spill_threshold(Some(256));
    let opts = PlanOptions {
        prefer_join: PreferredJoin::NestedLoop,
        ..Default::default()
    };
    let sql = "SELECT COUNT(*) FROM l, r WHERE l.k = r.k";
    let mut counts = Vec::new();
    let mut answers = Vec::new();
    for _ in 0..5 {
        let r = db.sql_with(sql, &opts).unwrap();
        answers.push(r.rows[0][0].clone());
        counts.push(db.memory().page_count());
    }
    assert!(
        counts.windows(2).all(|w| w[1] == w[0]),
        "scratch pages must be reclaimed between queries: {counts:?}"
    );
    assert!(answers.windows(2).all(|w| w[1] == w[0]));
    let snap = db.metrics();
    assert!(snap.spill_events > 0, "the workload must actually spill");
    assert!(snap.pages_reused > 0, "later rounds must reuse freed pages");
    db.verify_now().unwrap();
}

#[test]
fn concurrent_splices_during_batched_scans_never_alarm() {
    let db = db();
    db.sql("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        .unwrap();
    for i in 0..256 {
        db.sql(&format!("INSERT INTO t VALUES ({i}, 'val-{i}')"))
            .unwrap();
    }
    let table = db.table("t").unwrap();

    std::thread::scope(|s| {
        // Mutators: deletes + re-inserts + growing updates force chain
        // splices and cell moves in the pages the scanner is batching.
        for m in 0..2 {
            let db = &db;
            s.spawn(move || {
                for round in 0..20 {
                    let id = (m * 128) + (round * 7) % 128 + 1;
                    db.sql(&format!("DELETE FROM t WHERE id = {id}")).unwrap();
                    db.sql(&format!(
                        "INSERT INTO t VALUES ({id}, 'resized-{id}-{round}-xxxxxxxxxxxx')"
                    ))
                    .unwrap();
                }
            });
        }
        // Scanner: full verified scans concurrent with the splices. An
        // honest run may see rows appear/disappear, but must never raise
        // a tamper alarm from a mid-batch slot reuse.
        for _ in 0..2 {
            let table = Arc::clone(&table);
            s.spawn(move || {
                for _ in 0..30 {
                    let mut n = 0usize;
                    for row in table.seq_scan() {
                        row.expect("honest concurrent scan must not alarm");
                        n += 1;
                    }
                    assert!(n > 200, "most rows stay visible: {n}");
                }
            });
        }
    });

    db.verify_now().unwrap();
    let snap = db.metrics();
    assert!(snap.scan_batched_rounds > 0, "scans must use the fast path");
}
