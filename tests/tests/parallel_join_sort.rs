//! Work-stealing scheduler, partitioned hash join, and parallel sort
//! tail, end to end: Q3-shaped pipelines must return the serial engine's
//! bytes at every worker count, skew must drain through steals instead of
//! idle workers, and tampering discovered mid-build or mid-merge must
//! surface as a security violation — never a wrong answer.

use veridb::{OperatorKind, PlanOptions, VeriDb, VeriDbConfig};
use veridb_workloads::tpch;
use veridb_wrcm::tamper;

fn tpch_db(workers: usize) -> VeriDb {
    let mut cfg = VeriDbConfig::default();
    cfg.verify_every_ops = None;
    cfg.workers = workers;
    let db = VeriDb::open(cfg).unwrap();
    let data = veridb_workloads::TpchData::generate(&veridb_workloads::TpchConfig::tiny());
    data.load(&db).unwrap();
    db
}

fn corrupt_one_live_cell(db: &VeriDb) {
    let mem = db.memory();
    for page in mem.page_ids() {
        for slot in 0..16u16 {
            if tamper::overwrite_cell(mem, veridb_wrcm::CellAddr { page, slot }, b"evil").is_ok() {
                return;
            }
        }
    }
    panic!("no live cell to tamper");
}

/// Q3's joins must actually run through the partitioned parallel build —
/// and still produce the serial plan's bytes. (The broader Q1/Q3/Q6
/// equivalence lives in parallel_exec.rs; this pins the operator choice.)
#[test]
fn q3_runs_partitioned_join_and_matches_serial() {
    let db = tpch_db(1);
    let opts = PlanOptions::default();
    let expected = db.sql_with(tpch::q3(), &opts).unwrap();

    for workers in [2usize, 8] {
        db.set_workers(workers);
        let before = db.metrics();
        let got = db.sql_with(tpch::q3(), &opts).unwrap();
        let delta = db.metrics().since(&before);
        db.set_workers(1);
        assert!(
            delta.operator_rows[OperatorKind::PartitionedJoin as usize] > 0,
            "Q3@{workers} must route joins through PartitionedJoin"
        );
        assert_eq!(
            delta.operator_rows[OperatorKind::HashJoin as usize],
            0,
            "Q3@{workers} must not fall back to the serial hash join"
        );
        // Exact equality, not epsilon: the partitioned build preserves
        // the serial insertion order, so even float cells must be
        // byte-identical.
        assert_eq!(got.rows, expected.rows, "Q3@{workers} vs serial");
    }
    db.verify_now().unwrap();
}

/// A full-table ORDER BY large enough for the run/merge tail must be
/// byte-identical to the serial stable sort, including duplicate-key
/// runs whose order is only pinned by run-index tie-breaking.
#[test]
fn parallel_sort_tail_matches_serial_bytes() {
    let db = tpch_db(1);
    // ~2000 rows >= PARALLEL_SORT_MIN_ROWS, duplicate-heavy key first so
    // ties cross run boundaries, unique key second to catch any reorder.
    let sql = "SELECT l_quantity, l_id, l_extendedprice FROM lineitem \
               ORDER BY l_quantity DESC, l_extendedprice";
    let expected = db.sql(sql).unwrap();
    for workers in [2usize, 8] {
        db.set_workers(workers);
        let got = db.sql(sql).unwrap();
        db.set_workers(1);
        assert_eq!(got.rows, expected.rows, "ORDER BY @{workers} vs serial");
    }
    db.verify_now().unwrap();
}

/// Tampering with a live cell before a parallel partitioned join: a
/// worker's verified scan hits the poisoned cell during build or probe
/// and alarms, or the deferred pass catches it — never a wrong result.
#[test]
fn tamper_under_parallel_join_is_detected() {
    let db = tpch_db(8);
    corrupt_one_live_cell(&db);
    match db.sql_with(tpch::q3(), &PlanOptions::default()) {
        Ok(_) => assert!(db.verify_now().is_err(), "deferred detection must fire"),
        Err(e) => assert!(e.is_security_violation(), "unexpected error class: {e}"),
    }
}

/// Same contract for the parallel sort tail: the sorted runs are fed by
/// verified scans and stored in spill-capable buffers, so a corrupted
/// page surfaces as TamperDetected, not as reordered or wrong rows.
#[test]
fn tamper_under_parallel_sort_is_detected() {
    let db = tpch_db(8);
    corrupt_one_live_cell(&db);
    let sql = "SELECT l_id, l_extendedprice FROM lineitem ORDER BY l_extendedprice DESC";
    match db.sql(sql) {
        Ok(_) => assert!(db.verify_now().is_err(), "deferred detection must fire"),
        Err(e) => assert!(e.is_security_violation(), "unexpected error class: {e}"),
    }
}

/// Skewed range: a predicate that concentrates the surviving rows in a
/// narrow key band makes some morsels much heavier than others. The
/// work-stealing pool must still return the serial bytes, and the steal
/// counters must reconcile (aggregate == per-worker sum) so skew is
/// observable from `.stats`. The hard ≤2×-mean claims bound is enforced
/// deterministically in `crates/query`'s scheduler unit test, where
/// morsel cost is controlled; here scheduling noise on a loaded host
/// could make that bound flaky.
#[test]
fn skewed_range_results_match_serial_and_steals_reconcile() {
    let db = tpch_db(1);
    // l_orderkey < 100 keeps only the head of the chain: the leading
    // morsels carry all the output rows, the tail morsels are empty.
    let sql = "SELECT l_id, l_orderkey, l_quantity FROM lineitem WHERE l_orderkey < 100";
    let expected = db.sql(sql).unwrap();
    db.set_workers(8);
    let before = db.metrics();
    let got = db.sql(sql).unwrap();
    let delta = db.metrics().since(&before);
    db.set_workers(1);
    assert_eq!(got.rows, expected.rows, "skewed range vs serial");
    let claims: u64 = delta.worker_morsels.iter().sum();
    assert_eq!(
        claims, delta.morsels_dispatched,
        "every dispatched morsel claimed exactly once"
    );
    assert_eq!(
        delta.worker_steals.iter().sum::<u64>(),
        delta.morsels_stolen,
        "per-worker steal counters must reconcile with the aggregate"
    );
    db.verify_now().unwrap();
}
