//! Multi-client execution on the shared scheduler pool: many concurrent
//! verified queries over the wire must (a) return exactly the serial
//! engine's bytes, (b) never grow the server's thread count — turns and
//! morsels run on the one process-wide pool — and (c) keep tampering
//! detection per-victim: the query whose scan hits a poisoned cell gets
//! a visible security error while unrelated queries on the same pool
//! complete correctly.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use veridb::{Value, VeriDb, VeriDbConfig};
use veridb_net::RemoteClient;
use veridb_wrcm::tamper;

const TIMEOUT: Duration = Duration::from_secs(30);

/// A scan with only integer columns and no ORDER BY: the verified scan's
/// chain order and the morsel-index merge make the result exactly —
/// byte-for-byte — the serial result, so equality below is `==`, no
/// float epsilon.
const EXACT_SCAN: &str = "SELECT l_id, l_orderkey, l_quantity FROM lineitem WHERE l_quantity < 10";

fn gauge(db: &VeriDb, name: &str) -> u64 {
    db.metrics()
        .counters()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| v)
        .unwrap_or(0)
}

/// Live threads of this process, from `/proc/self/status`.
fn live_threads() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap();
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap()
}

fn tpch_db(workers: usize) -> Arc<VeriDb> {
    let mut cfg = VeriDbConfig::default();
    cfg.verify_every_ops = None;
    cfg.workers = workers;
    cfg.max_conns = 32;
    let db = VeriDb::open(cfg).unwrap();
    let data = veridb_workloads::TpchData::generate(&veridb_workloads::TpchConfig::tiny());
    data.load(&db).unwrap();
    Arc::new(db)
}

#[test]
fn eight_concurrent_clients_get_serial_identical_bytes_from_one_pool() {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 4;
    let db = tpch_db(4);

    // The serial reference, computed before any concurrency.
    db.set_workers(1);
    let expected = db.sql(EXACT_SCAN).unwrap();
    assert!(!expected.rows.is_empty(), "reference scan must hit rows");
    db.set_workers(4);

    let mut server = veridb_net::serve(Arc::clone(&db), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();
    // Warm the shared pool (lazy start) and the reactor before taking the
    // thread baseline: after this point the server must not add a single
    // thread no matter how many connections execute queries.
    db.sql(EXACT_SCAN).unwrap();
    let threads_before = live_threads();

    let done = Arc::new(AtomicBool::new(false));
    let peak = Arc::new(AtomicU64::new(0));
    let sampler = {
        let done = Arc::clone(&done);
        let peak = Arc::clone(&peak);
        std::thread::spawn(move || {
            while !done.load(Ordering::Acquire) {
                peak.fetch_max(live_threads(), Ordering::AcqRel);
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };

    let mut handles = Vec::new();
    for i in 0..CLIENTS {
        let addr = addr.clone();
        let expected = expected.rows.clone();
        handles.push(std::thread::spawn(move || {
            let channel = format!("mc-{i}");
            let mut c =
                RemoteClient::connect_simulated(&addr, &channel, "veridb", TIMEOUT).unwrap();
            for round in 0..ROUNDS {
                let got = c.query(EXACT_SCAN).unwrap();
                assert_eq!(
                    got.rows, expected,
                    "client {i} round {round}: parallel bytes must equal serial bytes"
                );
            }
            c.close();
        }));
    }
    for (i, h) in handles.into_iter().enumerate() {
        h.join().unwrap_or_else(|_| panic!("client {i} panicked"));
    }
    done.store(true, Ordering::Release);
    sampler.join().unwrap();

    // Thread bound: the 8 executing connections may add *client* threads
    // (spawned by this test) but zero server threads — turns and morsels
    // all ran on the pre-existing pool + reactor. Slack of 2 covers the
    // sampler and transient test-harness threads.
    let peak = peak.load(Ordering::Acquire);
    assert!(
        peak <= threads_before + CLIENTS as u64 + 2,
        "thread count must not grow with executing connections: \
         baseline {threads_before}, peak {peak}"
    );

    assert_eq!(
        gauge(&db, "net.worker_panics"),
        0,
        "no turn may panic under concurrent load"
    );
    server.shutdown();
    assert_eq!(gauge(&db, "net.queued"), 0, "all admitted queries drained");
    db.verify_now().unwrap();
}

#[test]
fn tamper_under_concurrent_queries_alarms_the_victim_and_spares_the_rest() {
    let db = tpch_db(4);
    db.sql("CREATE TABLE clean (id INT PRIMARY KEY, v TEXT)")
        .unwrap();
    db.sql("INSERT INTO clean VALUES (1,'a'),(2,'b'),(3,'c'),(4,'d')")
        .unwrap();

    let mut server = veridb_net::serve(Arc::clone(&db), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();

    // Overwrite one live lineitem cell directly in untrusted memory.
    let mem = db.memory();
    let mut hit = false;
    'outer: for page in mem.page_ids() {
        for slot in 0..16u16 {
            if tamper::overwrite_cell(mem, veridb_wrcm::CellAddr { page, slot }, b"evil").is_ok() {
                hit = true;
                break 'outer;
            }
        }
    }
    assert!(hit, "no live cell to tamper");

    // Victim: parallel scans over the poisoned table, concurrently with a
    // bystander querying an untouched table on the same shared pool.
    let bystander = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c =
                RemoteClient::connect_simulated(&addr, "bystander", "veridb", TIMEOUT).unwrap();
            for _ in 0..16 {
                let got = c.query("SELECT v FROM clean WHERE id = 2").unwrap();
                assert_eq!(
                    got.rows[0].values()[0],
                    Value::Str("b".into()),
                    "bystander rows must stay correct while another query alarms"
                );
            }
            c.close();
        })
    };

    let mut victim = RemoteClient::connect_simulated(&addr, "victim", "veridb", TIMEOUT).unwrap();
    let mut alarmed = false;
    for _ in 0..4 {
        // Immediate detection: the worker's verified scan hit the
        // poisoned cell and the error crossed the wire visibly. An
        // `Ok` means the scan missed the cell (morsel boundaries):
        // try again, with the deferred check below as the backstop.
        if let Err(e) = victim.query(EXACT_SCAN) {
            assert!(
                e.is_security_violation(),
                "victim's failure must be a security violation, got: {e}"
            );
            alarmed = true;
            break;
        }
    }
    bystander.join().expect("bystander must complete cleanly");

    // The pool survived the alarm: a fresh connection still gets correct
    // bytes from the untouched table. (This runs before the deferred
    // check below — a full verification pass poisons the instance and
    // rightly fails every later protected read.)
    let mut after = RemoteClient::connect_simulated(&addr, "after", "veridb", TIMEOUT).unwrap();
    let got = after.query("SELECT v FROM clean WHERE id = 4").unwrap();
    assert_eq!(got.rows[0].values()[0], Value::Str("d".into()));
    after.close();
    victim.close();

    if !alarmed {
        // Deferred path: the tampering never crossed a scanned cell's
        // verification inline, so the epoch check must catch it.
        assert!(db.verify_now().is_err(), "deferred detection must fire");
    }

    assert_eq!(
        gauge(&db, "net.worker_panics"),
        0,
        "tampering is an error result, never a worker panic"
    );
    server.shutdown();
}
