//! The paper's worked examples, as executable assertions.

use std::ops::Bound;
use veridb::{Value, VeriDb, VeriDbConfig};
use veridb_mbtree::{verify_range, MbTree};

fn db() -> VeriDb {
    let mut cfg = VeriDbConfig::default();
    cfg.verify_every_ops = None;
    VeriDb::open(cfg).unwrap()
}

/// Figure 4 / Example 4.3: the extended storage model proves presence and
/// absence with a single record.
#[test]
fn figure_4_extended_storage_model() {
    let db = db();
    db.sql("CREATE TABLE t (id INT PRIMARY KEY, count INT, price INT)")
        .unwrap();
    db.sql("INSERT INTO t VALUES (1,100,100),(2,100,200),(3,500,100),(4,600,100)")
        .unwrap();
    // ⟨id1, id2, (100,$100)⟩ proves the existence of ⟨id1, 100, $100⟩.
    let t = db.table("t").unwrap();
    let found = t.get_by_pk_with_evidence(&Value::Int(1)).unwrap();
    let ev = found.evidence();
    assert_eq!(
        ev.record.key(0),
        &veridb_storage::ChainKey::val(Value::Int(1))
    );
    assert_eq!(
        ev.record.nkey(0),
        &veridb_storage::ChainKey::val(Value::Int(2))
    );
    assert!(found.row().is_some());

    // A query for id > id4 returns null with evidence ⟨id4, ⊤, (600,$100)⟩.
    let absent = t.get_by_pk_with_evidence(&Value::Int(99)).unwrap();
    let ev = absent.evidence();
    assert!(absent.row().is_none());
    assert_eq!(
        ev.record.key(0),
        &veridb_storage::ChainKey::val(Value::Int(4))
    );
    assert!(ev.record.nkey(0).is_pos_inf());
    assert_eq!(
        ev.record.row.values(),
        &[Value::Int(4), Value::Int(600), Value::Int(100)]
    );
}

/// Example 2.1: MHT-based verification of a range scan over k1..k8 —
/// records k3..k5 are in range; k2 and k6 are returned as boundary
/// evidence inside the VO.
#[test]
fn example_2_1_mht_range_scan() {
    let tree = MbTree::with_order(4);
    for k in 1..=8i64 {
        tree.insert(Value::Int(k), format!("k{k}").into_bytes());
    }
    let root = tree.root_hash();
    // Range [a, b] with k2 < a ≤ k3 and k5 ≤ b < k6 — use (2.5, 5.5) as
    // ints: [3, 5].
    let lo = Bound::Included(Value::Int(3));
    let hi = Bound::Included(Value::Int(5));
    let (rows, vo) = tree.range(lo.clone(), hi.clone());
    let keys: Vec<i64> = rows.iter().map(|(k, _)| k.as_i64().unwrap()).collect();
    assert_eq!(keys, vec![3, 4, 5]);
    // The VO must reveal the boundary records k2 and k6 (adjacent leaves).
    let verified = verify_range(&vo, &root, &lo, &hi).unwrap();
    assert_eq!(verified, rows);
    fn revealed_keys(n: &veridb_mbtree::VoNode, out: &mut Vec<i64>) {
        match n {
            veridb_mbtree::VoNode::Leaf { entries } => {
                out.extend(entries.iter().map(|(k, _)| k.as_i64().unwrap()))
            }
            veridb_mbtree::VoNode::Internal { children, .. } => {
                for c in children {
                    revealed_keys(c, out);
                }
            }
            veridb_mbtree::VoNode::Pruned(_) => {}
        }
    }
    let mut revealed = Vec::new();
    revealed_keys(&vo, &mut revealed);
    assert!(revealed.contains(&2), "left boundary witness k2 revealed");
    assert!(revealed.contains(&6), "right boundary witness k6 revealed");
}

/// Example 5.1 / Figure 5: VeriDB's range-scan verification conditions.
#[test]
fn example_5_1_range_scan_conditions() {
    let db = db();
    db.sql("CREATE TABLE t (k INT PRIMARY KEY, d TEXT)")
        .unwrap();
    for k in 1..=8 {
        db.sql(&format!("INSERT INTO t VALUES ({k}, 'd{k}')"))
            .unwrap();
    }
    // Query [a,b] = [2.5, 5.5]-ish → ints [3, 5]: the scan must return
    // k3, k4, k5, having consumed ⟨k2, k3⟩ as left evidence and stopped
    // on nKey(k5) = k6 > b.
    let t = db.table("t").unwrap();
    let mut scan = t.range_scan(
        0,
        Bound::Included(Value::Int(3)),
        Bound::Included(Value::Int(5)),
    );
    let mut keys = Vec::new();
    for row in &mut scan {
        keys.push(row.unwrap()[0].as_i64().unwrap());
    }
    assert_eq!(keys, vec![3, 4, 5]);
    db.verify_now().unwrap();
}

/// Example 5.4 / Figures 7–8: the quote ⋈ inventory query, its plan shape
/// (SeqScan outer + IndexSearch inner), and its result.
#[test]
fn example_5_4_join_plan_and_result() {
    let db = db();
    db.sql("CREATE TABLE quote (id INT PRIMARY KEY, count INT, price INT)")
        .unwrap();
    db.sql("CREATE TABLE inventory (id INT PRIMARY KEY, count INT, descr TEXT)")
        .unwrap();
    db.sql("INSERT INTO quote VALUES (1,100,100),(2,100,200),(3,500,100),(4,600,100)")
        .unwrap();
    db.sql(
        "INSERT INTO inventory VALUES (1,50,'desc1'),(3,200,'desc3'),\
         (4,100,'desc4'),(6,100,'desc6')",
    )
    .unwrap();
    let sql = "SELECT q.id, q.count, i.count FROM quote as q, inventory as i \
               WHERE q.id = i.id and q.count > i.count";
    // The auto plan is the paper's: outer SeqScan feeding an inner
    // IndexSearch-driven join.
    let plan = db.explain(sql, &veridb::PlanOptions::default()).unwrap();
    assert!(plan.contains("IndexNestedLoopJoin"), "plan:\n{plan}");
    assert!(plan.contains("SeqScan"), "plan:\n{plan}");

    let r = db.sql(sql).unwrap();
    let mut got: Vec<(i64, i64, i64)> = r
        .rows
        .iter()
        .map(|row| {
            (
                row[0].as_i64().unwrap(),
                row[1].as_i64().unwrap(),
                row[2].as_i64().unwrap(),
            )
        })
        .collect();
    got.sort_unstable();
    // ⟨id1, 100, 50⟩ from the example, plus id3 and id4 which also satisfy
    // q.count > i.count in Figure 8's data.
    assert_eq!(got, vec![(1, 100, 50), (3, 500, 200), (4, 600, 100)]);
    db.verify_now().unwrap();
}

/// Definition 4.2's sentinel: the initial table state contains
/// ⟨⊥, min(keys), −⟩, and an empty table proves every key absent.
#[test]
fn definition_4_2_sentinels() {
    let db = db();
    db.sql("CREATE TABLE empty (id INT PRIMARY KEY, v TEXT)")
        .unwrap();
    // Absence from an empty table is verified via the ⟨⊥, ⊤⟩ sentinel.
    let r = db.sql("SELECT * FROM empty WHERE id = 42").unwrap();
    assert!(r.rows.is_empty());
    let r = db.sql("SELECT * FROM empty").unwrap();
    assert!(r.rows.is_empty());
    db.verify_now().unwrap();
}
