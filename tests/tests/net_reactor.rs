//! Reactor-specific server behaviour: exact connection admission under
//! accept storms, retryable overload refusals, and termination of every
//! admitted query under sustained overload.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use veridb::{Error, Value, VeriDb, VeriDbConfig};
use veridb_net::RemoteClient;

const TIMEOUT: Duration = Duration::from_secs(10);

fn gauge(db: &VeriDb, name: &str) -> u64 {
    db.metrics()
        .counters()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| v)
        .unwrap_or(0)
}

fn test_db(configure: impl FnOnce(&mut VeriDbConfig)) -> Arc<VeriDb> {
    let mut cfg = VeriDbConfig::default();
    cfg.verify_every_ops = None;
    configure(&mut cfg);
    let db = VeriDb::open(cfg).unwrap();
    db.sql("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        .unwrap();
    db.sql("INSERT INTO t VALUES (1,'a'),(2,'b'),(3,'c'),(4,'d')")
        .unwrap();
    Arc::new(db)
}

#[test]
fn accept_storm_never_exceeds_the_connection_cap() {
    // Regression for the over-admission race: the old accept loop read the
    // active count and incremented it in two separate steps, so a storm of
    // simultaneous connects could land more sessions than `max_conns`.
    // Admission is now a single CAS loop; hammer it with cap + 16
    // simultaneous connects and watch the active gauge the whole time.
    const CAP: usize = 8;
    const CLIENTS: usize = CAP + 16;
    let db = test_db(|c| c.max_conns = CAP);
    let mut server = veridb_net::serve(Arc::clone(&db), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();

    let done = Arc::new(AtomicBool::new(false));
    let peak = Arc::new(AtomicU64::new(0));
    let sampler = {
        let db = Arc::clone(&db);
        let done = Arc::clone(&done);
        let peak = Arc::clone(&peak);
        std::thread::spawn(move || {
            while !done.load(Ordering::Acquire) {
                peak.fetch_max(gauge(&db, "net.active_conns"), Ordering::AcqRel);
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };

    let mut clients = Vec::new();
    for i in 0..CLIENTS {
        let addr = addr.clone();
        clients.push(std::thread::spawn(move || {
            let channel = format!("storm-{i}");
            let mut c = RemoteClient::connect_simulated(&addr, &channel, "veridb", TIMEOUT)?;
            let got = c.query("SELECT v FROM t WHERE id = 2")?;
            assert_eq!(got.rows[0].values()[0], Value::Str("b".into()));
            c.close();
            Ok::<(), Error>(())
        }));
    }
    for (i, c) in clients.into_iter().enumerate() {
        c.join()
            .unwrap()
            .unwrap_or_else(|e| panic!("storm client {i} failed: {e}"));
    }
    done.store(true, Ordering::Release);
    sampler.join().unwrap();

    let peak = peak.load(Ordering::Acquire);
    assert!(peak > 0, "the sampler must have observed live connections");
    assert!(
        peak <= CAP as u64,
        "active connections peaked at {peak}, cap is {CAP}"
    );
    server.shutdown();
    // Admission bookkeeping balances: after shutdown nothing is active.
    assert_eq!(gauge(&db, "net.active_conns"), 0);
}

#[test]
fn overloaded_refusal_is_retryable_and_the_session_survives() {
    // With an admission queue of depth 1, a depth-16 pipeline must draw
    // Overloaded refusals; the client resends refused queries and every
    // answer still comes back correct and in input order.
    let db = test_db(|c| c.net_queue_depth = 1);
    let mut server = veridb_net::serve(Arc::clone(&db), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();
    let mut client = RemoteClient::connect_simulated(&addr, "ovl", "veridb", TIMEOUT).unwrap();

    let sqls: Vec<String> = (0..32)
        .map(|i| format!("SELECT v FROM t WHERE id = {}", (i % 4) + 1))
        .collect();
    let refs: Vec<&str> = sqls.iter().map(String::as_str).collect();
    let results = client.query_pipelined(&refs, 16).unwrap();
    assert_eq!(results.len(), 32);
    for (i, r) in results.iter().enumerate() {
        let want = ["a", "b", "c", "d"][i % 4];
        assert_eq!(
            r.rows[0].values()[0],
            Value::Str(want.into()),
            "query {i} must return its own answer despite refusals"
        );
    }
    assert!(
        gauge(&db, "net.overloaded") >= 1,
        "a depth-16 pipeline against a depth-1 queue must draw refusals"
    );
    // The same session keeps working after the storm of refusals.
    let got = client.query("SELECT v FROM t WHERE id = 1").unwrap();
    assert_eq!(got.rows[0].values()[0], Value::Str("a".into()));
    client.close();
    server.shutdown();
    // Every admitted query terminated: nothing is left queued.
    assert_eq!(gauge(&db, "net.queued"), 0);
}

#[test]
fn every_query_terminates_under_sustained_overload() {
    // Several pipelining clients against a tiny queue: each query must
    // terminate — answered correctly or refused with a *visible*
    // Overloaded error. No hangs, no silent drops, and the refusal is
    // never dressed up as a security violation.
    const CLIENTS: usize = 4;
    let db = test_db(|c| {
        c.net_queue_depth = 2;
        c.max_conns = 64;
    });
    let mut server = veridb_net::serve(Arc::clone(&db), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();

    let mut handles = Vec::new();
    for i in 0..CLIENTS {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || {
            let channel = format!("load-{i}");
            let mut c =
                RemoteClient::connect_simulated(&addr, &channel, "veridb", TIMEOUT).unwrap();
            let sqls: Vec<String> = (0..16)
                .map(|j| format!("SELECT v FROM t WHERE id = {}", (j % 4) + 1))
                .collect();
            let refs: Vec<&str> = sqls.iter().map(String::as_str).collect();
            match c.query_pipelined(&refs, 8) {
                Ok(results) => {
                    for (j, r) in results.iter().enumerate() {
                        let want = ["a", "b", "c", "d"][j % 4];
                        assert_eq!(r.rows[0].values()[0], Value::Str(want.into()));
                    }
                }
                Err(Error::Overloaded { .. }) => {
                    // Visible, retryable refusal after bounded retries:
                    // an acceptable terminal outcome under overload.
                }
                Err(e) => panic!("client {i}: unacceptable failure mode: {e}"),
            }
            c.close();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    server.shutdown();
    assert_eq!(
        gauge(&db, "net.queued"),
        0,
        "every admitted query must have been drained"
    );
}

#[test]
fn overloaded_error_round_trips_as_retryable() {
    // The taxonomy must hold on the client side too: Overloaded is not a
    // security violation and carries the queue numbers.
    let e = Error::Overloaded {
        queued: 7,
        limit: 4,
    };
    assert!(!e.is_security_violation());
    let msg = e.to_string();
    assert!(msg.contains("retry"), "message must invite a retry: {msg}");
}

#[test]
#[ignore = "256-client smoke lane; run explicitly (CI) with --ignored"]
fn two_hundred_fifty_six_clients_smoke() {
    // The CI smoke lane: 256 concurrent verifying clients against one
    // reactor, every answer correct, bookkeeping drained at the end.
    const CLIENTS: usize = 256;
    let db = test_db(|c| c.max_conns = 512);
    let mut server = veridb_net::serve(Arc::clone(&db), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();

    let mut handles = Vec::new();
    for i in 0..CLIENTS {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || {
            let channel = format!("smoke-{i}");
            let mut c =
                RemoteClient::connect_simulated(&addr, &channel, "veridb", Duration::from_secs(60))
                    .unwrap();
            let got = c.query("SELECT v FROM t WHERE id = 3").unwrap();
            assert_eq!(got.rows[0].values()[0], Value::Str("c".into()));
            c.close();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    server.shutdown();
    assert_eq!(gauge(&db, "net.active_conns"), 0);
    assert_eq!(gauge(&db, "net.queued"), 0);
}
