//! Warm-replica log shipping over the wire, end to end: a cold replica
//! bootstraps from the primary's sealed seed, tails the MAC-chained log
//! through the verified apply path, the primary's `log.ship_lag_records`
//! gauge drains to zero, and when the primary dies the replica promotes
//! itself and remote clients fail over with their `SeqIntervals` and
//! pinned channel key intact.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use veridb::{Value, VeriDb, VeriDbConfig};
use veridb_net::{ensure_replica_seed, serve, RemoteClient, ReplicaOutcome, ReplicaRunner};

const TIMEOUT: Duration = Duration::from_secs(5);
const DEADLINE: Duration = Duration::from_secs(30);

fn tmpdir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "veridb-netrep-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn durable_config(dir: &std::path::Path) -> VeriDbConfig {
    let mut cfg = VeriDbConfig::default();
    cfg.verify_every_ops = None;
    cfg.data_dir = Some(dir.display().to_string());
    cfg.group_commit_window_us = 0;
    cfg
}

/// Poll until the replica's durable WAL tip catches the primary's.
fn wait_caught_up(primary: &VeriDb, replica: &VeriDb) {
    let target = primary.durable().unwrap().wal().durable_lsn();
    let start = Instant::now();
    while replica.durable().unwrap().wal().durable_lsn() < target {
        assert!(
            start.elapsed() < DEADLINE,
            "replica never caught up: {} < {target}",
            replica.durable().unwrap().wal().durable_lsn()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn stats_gauge(stats: &str, name: &str) -> Option<u64> {
    stats
        .lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

#[test]
fn cold_replica_bootstraps_ships_and_fails_over() {
    // --- Primary: durable, served, with some committed state. ---
    let pdir = tmpdir("primary");
    let primary = Arc::new(VeriDb::open(durable_config(&pdir)).unwrap());
    primary
        .sql("CREATE TABLE acct (id INT PRIMARY KEY, bal INT)")
        .unwrap();
    primary.sql("INSERT INTO acct VALUES (1,100),(2,200)").unwrap();
    let mut pserver = serve(Arc::clone(&primary), "127.0.0.1:0").unwrap();
    let paddr = pserver.local_addr().to_string();

    // --- Cold replica: fetch the sealed seed over the attested wire,
    // then open durably in replica mode and start tailing from lsn 1. ---
    let rdir = tmpdir("replica");
    ensure_replica_seed(&rdir.display().to_string(), &paddr, "veridb", TIMEOUT).unwrap();
    assert!(rdir.join("enclave.seed.sealed").exists());
    let mut rcfg = durable_config(&rdir);
    rcfg.replica_of = Some(paddr.clone());
    let replica = Arc::new(VeriDb::open(rcfg).unwrap());
    let runner = ReplicaRunner::spawn(Arc::clone(&replica), &paddr, "veridb", TIMEOUT);

    // --- A client racks up verified history against the primary. ---
    let mut client =
        RemoteClient::connect_simulated(&paddr, "fo", "veridb", TIMEOUT).unwrap();
    let r = client.query("SELECT id, bal FROM acct WHERE id = 1").unwrap();
    assert_eq!(r.rows[0][1], Value::Int(100));

    // More protected writes while the subscription is live.
    primary.sql("UPDATE acct SET bal = 150 WHERE id = 1").unwrap();
    primary.sql("INSERT INTO acct VALUES (3,300)").unwrap();
    wait_caught_up(&primary, &replica);

    // The shipped copy is queryable and identical on the replica side.
    let local = replica.sql("SELECT id, bal FROM acct").unwrap();
    assert_eq!(local.rows.len(), 3);
    replica.verify_now().unwrap();

    // The primary's lag gauge drains to zero once the replica ACKs the
    // tip (heartbeat ACKs keep refreshing it, so just poll briefly).
    let start = Instant::now();
    loop {
        let stats = client.stats().unwrap();
        match stats_gauge(&stats, "log.ship_lag_records") {
            Some(0) => break,
            got => assert!(
                start.elapsed() < DEADLINE,
                "ship lag never drained: {got:?}\n{stats}"
            ),
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // --- Kill the primary. The replica must promote itself. ---
    pserver.shutdown();
    assert_eq!(runner.join().unwrap(), ReplicaOutcome::Promoted);

    // --- Serve the promoted replica; the client fails over to it. ---
    let mut rserver = serve(Arc::clone(&replica), "127.0.0.1:0").unwrap();
    let raddr = rserver.local_addr().to_string();
    client.fail_over(&raddr).unwrap();

    // Same channel key (pinned key_id passed), same data, and the
    // sequence history survives: every new endorsement still verifies
    // against the SeqIntervals accumulated on the primary.
    let r = client.query("SELECT bal FROM acct WHERE id = 1").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(150));
    let r = client.query("SELECT bal FROM acct WHERE id = 3").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(300));

    // The promoted replica accepts new protected writes and endorses
    // them at higher sequence numbers.
    client.query("INSERT INTO acct VALUES (4,400)").unwrap();
    let r = client.query("SELECT bal FROM acct WHERE id = 4").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(400));

    client.close();
    rserver.shutdown();
    drop(replica);
    drop(primary);
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}

#[test]
fn replica_restart_resumes_from_local_tip() {
    // A replica that stops and restarts must resubscribe from its own
    // durable tip, not refetch history it already holds.
    let pdir = tmpdir("primary2");
    let primary = Arc::new(VeriDb::open(durable_config(&pdir)).unwrap());
    primary.sql("CREATE TABLE t (k INT PRIMARY KEY)").unwrap();
    primary.sql("INSERT INTO t VALUES (1),(2)").unwrap();
    let mut pserver = serve(Arc::clone(&primary), "127.0.0.1:0").unwrap();
    let paddr = pserver.local_addr().to_string();

    let rdir = tmpdir("replica2");
    ensure_replica_seed(&rdir.display().to_string(), &paddr, "veridb", TIMEOUT).unwrap();
    let mut rcfg = durable_config(&rdir);
    rcfg.replica_of = Some(paddr.clone());

    // First run: catch up, then stop cleanly.
    {
        let replica = Arc::new(VeriDb::open(rcfg.clone()).unwrap());
        let runner = ReplicaRunner::spawn(Arc::clone(&replica), &paddr, "veridb", TIMEOUT);
        wait_caught_up(&primary, &replica);
        assert_eq!(runner.stop().unwrap(), ReplicaOutcome::Stopped);
    }

    // Primary moves on while the replica is down.
    primary.sql("INSERT INTO t VALUES (3),(4)").unwrap();

    // Second run: reopen the same data dir and resume from the local
    // tip; only the missing suffix ships.
    let replica = Arc::new(VeriDb::open(rcfg).unwrap());
    let before = replica.durable().unwrap().wal().durable_lsn();
    assert!(before > 0, "restart must keep the shipped prefix");
    let runner = ReplicaRunner::spawn(Arc::clone(&replica), &paddr, "veridb", TIMEOUT);
    wait_caught_up(&primary, &replica);
    let r = replica.sql("SELECT k FROM t").unwrap();
    assert_eq!(r.rows.len(), 4);
    replica.verify_now().unwrap();
    assert_eq!(runner.stop().unwrap(), ReplicaOutcome::Stopped);

    pserver.shutdown();
    drop(primary);
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}

#[test]
fn ship_subscription_refused_without_durable_server() {
    // An ephemeral (no data_dir) server has no log to ship; the
    // subscription must be refused visibly, not hang.
    let mut cfg = VeriDbConfig::default();
    cfg.verify_every_ops = None;
    let db = Arc::new(VeriDb::open(cfg).unwrap());
    let mut server = serve(Arc::clone(&db), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();
    let err = veridb_net::fetch_seed(&addr, "veridb", TIMEOUT).unwrap_err();
    assert!(
        matches!(err, veridb::Error::InvalidArgument(_)),
        "got {err}"
    );
    server.shutdown();
}
