//! Whole-stack integration: SQL over verified storage over write-read
//! consistent memory over the simulated enclave, with the background
//! verifier live.

use std::sync::Arc;
use veridb::{PlanOptions, PreferredJoin, Value, VeriDb, VeriDbConfig};

fn db_with_verifier() -> VeriDb {
    let mut cfg = VeriDbConfig::default();
    cfg.verify_every_ops = Some(100);
    cfg.rsws_partitions = 4;
    VeriDb::open(cfg).unwrap()
}

#[test]
fn mixed_workload_with_live_verifier() {
    let db = db_with_verifier();
    db.sql("CREATE TABLE orders (id INT PRIMARY KEY, cust INT CHAINED, total FLOAT)")
        .unwrap();
    db.sql("CREATE TABLE customers (id INT PRIMARY KEY, name TEXT)")
        .unwrap();
    for i in 1..=20 {
        db.sql(&format!("INSERT INTO customers VALUES ({i}, 'cust-{i}')"))
            .unwrap();
    }
    for i in 1..=300 {
        db.sql(&format!(
            "INSERT INTO orders VALUES ({i}, {}, {})",
            i % 20 + 1,
            (i * 7 % 100) as f64
        ))
        .unwrap();
    }
    // Point, range, join, aggregate — all while the verifier scans.
    let r = db.sql("SELECT * FROM orders WHERE id = 250").unwrap();
    assert_eq!(r.rows.len(), 1);
    let r = db.sql("SELECT id FROM orders WHERE cust = 5").unwrap();
    assert_eq!(r.rows.len(), 15);
    let r = db
        .sql(
            "SELECT c.name, COUNT(*) AS n, SUM(o.total) AS sum_total \
             FROM orders o, customers c WHERE o.cust = c.id \
             GROUP BY c.name ORDER BY name",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 20);
    let total: i64 = r.rows.iter().map(|row| row[1].as_i64().unwrap()).sum();
    assert_eq!(total, 300);

    db.sql("DELETE FROM orders WHERE cust = 5").unwrap();
    let r = db.sql("SELECT COUNT(*) FROM orders").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(285));

    assert!(db.stop_verifier().is_none(), "honest workload must verify");
    db.verify_now().unwrap();
}

#[test]
fn all_join_algorithms_agree_on_every_query() {
    let db = db_with_verifier();
    db.sql("CREATE TABLE a (id INT PRIMARY KEY, bref INT, w INT)")
        .unwrap();
    db.sql("CREATE TABLE b (id INT PRIMARY KEY, x INT)")
        .unwrap();
    for i in 1..=50 {
        db.sql(&format!(
            "INSERT INTO a VALUES ({i}, {}, {})",
            i % 12 + 1,
            i % 5
        ))
        .unwrap();
    }
    for i in 1..=12 {
        db.sql(&format!("INSERT INTO b VALUES ({i}, {})", i * 10))
            .unwrap();
    }
    let sql = "SELECT a.id, b.x FROM a, b WHERE a.bref = b.id AND a.w > 1 ORDER BY id";
    let mut answers = Vec::new();
    for prefer in [
        PreferredJoin::Auto,
        PreferredJoin::Hash,
        PreferredJoin::Merge,
        PreferredJoin::NestedLoop,
    ] {
        let r = db
            .sql_with(
                sql,
                &PlanOptions {
                    prefer_join: prefer,
                    ..Default::default()
                },
            )
            .unwrap();
        answers.push((prefer, r.rows));
    }
    for window in answers.windows(2) {
        assert_eq!(
            window[0].1, window[1].1,
            "{:?} and {:?} disagree",
            window[0].0, window[1].0
        );
    }
    assert!(!answers[0].1.is_empty());
}

#[test]
fn recovery_mid_workload() {
    let mut cfg = VeriDbConfig::default();
    cfg.verify_every_ops = None;
    let db = VeriDb::open(cfg.clone()).unwrap();
    db.sql("CREATE TABLE s (id INT PRIMARY KEY, v INT CHAINED)")
        .unwrap();
    for i in 0..100 {
        db.sql(&format!("INSERT INTO s VALUES ({i}, {})", i * 3 % 17))
            .unwrap();
    }
    let replica = db.snapshot_replica().unwrap();
    drop(db); // power failure

    let recovered = VeriDb::recover_from_replica(cfg, &replica).unwrap();
    // Chains and secondary access still work after the replay.
    let r = recovered.sql("SELECT COUNT(*) FROM s WHERE v = 0").unwrap();
    assert!(r.rows[0][0].as_i64().unwrap() > 0);
    recovered.sql("INSERT INTO s VALUES (1000, 5)").unwrap();
    recovered.sql("DELETE FROM s WHERE id = 3").unwrap();
    recovered.verify_now().unwrap();
}

#[test]
fn enclave_cost_accounting_reflects_work() {
    let mut cfg = VeriDbConfig::default();
    cfg.verify_every_ops = None;
    let db = VeriDb::open(cfg).unwrap();
    db.sql("CREATE TABLE c (id INT PRIMARY KEY, v INT)")
        .unwrap();
    let before = db.costs();
    for i in 0..50 {
        db.sql(&format!("INSERT INTO c VALUES ({i}, {i})")).unwrap();
    }
    let after = db.costs();
    let delta = after.since(&before);
    assert!(delta.prf_evals > 0, "verified inserts must evaluate PRFs");
    assert!(delta.verified_writes >= 50);
    db.verify_now().unwrap();
    let after_scan = db.costs().since(&after);
    assert!(after_scan.pages_scanned > 0);
}

#[test]
fn epc_budget_is_tracked_per_page() {
    let mut cfg = VeriDbConfig::default();
    cfg.verify_every_ops = None;
    let db = VeriDb::open(cfg).unwrap();
    db.sql("CREATE TABLE big (id INT PRIMARY KEY, pad TEXT)")
        .unwrap();
    let t = db.table("big").unwrap();
    for i in 0..2_000i64 {
        t.insert(veridb::Row::new(vec![
            Value::Int(i),
            Value::Str("x".repeat(100)),
        ]))
        .unwrap();
    }
    // Page metadata in the enclave is accounted against EPC.
    let allocated = db.enclave().epc().allocated();
    assert!(
        allocated > 0,
        "per-page enclave metadata must be EPC-accounted"
    );
    assert!(
        allocated < db.enclave().epc().budget(),
        "laptop-scale DB must fit the 96 MB EPC budget"
    );
    let _ = Arc::strong_count(&t);
}

#[test]
fn intermediate_state_spills_to_verified_storage() {
    // §5.4: materialization points overflow into verified storage; the
    // answer is unchanged and the spilled cells are protocol-covered.
    let mut cfg = VeriDbConfig::default();
    cfg.verify_every_ops = None;
    let db = VeriDb::open(cfg).unwrap();
    db.sql("CREATE TABLE l (id INT PRIMARY KEY, k INT)")
        .unwrap();
    db.sql("CREATE TABLE r (id INT PRIMARY KEY, k INT, pad TEXT)")
        .unwrap();
    for i in 0..60 {
        db.sql(&format!("INSERT INTO l VALUES ({i}, {})", i % 10))
            .unwrap();
    }
    for i in 0..200 {
        db.sql(&format!(
            "INSERT INTO r VALUES ({i}, {}, 'padding-{i}')",
            i % 10
        ))
        .unwrap();
    }
    // Force the block-NLJ plan (materializes the right side) and compare
    // spilled vs unspilled answers.
    let opts = PlanOptions {
        prefer_join: PreferredJoin::NestedLoop,
        ..Default::default()
    };
    let sql = "SELECT l.id, r.id FROM l, r WHERE l.k = r.k ORDER BY 1, 2";
    let unspilled = db.sql_with(sql, &opts).unwrap();

    db.set_spill_threshold(Some(128)); // absurdly small: force spilling
    let before = db.costs();
    let spilled = db.sql_with(sql, &opts).unwrap();
    let delta = db.costs().since(&before);
    db.set_spill_threshold(None);

    assert_eq!(
        unspilled.rows, spilled.rows,
        "spilling must not change answers"
    );
    assert_eq!(spilled.rows.len(), 60 * 20);
    assert!(
        delta.verified_writes > 100,
        "spilled rows must be written through the protected path \
         (saw {} verified writes)",
        delta.verified_writes
    );
    // The scratch cells were freed on drop; digests balance.
    db.verify_now().unwrap();
}
