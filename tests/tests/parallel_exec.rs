//! Morsel-driven parallel execution, end to end: TPC-H plans must return
//! the serial engine's rows (same values, same order) at every worker
//! count, and tampering discovered by a worker's verified scan must
//! surface exactly as it does serially.

use veridb::{PlanOptions, Row, Value, VeriDb, VeriDbConfig};
use veridb_workloads::tpch;
use veridb_wrcm::tamper;

fn tpch_db(workers: usize) -> VeriDb {
    let mut cfg = VeriDbConfig::default();
    cfg.verify_every_ops = None;
    cfg.workers = workers;
    let db = VeriDb::open(cfg).unwrap();
    let data = veridb_workloads::TpchData::generate(&veridb_workloads::TpchConfig::tiny());
    data.load(&db).unwrap();
    db
}

/// Same shape and order; float cells compare with a relative epsilon
/// (parallel partial sums associate differently than a serial left-fold).
fn assert_rows_equivalent(actual: &[Row], expected: &[Row], what: &str) {
    assert_eq!(actual.len(), expected.len(), "{what}: row count");
    for (i, (a, b)) in actual.iter().zip(expected).enumerate() {
        assert_eq!(a.values().len(), b.values().len(), "{what}: row {i} width");
        for (x, y) in a.values().iter().zip(b.values()) {
            match (x, y) {
                (Value::Float(fx), Value::Float(fy)) => {
                    let scale = fx.abs().max(fy.abs()).max(1.0);
                    assert!(
                        (fx - fy).abs() <= 1e-9 * scale,
                        "{what}: row {i}: {fx} vs {fy}"
                    );
                }
                _ => assert_eq!(x, y, "{what}: row {i}"),
            }
        }
    }
}

#[test]
fn tpch_q1_q3_q6_parallel_matches_serial() {
    let serial_db = tpch_db(1);
    let opts = PlanOptions::default();
    for (name, sql) in [("Q1", tpch::q1()), ("Q3", tpch::q3()), ("Q6", tpch::q6())] {
        let expected = serial_db.sql_with(sql, &opts).unwrap();
        for workers in [2usize, 8] {
            serial_db.set_workers(workers);
            let got = serial_db.sql_with(sql, &opts).unwrap();
            serial_db.set_workers(1);
            assert_eq!(got.columns, expected.columns, "{name}");
            // Q1/Q3 carry ORDER BY; Q6 is a single aggregate row. Order
            // must match exactly in all cases.
            assert_rows_equivalent(&got.rows, &expected.rows, &format!("{name}@{workers}"));
        }
    }
    serial_db.verify_now().unwrap();
}

/// The enclave cell cache must be invisible to query results: a cache-off
/// database and a cache-on database (the 4 MiB default) agree on
/// Q1/Q3/Q6 at 2 and 8 workers, and the cached run actually hits.
#[test]
fn tpch_parallel_equivalence_with_cell_cache() {
    let mut cfg = VeriDbConfig::default();
    cfg.verify_every_ops = None;
    cfg.cell_cache_bytes = 0;
    let uncached_db = VeriDb::open(cfg).unwrap();
    let cached_db = tpch_db(1); // default config: cache on
    let data = veridb_workloads::TpchData::generate(&veridb_workloads::TpchConfig::tiny());
    data.load(&uncached_db).unwrap();

    let opts = PlanOptions::default();
    for (name, sql) in [("Q1", tpch::q1()), ("Q3", tpch::q3()), ("Q6", tpch::q6())] {
        let expected = uncached_db.sql_with(sql, &opts).unwrap();
        for workers in [2usize, 8] {
            cached_db.set_workers(workers);
            let got = cached_db.sql_with(sql, &opts).unwrap();
            assert_eq!(got.columns, expected.columns, "{name}");
            assert_rows_equivalent(
                &got.rows,
                &expected.rows,
                &format!("{name}@{workers} cached vs uncached"),
            );
        }
    }
    let snap = cached_db.metrics();
    assert!(
        snap.cache_hits > 0,
        "cache-enabled run should record hits (got {} hits / {} misses)",
        snap.cache_hits,
        snap.cache_misses
    );
    assert_eq!(
        uncached_db.metrics().cache_hits,
        0,
        "cache off must not hit"
    );
    cached_db.verify_now().unwrap();
    uncached_db.verify_now().unwrap();
}

#[test]
fn ordered_scan_row_order_survives_parallelism() {
    // No ORDER BY: the row order is the verified scan's chain order, which
    // the morsel-index merge must reproduce bit-for-bit (int columns, so
    // exact equality).
    let db = tpch_db(1);
    let sql = "SELECT l_id, l_orderkey, l_quantity FROM lineitem \
               WHERE l_quantity < 10";
    let expected = db.sql(sql).unwrap();
    for workers in [2usize, 4, 8] {
        db.set_workers(workers);
        let got = db.sql(sql).unwrap();
        assert_eq!(got.rows, expected.rows, "workers={workers}");
    }
}

#[test]
fn parallel_region_metrics_are_recorded() {
    let db = tpch_db(4);
    let before = db.metrics();
    db.sql("SELECT COUNT(*) FROM lineitem").unwrap();
    let delta = db.metrics().since(&before);
    assert_eq!(delta.parallel_regions, 1, "one Exchange region ran");
    assert!(
        delta.morsels_dispatched > 1,
        "2000 rows must split into multiple morsels (got {})",
        delta.morsels_dispatched
    );
    let per_worker: u64 = (0..veridb_common::obs::MAX_TRACKED_WORKERS)
        .map(|w| delta.worker_rows[w])
        .sum();
    assert!(
        per_worker > 0,
        "per-worker row counters must see the scan rows"
    );
}

/// The shared-nothing machinery must actually engage under parallel
/// scans: workers claim morsels, their cursors fold through thread-local
/// delta slots, and timestamps come from per-worker blocks.
#[test]
fn shared_nothing_counters_engage_at_8_workers() {
    let db = tpch_db(8);
    let before = db.metrics();
    db.sql("SELECT COUNT(*) FROM lineitem").unwrap();
    let delta = db.metrics().since(&before);
    assert!(
        delta.delta_merges > 0,
        "worker cursors must merge thread-local digest deltas (got {})",
        delta.delta_merges
    );
    assert!(
        delta.ts_blocks_allocated > 0,
        "delta timestamps must come from blocks (got {})",
        delta.ts_blocks_allocated
    );
    let claims: u64 = (0..veridb_common::obs::MAX_TRACKED_WORKERS)
        .map(|w| delta.worker_morsels[w])
        .sum();
    assert!(
        claims > 0 && claims == delta.morsels_dispatched,
        "every dispatched morsel is claimed by some worker ({claims} of {})",
        delta.morsels_dispatched
    );
    // The merged deltas are byte-identical to serial folds, so the epoch
    // still balances.
    db.verify_now().unwrap();
}

#[test]
fn tamper_under_parallel_scan_is_detected() {
    let db = tpch_db(4);
    // Overwrite one live cell directly in untrusted memory.
    let mem = db.memory();
    let mut hit = false;
    'outer: for page in mem.page_ids() {
        for slot in 0..16u16 {
            if tamper::overwrite_cell(mem, veridb_wrcm::CellAddr { page, slot }, b"evil").is_ok() {
                hit = true;
                break 'outer;
            }
        }
    }
    assert!(hit, "no live cell to tamper");
    // A parallel scan either alarms immediately (a worker's verified scan
    // hits the poisoned cell) or the deferred pass catches it — never a
    // silently wrong answer (Theorem 5.1 under parallel execution).
    match db.sql("SELECT COUNT(*) FROM lineitem") {
        Ok(_) => assert!(db.verify_now().is_err(), "deferred detection must fire"),
        Err(e) => assert!(e.is_security_violation(), "unexpected error class: {e}"),
    }
}
