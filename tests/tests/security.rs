//! Cross-layer security integration: attacks mounted at one layer must be
//! caught by the defenses of another, matching the paper's end-to-end
//! argument (§5.5).

use std::sync::Arc;
use veridb::{Client, VeriDb, VeriDbConfig};
use veridb_enclave::sealing::Sealer;
use veridb_wrcm::tamper;

fn db() -> VeriDb {
    let mut cfg = VeriDbConfig::default();
    cfg.verify_every_ops = None;
    let db = VeriDb::open(cfg).unwrap();
    db.sql("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        .unwrap();
    db.sql("INSERT INTO t VALUES (1,'a'),(2,'b'),(3,'c'),(4,'d')")
        .unwrap();
    db
}

fn tamper_one_cell(db: &VeriDb) {
    let mem = db.memory();
    for page in mem.page_ids() {
        for slot in 0..16u16 {
            if tamper::overwrite_cell(mem, veridb_wrcm::CellAddr { page, slot }, b"evil").is_ok() {
                return;
            }
        }
    }
    panic!("no live cell to tamper");
}

#[test]
fn integrity_theorem_5_1_detection_is_eventual_but_certain() {
    // Theorem 5.1: every returned tuple satisfies Q, or the breach is
    // (eventually) detected. Tampering mid-stream is caught by the next
    // verification pass even if a query read the bad data first.
    let db = db();
    tamper_one_cell(&db);
    // The engine may or may not surface an immediate decode error; the
    // deferred verification MUST fail regardless.
    let _ = db.sql("SELECT * FROM t");
    assert!(db.verify_now().is_err());
    assert!(db.poisoned().unwrap().is_security_violation());
}

#[test]
fn completeness_theorem_5_2_omission_needs_the_chain() {
    // Deleting a record via the protected path is legal; omitting one
    // behind the chain's back is not possible without breaking either the
    // chain evidence or the digests. (Touched-page tracking defers
    // detection of cold-page tampering until the page is next read — see
    // wrcm's tamper tests — so this test scans every page each pass.)
    let mut cfg = VeriDbConfig::default();
    cfg.verify_every_ops = None;
    cfg.track_touched_pages = false;
    let db = VeriDb::open(cfg).unwrap();
    db.sql("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        .unwrap();
    db.sql("INSERT INTO t VALUES (1,'a'),(2,'b'),(3,'c'),(4,'d')")
        .unwrap();
    // Legal path: verified absence afterwards.
    db.sql("DELETE FROM t WHERE id = 2").unwrap();
    let r = db.sql("SELECT * FROM t WHERE id = 2").unwrap();
    assert!(r.rows.is_empty());
    db.verify_now().unwrap();

    // Illegal path: resurrect the deleted record's bytes directly — the
    // WriteSet no longer covers them, so verification fails.
    let mem = db.memory();
    let resurrected = mem
        .page_ids()
        .into_iter()
        .any(|page| tamper::resurrect_cell(mem, page, b"\x01resurrected", 1).is_ok());
    assert!(resurrected, "resurrection insert must land somewhere");
    assert!(db.verify_now().is_err());
}

#[test]
fn freshness_stale_read_is_detected() {
    let db = db();
    let mem = db.memory();
    // Snapshot everything, update, replay one superseded cell.
    let mut snaps = Vec::new();
    for page in mem.page_ids() {
        for slot in 0..16u16 {
            let addr = veridb_wrcm::CellAddr { page, slot };
            if let Ok(s) = tamper::snapshot_cell(mem, addr) {
                snaps.push((addr, s));
            }
        }
    }
    db.sql("UPDATE t SET v = 'fresh' WHERE id = 1").unwrap();
    db.sql("UPDATE t SET v = 'fresh' WHERE id = 2").unwrap();
    db.sql("UPDATE t SET v = 'fresh' WHERE id = 3").unwrap();
    db.sql("UPDATE t SET v = 'fresh' WHERE id = 4").unwrap();
    let (addr, (data, ts)) = snaps
        .into_iter()
        .find(|(a, s)| {
            tamper::snapshot_cell(mem, *a)
                .map(|c| c != *s)
                .unwrap_or(false)
        })
        .expect("superseded cell");
    tamper::replay_cell(mem, addr, &data, ts).unwrap();
    // A read may now return stale data — freshness violated — but the
    // epoch close detects it.
    let _ = db.sql("SELECT * FROM t");
    assert!(db.verify_now().is_err());
}

#[test]
fn sealed_checkpoint_cannot_be_tampered_or_cross_loaded() {
    let db = db();
    let sealer = Sealer::new(db.enclave().derive_key("checkpoint"));
    let state = b"rsws digests + ts high-water";
    let mut blob = sealer.seal(state, [3u8; 16]);
    assert_eq!(sealer.unseal(&blob).unwrap(), state);

    // Host corruption detected.
    blob.corrupt_for_test();
    assert!(sealer.unseal(&blob).is_err());

    // A different enclave identity cannot unseal.
    let other = VeriDb::open(VeriDbConfig::baseline()).unwrap();
    let foreign = Sealer::new(other.enclave().derive_key("checkpoint"));
    let blob = sealer.seal(state, [4u8; 16]);
    assert!(foreign.unseal(&blob).is_err());
}

#[test]
fn full_attack_story_portal_refuses_after_background_detection() {
    // Attack during live operation: background verifier catches it and
    // every subsequent portal interaction fails closed.
    let mut cfg = VeriDbConfig::default();
    cfg.verify_every_ops = Some(10);
    let dbx = VeriDb::open(cfg).unwrap();
    dbx.sql("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        .unwrap();
    dbx.sql("INSERT INTO t VALUES (1,'a'),(2,'b')").unwrap();
    let portal = Arc::new(dbx.portal("c"));
    let mut client = Client::with_key(portal.channel_key_for_attested_client());

    tamper_one_cell(&dbx);
    // Drive ops so the background verifier scans the tampered page.
    for i in 0..400 {
        let q = client.sign_query(&format!("SELECT * FROM t WHERE id = {}", i % 2 + 1));
        match portal.submit(&q) {
            Ok(e) => {
                let _ = client.verify_result(&q, &e);
            }
            Err(err) => {
                assert!(err.is_security_violation(), "unexpected: {err}");
                return; // detection happened — test passes
            }
        }
        std::thread::yield_now();
    }
    // If the background thread raced slower than 400 queries, force it.
    assert!(dbx.verify_now().is_err());
}

#[test]
fn client_detects_split_view_between_two_portals() {
    // The same client key talking through two portal instances still sees
    // one strictly-increasing sequence space (the counter lives in the
    // enclave, not the portal).
    let dbx = db();
    let p1 = dbx.portal("shared");
    let p2 = dbx.portal("shared");
    let mut client = Client::with_key(p1.channel_key_for_attested_client());
    let mut seqs = Vec::new();
    for i in 0..10 {
        let portal = if i % 2 == 0 { &p1 } else { &p2 };
        let q = client.sign_query("SELECT COUNT(*) FROM t");
        let e = portal.submit(&q).unwrap();
        client.verify_result(&q, &e).unwrap();
        seqs.push(e.sequence);
    }
    let mut sorted = seqs.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), seqs.len(), "no sequence number may repeat");
}

#[test]
fn tpch_analytics_over_tampered_data_is_detected() {
    // End-to-end: analytical answers over silently tampered base data are
    // never endorsed — the scan-level digests catch the modification.
    use veridb_workloads::tpch::{q6, TpchConfig, TpchData};
    let mut cfg = VeriDbConfig::default();
    cfg.verify_every_ops = None;
    let dbx = VeriDb::open(cfg).unwrap();
    let data = TpchData::generate(&TpchConfig::tiny());
    data.load(&dbx).unwrap();
    let honest = dbx.sql(q6()).unwrap();

    // The host rewrites one lineitem record in place (e.g. inflating a
    // discount). The very next verification pass must fail.
    tamper_one_cell(&dbx);
    let _maybe_wrong = dbx.sql(q6()); // may silently differ from `honest`
    assert!(
        dbx.verify_now().is_err(),
        "tampered analytics must be detected"
    );
    assert!(dbx.poisoned().is_some());
    // And the portal refuses endorsement from here on.
    let portal = dbx.portal("analyst");
    let mut client = Client::with_key(portal.channel_key_for_attested_client());
    let q = client.sign_query(q6());
    assert!(portal.submit(&q).unwrap_err().is_security_violation());
    let _ = honest;
}
