//! Concurrency integration: many clients, live verifier, TPC-C mix —
//! everything running at once must stay verifiable.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use veridb::{Client, QueryPortal, VeriDb, VeriDbConfig};
use veridb_workloads::{TpccConfig, TpccDriver};

#[test]
fn concurrent_portals_with_live_verifier() {
    let mut cfg = VeriDbConfig::default();
    cfg.verify_every_ops = Some(50);
    cfg.rsws_partitions = 8;
    let db = Arc::new(VeriDb::open(cfg).unwrap());
    db.sql("CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)")
        .unwrap();
    for i in 0..200 {
        db.sql(&format!("INSERT INTO kv VALUES ({i}, 'seed-{i}')"))
            .unwrap();
    }

    let mut handles = Vec::new();
    for t in 0..4i64 {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            let portal: QueryPortal = db.portal(&format!("client-{t}"));
            let mut client = Client::with_key(portal.channel_key_for_attested_client());
            for i in 0..50i64 {
                let k = 1_000 + t * 1_000 + i;
                let q = client.sign_query(&format!("INSERT INTO kv VALUES ({k}, 'w{t}-{i}')"));
                let e = portal.submit(&q).unwrap();
                client.verify_result(&q, &e).unwrap();

                let q = client.sign_query(&format!("SELECT v FROM kv WHERE k = {}", i % 200));
                let e = portal.submit(&q).unwrap();
                let rows = client.verify_result(&q, &e).unwrap();
                assert_eq!(rows.len(), 1);
            }
            // Sequence numbers arrive densely enough to compress well.
            assert!(client.sequence_intervals() <= 100);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(db.stop_verifier().is_none());
    db.verify_now().unwrap();
    let r = db.sql("SELECT COUNT(*) FROM kv").unwrap();
    assert_eq!(r.rows[0][0].as_i64().unwrap(), 200 + 4 * 50);
}

#[test]
fn tpcc_mix_under_live_verifier_stays_consistent() {
    let mut cfg = VeriDbConfig::default();
    cfg.verify_every_ops = Some(200);
    cfg.rsws_partitions = 16;
    let db = VeriDb::open(cfg).unwrap();
    let driver = Arc::new(TpccDriver::load(&db, TpccConfig::tiny()).unwrap());
    let stats = driver.run_clients(3, 40);
    assert_eq!(stats.committed, 120);
    assert!(db.stop_verifier().is_none());
    db.verify_now().unwrap();
    assert!(db.poisoned().is_none());
}

#[test]
fn single_rsws_partition_still_correct_under_concurrency() {
    // Figure 13's worst case: one global digest pair. Slower, never wrong.
    let mut cfg = VeriDbConfig::default();
    cfg.verify_every_ops = Some(100);
    cfg.rsws_partitions = 1;
    let db = VeriDb::open(cfg).unwrap();
    let driver = Arc::new(TpccDriver::load(&db, TpccConfig::tiny()).unwrap());
    let stats = driver.run_clients(4, 20);
    assert_eq!(stats.committed, 80);
    assert!(db.stop_verifier().is_none());
    db.verify_now().unwrap();
}

#[test]
fn deterministic_transactions_have_reproducible_effects() {
    // Two identical runs produce identical order tables (sanity for the
    // benchmark harness's seeded drivers).
    let run = || {
        let mut cfg = VeriDbConfig::default();
        cfg.verify_every_ops = None;
        let db = VeriDb::open(cfg).unwrap();
        let driver = TpccDriver::load(&db, TpccConfig::tiny()).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..30 {
            driver.one_transaction(&mut rng).unwrap();
        }
        db.sql("SELECT o_w_id, o_d_id, o_id, o_c_id FROM orders")
            .unwrap()
            .rows
    };
    assert_eq!(run(), run());
}
